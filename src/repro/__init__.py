"""repro — reproduction of "How Parallel Circuit Execution Can Be Useful
for NISQ Computing?" (Niu & Todri-Sanial, DATE 2022).

The package implements, from scratch:

- a quantum-circuit IR and OpenQASM 2.0 I/O (:mod:`repro.circuits`)
- ideal and noisy (density-matrix) simulators (:mod:`repro.sim`)
- synthetic IBM-style devices with calibration data and a ground-truth
  crosstalk model (:mod:`repro.hardware`)
- randomized benchmarking / simultaneous RB (:mod:`repro.characterization`)
- a noise-aware transpiler with ALAP scheduling (:mod:`repro.transpiler`)
- a layered compile cache: in-memory LRU tiers, qubit-relabel
  equivalence classes, and a SQLite WAL persistent store
  (:mod:`repro.cache`)
- the paper's contribution — QuCP crosstalk-aware parallel workload
  execution — plus the QuMC / CNA / MultiQC / QuCloud baselines
  (:mod:`repro.core`)
- the Table II benchmark suite (:mod:`repro.workloads`)
- VQE with Pauli grouping (:mod:`repro.vqe`) and digital ZNE error
  mitigation (:mod:`repro.mitigation`)
- the provider/backend/job service facade — the primary public API
  (:mod:`repro.service`)::

      import repro

      backend = repro.provider().backend("ibm_toronto")
      result = backend.run(circuits, shots=4096, seed=7).result()
"""

__version__ = "1.1.0"

from . import (
    cache,
    characterization,
    circuits,
    core,
    hardware,
    mitigation,
    service,
    sim,
    transpiler,
    vqe,
    workloads,
)
from .service import QuantumProvider, provider

__all__ = [
    "QuantumProvider",
    "__version__",
    "cache",
    "characterization",
    "circuits",
    "core",
    "hardware",
    "mitigation",
    "provider",
    "service",
    "sim",
    "transpiler",
    "vqe",
    "workloads",
]

"""ASCII rendering of device topologies with partition overlays.

Examples and benches use this to show where QuCP placed each program —
the textual analogue of the paper's Fig. 1 chip diagrams.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from .devices import Device
from .topology import CouplingMap

__all__ = ["render_device", "render_partitions"]

#: Grid coordinates (row, col) for the chips' published floor plans.
_MELBOURNE_POS = {q: (0, 2 * q) for q in range(7)}
_MELBOURNE_POS.update({7 + k: (2, 12 - 2 * k) for k in range(8)})

_TORONTO_POS = {
    0: (0, 2), 1: (0, 4), 2: (0, 6), 3: (0, 8), 4: (1, 4), 5: (0, 10),
    6: (2, 2), 7: (2, 4), 8: (1, 10), 9: (0, 12), 10: (3, 4),
    11: (2, 10), 12: (4, 4), 13: (4, 8), 14: (3, 10), 15: (4, 2),
    16: (4, 10), 17: (6, 6), 18: (5, 2), 19: (5, 10), 20: (4, 12),
    21: (6, 2), 22: (6, 10), 23: (7, 4), 24: (8, 6), 25: (7, 10),
    26: (8, 12),
}


def _positions_for(coupling: CouplingMap) -> Dict[int, Tuple[int, int]]:
    if coupling.num_qubits == 15:
        return dict(_MELBOURNE_POS)
    if coupling.num_qubits == 27:
        return dict(_TORONTO_POS)
    # Generic fallback: wrap qubits into rows of 10.
    return {
        q: (2 * (q // 10), 2 * (q % 10))
        for q in range(coupling.num_qubits)
    }


def render_device(device: Device,
                  highlight: Sequence[int] = ()) -> str:
    """Render the device grid, bracketing highlighted qubits."""
    return render_partitions(device, [tuple(highlight)] if highlight
                             else [])


def render_partitions(device: Device,
                      partitions: Sequence[Tuple[int, ...]]) -> str:
    """Render the device with one marker letter per partition.

    Partition 0's qubits render as ``[q]A``, partition 1's as ``[q]B``,
    etc.; unallocated qubits render bare.
    """
    positions = _positions_for(device.coupling)
    owner: Dict[int, str] = {}
    for index, part in enumerate(partitions):
        letter = chr(ord("A") + index % 26)
        for q in part:
            owner[q] = letter

    max_row = max(r for r, _ in positions.values())
    max_col = max(c for _, c in positions.values())
    cell = 6
    grid = [
        [" " * cell for _ in range(max_col + 1)]
        for _ in range(max_row + 1)
    ]
    for q, (r, c) in positions.items():
        if q in owner:
            label = f"[{q:>2}]{owner[q]}"
        else:
            label = f" {q:>2}   "
        grid[r][c] = label.ljust(cell)

    lines = ["".join(row).rstrip() for row in grid]
    legend = ", ".join(
        f"{chr(ord('A') + i % 26)}={tuple(part)}"
        for i, part in enumerate(partitions)
    )
    header = f"{device.name} ({device.num_qubits} qubits)"
    out = [header]
    if legend:
        out.append(f"partitions: {legend}")
    out.extend(line for line in lines if line.strip())
    return "\n".join(out)

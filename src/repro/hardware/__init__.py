"""Hardware substrate: topologies, calibration snapshots, crosstalk
ground truth, and the synthetic IBM-style devices used by the paper."""

from .calibration import Calibration, generate_calibration
from .crosstalk import CrosstalkModel, generate_crosstalk_model
from .devices import (
    Device,
    ibm_manhattan,
    ibm_melbourne,
    ibm_toronto,
    linear_device,
)
from .fleet import PLACEMENT_POLICIES, DeviceFleet
from .topology import CouplingMap, Edge
from .visualize import render_device, render_partitions

__all__ = [
    "Calibration",
    "CouplingMap",
    "CrosstalkModel",
    "Device",
    "DeviceFleet",
    "Edge",
    "PLACEMENT_POLICIES",
    "generate_calibration",
    "generate_crosstalk_model",
    "ibm_manhattan",
    "ibm_melbourne",
    "ibm_toronto",
    "linear_device",
    "render_device",
    "render_partitions",
]

"""Multi-device fleets: the hardware side of the cloud service layer.

A :class:`DeviceFleet` groups heterogeneous devices behind one dispatch
surface and encodes the placement policy the scheduler consults when more
than one device could take the next batch:

- ``round_robin`` — rotate through eligible devices; fair and stateless.
- ``least_loaded`` — pick the device with the least accumulated busy
  time; balances queues when devices differ in speed or demand.
- ``best_fidelity`` — pick the device where the head program's solo
  placement scores best (lowest EFS); quality-first routing.

The fleet itself is pure policy: runtime state (who is busy, cumulative
load, the round-robin cursor, per-device placement scores) is owned by
the scheduler and passed in per decision, keeping this module free of
any dependency on the allocation layer above it.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Sequence, Tuple, Union

from .devices import Device

__all__ = ["DeviceFleet", "PLACEMENT_POLICIES"]

#: Supported placement policy names.
PLACEMENT_POLICIES: Tuple[str, ...] = (
    "round_robin", "least_loaded", "best_fidelity")


class DeviceFleet:
    """An ordered pool of devices plus a batch-placement policy."""

    def __init__(self, devices: Union[Device, Sequence[Device]],
                 policy: str = "least_loaded") -> None:
        if isinstance(devices, Device):
            devices = (devices,)
        self.devices: Tuple[Device, ...] = tuple(devices)
        if not self.devices:
            raise ValueError("a fleet needs at least one device")
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {policy!r}; "
                f"choose from {PLACEMENT_POLICIES}")
        self.policy = policy

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self) -> Iterator[Device]:
        return iter(self.devices)

    def __getitem__(self, index: int) -> Device:
        return self.devices[index]

    @property
    def total_qubits(self) -> int:
        """Sum of qubit counts across the fleet."""
        return sum(d.num_qubits for d in self.devices)

    def resolve_device(self, ref: Union[int, str]) -> int:
        """Resolve a device reference (index or name) to a fleet index.

        Fault plans and operator tooling name devices; the scheduler
        works in indices.  A name must match exactly one device —
        fleets may legitimately hold twin devices under one name, and
        an outage on "the" twin would be ambiguous.
        """
        if isinstance(ref, bool):
            raise TypeError("device reference must be an index or a name")
        if isinstance(ref, int):
            if not 0 <= ref < len(self.devices):
                raise ValueError(
                    f"device index {ref} out of range for a "
                    f"{len(self.devices)}-device fleet")
            return ref
        matches = [i for i, d in enumerate(self.devices) if d.name == ref]
        if not matches:
            names = ", ".join(d.name for d in self.devices)
            raise ValueError(
                f"unknown device {ref!r}; fleet holds: {names}")
        if len(matches) > 1:
            raise ValueError(
                f"device name {ref!r} is ambiguous: indices {matches}")
        return matches[0]

    def select(
        self,
        eligible: Sequence[int],
        loads: Mapping[int, float],
        solo_efs: Mapping[int, float],
        rr_cursor: int = 0,
    ) -> int:
        """Choose one device index out of *eligible* under the policy.

        *loads* maps device index -> accumulated busy nanoseconds;
        *solo_efs* maps device index -> the head program's solo-best EFS
        on that device (only consulted by ``best_fidelity``).
        """
        if not eligible:
            raise ValueError("no eligible devices to select from")
        if self.policy == "round_robin":
            n = len(self.devices)
            return min(eligible, key=lambda i: ((i - rr_cursor) % n, i))
        if self.policy == "least_loaded":
            return min(eligible, key=lambda i: (loads.get(i, 0.0), i))
        # best_fidelity
        return min(eligible,
                   key=lambda i: (solo_efs.get(i, float("inf")), i))

"""Calibration data model and the synthetic calibration generator.

Real IBM backends publish daily calibration snapshots: per-qubit T1/T2 and
readout error, per-link CNOT error, per-qubit single-qubit gate error.  The
generator below produces snapshots with the same statistics (seeded, hence
reproducible), including the minority of "bad" links/qubits that the
paper's Fig. 1 highlights in red.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .topology import CouplingMap, Edge

__all__ = ["Calibration", "generate_calibration"]


@dataclass
class Calibration:
    """A device calibration snapshot.

    All error quantities are average error *rates* in [0, 1]; coherence
    times and durations are in nanoseconds.
    """

    oneq_error: Dict[int, float] = field(default_factory=dict)
    twoq_error: Dict[Edge, float] = field(default_factory=dict)
    readout_error: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    t1: Dict[int, float] = field(default_factory=dict)
    t2: Dict[int, float] = field(default_factory=dict)
    #: Residual qubit frequency detuning (rad/ns): coherent Z drift
    #: accumulated while idling; what dynamical decoupling echoes away.
    detuning: Dict[int, float] = field(default_factory=dict)
    gate_duration: Dict[str, float] = field(
        default_factory=lambda: {
            "x": 35.0, "sx": 35.0, "rz": 0.0, "cx": 300.0,
            "measure": 700.0, "reset": 700.0,
        }
    )

    def cx_error(self, a: int, b: int) -> float:
        """CNOT error of the link ``(a, b)``."""
        key = (a, b) if a <= b else (b, a)
        return self.twoq_error[key]

    def readout_error_avg(self, qubit: int) -> float:
        """Symmetrized readout error of *qubit*."""
        p01, p10 = self.readout_error[qubit]
        return 0.5 * (p01 + p10)

    def worst_links(self, quantile: float = 0.8) -> Tuple[Edge, ...]:
        """Links whose CX error exceeds the given quantile (Fig. 1 red)."""
        values = np.array(list(self.twoq_error.values()))
        cut = float(np.quantile(values, quantile))
        return tuple(
            sorted(e for e, v in self.twoq_error.items() if v > cut))


def generate_calibration(
    coupling: CouplingMap,
    seed: int,
    cx_error_median: float = 1.2e-2,
    cx_error_spread: float = 0.55,
    bad_link_fraction: float = 0.12,
    bad_link_multiplier: float = 3.5,
    oneq_error_median: float = 4.0e-4,
    readout_error_median: float = 2.5e-2,
    t1_mean_us: float = 80.0,
    quality_gradient: float = 1.5,
    fixed_cx_errors: Optional[Dict[Edge, float]] = None,
) -> Calibration:
    """Generate a seeded synthetic calibration snapshot.

    Error rates follow lognormal distributions (matching the heavy right
    tail of real IBM snapshots), with a seeded subset of links degraded by
    *bad_link_multiplier* to create the unreliable regions that the
    partitioning algorithms must route around.

    *quality_gradient* adds the spatial correlation real chips show:
    errors grow with distance from a seeded "sweet spot" qubit, by up to
    ``1 + quality_gradient`` at the far side of the chip.  This is what
    makes co-scheduled programs compete for neighbouring regions — the
    regime where partition-level crosstalk avoidance pays off.

    *fixed_cx_errors* pins specific links to exact values (used to embed
    the Melbourne CX errors printed in the paper's Fig. 1).
    """
    rng = np.random.default_rng(seed)
    cal = Calibration()

    center = int(rng.integers(coupling.num_qubits))
    max_dist = max(
        d for q in range(coupling.num_qubits)
        for d in [coupling.distance(center, q)] if d < 10 ** 9
    ) or 1

    def gradient(q: int) -> float:
        dist = min(coupling.distance(center, q), max_dist)
        return 1.0 + quality_gradient * dist / max_dist

    for q in range(coupling.num_qubits):
        cal.oneq_error[q] = float(
            min(oneq_error_median * rng.lognormal(0.0, 0.5) * gradient(q),
                1e-2))
        p01 = float(min(
            readout_error_median * rng.lognormal(0.0, 0.6) * gradient(q),
            0.25))
        p10 = float(min(p01 * rng.uniform(1.0, 1.8), 0.30))
        cal.readout_error[q] = (p01, p10)
        t1 = max(rng.normal(t1_mean_us, 20.0), 20.0) * 1000.0  # ns
        t2 = min(max(rng.normal(0.8, 0.25), 0.2), 1.9) * t1
        cal.t1[q] = float(t1)
        cal.t2[q] = float(min(t2, 2 * t1))

    # Residual frame detunings (~1 kHz scale: 5e-6 rad/ns) come from a
    # separate stream so adding them did not reshuffle the error draws of
    # previously seeded devices.
    detuning_rng = np.random.default_rng(seed + 99991)
    for q in range(coupling.num_qubits):
        cal.detuning[q] = float(detuning_rng.normal(0.0, 5e-6))

    edges = coupling.edges
    n_bad = max(1, int(round(bad_link_fraction * len(edges))))
    bad = set(
        tuple(edges[i]) for i in rng.choice(len(edges), n_bad, replace=False)
    )
    for e in edges:
        edge_gradient = 0.5 * (gradient(e[0]) + gradient(e[1]))
        err = cx_error_median * rng.lognormal(0.0, cx_error_spread) \
            * edge_gradient
        if e in bad:
            err *= bad_link_multiplier
        cal.twoq_error[e] = float(min(err, 0.15))
    if fixed_cx_errors:
        for e, v in fixed_cx_errors.items():
            key = e if e[0] <= e[1] else (e[1], e[0])
            if key not in cal.twoq_error:
                raise ValueError(f"{e} is not a device link")
            cal.twoq_error[key] = float(v)
    return cal

"""Device coupling maps and pair-distance logic.

The parallel-execution algorithms reason about *CNOT pairs* — undirected
device links.  The crosstalk machinery additionally needs the notion of
**one-hop pairs**: two disjoint links connected by a single extra edge,
which is where simultaneous CNOTs interfere on IBM hardware.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import networkx as nx

__all__ = ["CouplingMap", "Edge"]

Edge = Tuple[int, int]


def _norm(edge: Iterable[int]) -> Edge:
    a, b = edge
    return (a, b) if a <= b else (b, a)


class CouplingMap:
    """Undirected device connectivity graph with distance utilities."""

    def __init__(self, num_qubits: int, edges: Sequence[Edge]) -> None:
        self.num_qubits = int(num_qubits)
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(self.num_qubits))
        for edge in edges:
            a, b = _norm(edge)
            if not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise ValueError(f"edge {edge} out of range")
            if a == b:
                raise ValueError(f"self-loop edge {edge}")
            self.graph.add_edge(a, b)
        # All-pairs tables are lazy: many callers (partition growth, the
        # routers' adjacency checks, induced-subgraph construction) never
        # query distances, and paying O(V^2) BFS in __init__ made every
        # induced CouplingMap expensive.  The graph is frozen after
        # construction (no mutation API), so computing once on first use
        # is safe.
        self._dist_cache: Optional[Dict[int, Dict[int, int]]] = None
        self._one_hop_cache: Optional[Dict[Edge, Tuple[Edge, ...]]] = None
        self._one_hop_pairs_cache: Optional[
            Tuple[Tuple[Edge, Edge], ...]] = None

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All links as normalized ``(low, high)`` tuples, sorted."""
        return tuple(sorted(_norm(e) for e in self.graph.edges))

    def degree(self, qubit: int) -> int:
        """Number of neighbours of *qubit*."""
        return self.graph.degree[qubit]

    def neighbors(self, qubit: int) -> Tuple[int, ...]:
        """Sorted neighbours of *qubit*."""
        return tuple(sorted(self.graph.neighbors(qubit)))

    def is_edge(self, a: int, b: int) -> bool:
        """True when qubits *a* and *b* are directly coupled."""
        return self.graph.has_edge(a, b)

    @property
    def _dist(self) -> Dict[int, Dict[int, int]]:
        """All-pairs hop distances, computed on first use."""
        if self._dist_cache is None:
            self._dist_cache = dict(
                nx.all_pairs_shortest_path_length(self.graph))
        return self._dist_cache

    def distance(self, a: int, b: int) -> int:
        """Shortest-path distance between two qubits (inf -> large)."""
        try:
            return self._dist[a][b]
        except KeyError:
            return 10 ** 9

    def shortest_path(self, a: int, b: int) -> List[int]:
        """One shortest qubit path from *a* to *b*."""
        return nx.shortest_path(self.graph, a, b)

    # ------------------------------------------------------------------
    # pair (link) logic for crosstalk
    # ------------------------------------------------------------------
    def pair_distance(self, e1: Edge, e2: Edge) -> int:
        """Hop distance between two links.

        0 when the links share a qubit; otherwise the minimum qubit
        distance between their endpoints.  A result of 1 is exactly the
        paper's "one-hop pair" relation: simultaneous CNOTs on the two
        links are crosstalk-prone.
        """
        e1, e2 = _norm(e1), _norm(e2)
        if set(e1) & set(e2):
            return 0
        return min(self.distance(a, b) for a in e1 for b in e2)

    def _one_hop_tables(self) -> Tuple[Dict[Edge, Tuple[Edge, ...]],
                                       Tuple[Tuple[Edge, Edge], ...]]:
        """One O(E^2) pass feeding both one-hop queries, cached.

        Partners accumulate per edge in increasing edge-index order, so
        the derived :meth:`one_hop_pairs` tuples match the historical
        sorted-edge scan exactly.
        """
        if self._one_hop_cache is None:
            edges = self.edges
            per_edge: Dict[Edge, List[Edge]] = {e: [] for e in edges}
            pairs: List[Tuple[Edge, Edge]] = []
            for i, e1 in enumerate(edges):
                for e2 in edges[i + 1:]:
                    if self.pair_distance(e1, e2) == 1:
                        pairs.append((e1, e2))
                        per_edge[e1].append(e2)
                        per_edge[e2].append(e1)
            self._one_hop_cache = {
                e: tuple(partners) for e, partners in per_edge.items()}
            self._one_hop_pairs_cache = tuple(pairs)
        assert self._one_hop_pairs_cache is not None
        return self._one_hop_cache, self._one_hop_pairs_cache

    def one_hop_pairs(self, edge: Edge) -> Tuple[Edge, ...]:
        """All links at pair-distance exactly 1 from *edge* (cached)."""
        edge = _norm(edge)
        per_edge, _ = self._one_hop_tables()
        found = per_edge.get(edge)
        if found is None:
            # Historical behaviour: the query edge need not be a device
            # link — fall back to the direct scan for those.
            found = tuple(
                other for other in self.edges
                if other != edge and self.pair_distance(edge, other) == 1
            )
        return found

    def all_one_hop_edge_pairs(self) -> Tuple[Tuple[Edge, Edge], ...]:
        """Every unordered pair of links at pair-distance exactly 1
        (cached after the first call)."""
        _, pairs = self._one_hop_tables()
        return pairs

    # ------------------------------------------------------------------
    # subgraph / partition helpers
    # ------------------------------------------------------------------
    def is_connected_subset(self, qubits: Sequence[int]) -> bool:
        """True when *qubits* induce a connected subgraph."""
        if not qubits:
            return False
        sub = self.graph.subgraph(qubits)
        return nx.is_connected(sub)

    def subgraph_edges(self, qubits: Sequence[int]) -> Tuple[Edge, ...]:
        """Links with both endpoints inside *qubits*."""
        qset = set(qubits)
        return tuple(
            e for e in self.edges if e[0] in qset and e[1] in qset
        )

    def boundary_edges(self, qubits: Sequence[int]) -> Tuple[Edge, ...]:
        """Links with exactly one endpoint inside *qubits*."""
        qset = set(qubits)
        return tuple(
            e for e in self.edges if (e[0] in qset) != (e[1] in qset)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CouplingMap {self.num_qubits} qubits, "
            f"{self.graph.number_of_edges()} links>"
        )

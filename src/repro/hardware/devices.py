"""Synthetic IBM-style devices used in the paper.

Topologies are the real chips' coupling maps:

- ``ibm_melbourne`` — IBM Q 16 Melbourne, 15 qubits, 2x7 ladder + end rungs
  (the device of the paper's Fig. 1); its CX errors are pinned to the
  values printed in that figure.
- ``ibm_toronto`` — IBM Q 27 Toronto, 27-qubit Falcon heavy-hex
  (Fig. 2/3 experiments).
- ``ibm_manhattan`` — IBM Q 65 Manhattan, 65-qubit Hummingbird heavy-hex
  (Fig. 4/5/6 experiments).

Calibration and crosstalk ground truth are generated with fixed seeds, so
every run of the reproduction sees the same "hardware".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

from ..sim.noise_model import NoiseModel
from .calibration import Calibration, generate_calibration
from .crosstalk import CrosstalkModel, generate_crosstalk_model
from .topology import CouplingMap, Edge

__all__ = ["Device", "ibm_melbourne", "ibm_toronto", "ibm_manhattan",
           "linear_device"]


@dataclass(frozen=True)
class Device:
    """A quantum device: topology + calibration + crosstalk ground truth."""

    name: str
    coupling: CouplingMap
    calibration: Calibration
    crosstalk: CrosstalkModel

    @property
    def num_qubits(self) -> int:
        """Number of physical qubits."""
        return self.coupling.num_qubits

    def noise_model(self) -> NoiseModel:
        """Noise model derived from the calibration snapshot."""
        return NoiseModel(
            oneq_error=dict(self.calibration.oneq_error),
            twoq_error=dict(self.calibration.twoq_error),
            readout_error=dict(self.calibration.readout_error),
            t1=dict(self.calibration.t1),
            t2=dict(self.calibration.t2),
            detuning=dict(self.calibration.detuning),
            gate_duration=dict(self.calibration.gate_duration),
        )

    def throughput(self, qubits_used: int) -> float:
        """Hardware throughput: used qubits / total qubits."""
        return qubits_used / self.num_qubits


# ----------------------------------------------------------------------
# topologies
# ----------------------------------------------------------------------

#: IBM Q 16 Melbourne: 15 working qubits, ladder topology (paper Fig. 1).
MELBOURNE_EDGES: Tuple[Edge, ...] = (
    (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6),
    (7, 8), (8, 9), (9, 10), (10, 11), (11, 12), (12, 13), (13, 14),
    (0, 14), (1, 13), (2, 12), (3, 11), (4, 10), (5, 9), (6, 8),
)

#: CX error rates (in percent) printed on the paper's Fig. 1, assigned to
#: Melbourne links: top row left->right, bottom row left->right, rungs.
MELBOURNE_FIG1_CX_PERCENT: Dict[Edge, float] = {
    (0, 1): 2.1, (1, 2): 3.1, (2, 3): 1.9, (3, 4): 5.9, (4, 5): 1.1,
    (5, 6): 5.3,
    (7, 8): 2.8, (8, 9): 2.9, (9, 10): 3.7, (10, 11): 4.0, (11, 12): 5.4,
    (12, 13): 4.9, (13, 14): 4.4,
    (0, 14): 2.6, (1, 13): 6.2, (2, 12): 3.7, (3, 11): 2.4, (4, 10): 2.8,
    (5, 9): 2.7, (6, 8): 2.7,
}

#: IBM Q 27 Toronto: Falcon r4 heavy-hex coupling map (28 links).
TORONTO_EDGES: Tuple[Edge, ...] = (
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
    (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
    (13, 14), (14, 16), (15, 18), (16, 19), (17, 18), (18, 21), (19, 20),
    (19, 22), (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
)

#: IBM Q 65 Manhattan: Hummingbird r2 heavy-hex coupling map (72 links).
MANHATTAN_EDGES: Tuple[Edge, ...] = (
    (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9),
    (0, 10), (4, 11), (8, 12),
    (10, 13), (11, 17), (12, 21),
    (13, 14), (14, 15), (15, 16), (16, 17), (17, 18), (18, 19), (19, 20),
    (20, 21), (21, 22), (22, 23),
    (15, 24), (19, 25), (23, 26),
    (24, 29), (25, 33), (26, 37),
    (27, 28), (28, 29), (29, 30), (30, 31), (31, 32), (32, 33), (33, 34),
    (34, 35), (35, 36), (36, 37),
    (27, 38), (31, 39), (35, 40),
    (38, 41), (39, 45), (40, 49),
    (41, 42), (42, 43), (43, 44), (44, 45), (45, 46), (46, 47), (47, 48),
    (48, 49), (49, 50), (50, 51),
    (43, 52), (47, 53), (51, 54),
    (52, 56), (53, 60), (54, 64),
    (55, 56), (56, 57), (57, 58), (58, 59), (59, 60), (60, 61), (61, 62),
    (62, 63), (63, 64),
)


@lru_cache(maxsize=None)
def ibm_melbourne(seed: int = 16) -> Device:
    """IBM Q 16 Melbourne with Fig. 1's CX error rates pinned."""
    coupling = CouplingMap(15, MELBOURNE_EDGES)
    fixed = {e: v / 100.0 for e, v in MELBOURNE_FIG1_CX_PERCENT.items()}
    calibration = generate_calibration(
        coupling, seed=seed,
        cx_error_median=3.0e-2, readout_error_median=4.0e-2,
        oneq_error_median=1.0e-3, t1_mean_us=55.0,
        fixed_cx_errors=fixed,
    )
    crosstalk = generate_crosstalk_model(coupling, seed=seed + 1)
    return Device("ibm_melbourne", coupling, calibration, crosstalk)


@lru_cache(maxsize=None)
def ibm_toronto(seed: int = 27) -> Device:
    """IBM Q 27 Toronto (Falcon heavy-hex)."""
    coupling = CouplingMap(27, TORONTO_EDGES)
    calibration = generate_calibration(coupling, seed=seed)
    crosstalk = generate_crosstalk_model(coupling, seed=seed + 1)
    return Device("ibm_toronto", coupling, calibration, crosstalk)


@lru_cache(maxsize=None)
def ibm_manhattan(seed: int = 65) -> Device:
    """IBM Q 65 Manhattan (Hummingbird heavy-hex)."""
    coupling = CouplingMap(65, MANHATTAN_EDGES)
    calibration = generate_calibration(coupling, seed=seed)
    crosstalk = generate_crosstalk_model(coupling, seed=seed + 1)
    return Device("ibm_manhattan", coupling, calibration, crosstalk)


def linear_device(num_qubits: int, seed: int = 0,
                  crosstalk_fraction: float = 0.25) -> Device:
    """A linear-chain device for tests and small demos."""
    coupling = CouplingMap(
        num_qubits, tuple((i, i + 1) for i in range(num_qubits - 1)))
    calibration = generate_calibration(coupling, seed=seed)
    crosstalk = generate_crosstalk_model(
        coupling, seed=seed + 1, affected_fraction=crosstalk_fraction)
    return Device(f"linear{num_qubits}", coupling, calibration, crosstalk)

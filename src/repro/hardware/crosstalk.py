"""Ground-truth crosstalk model.

On IBM hardware, crosstalk is significant between *one-hop* CNOT pairs:
driving link ``g_j`` while ``g_i`` executes raises the effective error of
``g_i``, typically by a factor of 1–5 (Murali et al., ASPLOS'20).  Real
chips only exhibit this on a minority of pairs.

This module is the *simulated physical truth*: a seeded assignment of
boost factors to one-hop link pairs.  The SRB characterization discovers
it experimentally; QuCP never reads it — QuCP only assumes "one-hop pairs
may interfere" and avoids them via the sigma parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

import numpy as np

from .topology import CouplingMap, Edge

__all__ = ["CrosstalkModel", "generate_crosstalk_model"]

PairKey = FrozenSet[Edge]


def _pair_key(e1: Edge, e2: Edge) -> PairKey:
    return frozenset((tuple(sorted(e1)), tuple(sorted(e2))))


@dataclass
class CrosstalkModel:
    """Multiplicative CX-error boosts for simultaneously-driven link pairs.

    ``factors`` maps an unordered pair of links to the factor by which each
    link's CX error is multiplied when both are driven in the same layer.
    Pairs absent from the map are unaffected (factor 1).
    """

    factors: Dict[PairKey, float] = field(default_factory=dict)

    def factor(self, e1: Edge, e2: Edge) -> float:
        """Boost factor when links *e1* and *e2* are driven together."""
        return self.factors.get(_pair_key(e1, e2), 1.0)

    def affected_pairs(self, threshold: float = 1.5
                       ) -> Tuple[Tuple[Edge, Edge], ...]:
        """Link pairs whose boost exceeds *threshold* (Fig. 2 red arrows)."""
        out = []
        for key, f in self.factors.items():
            if f >= threshold:
                e1, e2 = sorted(key)
                out.append((e1, e2))
        return tuple(sorted(out))

    def combined_factor(self, edge: Edge,
                        active: Tuple[Edge, ...]) -> float:
        """Total boost on *edge* given the other links driven in the layer.

        Boosts from multiple simultaneous aggressors multiply — the
        standard independent-error composition.
        """
        total = 1.0
        for other in active:
            if tuple(sorted(other)) == tuple(sorted(edge)):
                continue
            total *= self.factor(edge, other)
        return total


def generate_crosstalk_model(
    coupling: CouplingMap,
    seed: int,
    affected_fraction: float = 0.5,
    factor_low: float = 3.0,
    factor_high: float = 5.0,
    mild_factor: float = 1.1,
) -> CrosstalkModel:
    """Seeded ground truth: a minority of one-hop pairs interfere strongly.

    Every one-hop pair receives at least a mild boost (*mild_factor*); a
    seeded *affected_fraction* of them receive a strong boost drawn
    uniformly from [*factor_low*, *factor_high*].  Pairs at distance >= 2
    are unaffected, matching the experimental finding that crosstalk decays
    sharply with distance.
    """
    rng = np.random.default_rng(seed)
    model = CrosstalkModel()
    one_hop = coupling.all_one_hop_edge_pairs()
    if not one_hop:
        return model
    n_strong = int(round(affected_fraction * len(one_hop)))
    strong = set(
        int(i) for i in rng.choice(len(one_hop), n_strong, replace=False))
    for idx, (e1, e2) in enumerate(one_hop):
        if idx in strong:
            factor = float(rng.uniform(factor_low, factor_high))
        else:
            factor = mild_factor
        model.factors[_pair_key(e1, e2)] = factor
    return model

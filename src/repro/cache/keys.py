"""Cache-key layer: structural keys, equivalence classes, stable digests.

Every compile-cache tier keys on the same request description — circuit
structure plus placement (partition, EFS, crosstalk pairs), the device,
and the transpiler hook — but each tier needs a different *form* of it:

- the **exact key** is the PR-4 structural tuple (label-exact circuit
  structure, ``id()``-based device/hook identity) used by the in-memory
  L1 and the in-flight coalescing map — cheap, process-local;
- the **canonical key** adds equivalence-class dedup: a cheap
  qubit-relabel canonicalization (first-appearance order over the gate
  sequence) maps equivalent-but-not-identical circuits to one
  representative, so a circuit submitted over a permuted qubit register
  reuses the representative's compiled artifact (layouts remapped
  through the relabeling — the physical circuit is label-invariant);
- the **persistent digest** is a stable SHA-256 over the canonical key
  with *value* fingerprints in place of ``id()``s (device
  coupling/calibration fingerprints, a declared hook token), valid
  across processes and process restarts — the on-disk L2 key.

:func:`transpile_key` computes all three in one pass and returns them as
a :class:`TranspileKey` whose hash/equality is the exact tuple, so the
existing L1/coalescing semantics are unchanged.

The equivalence model mirrors sat_revsynth's ``database/equivalence.py``:
cheap invariants hash -> equivalence class -> canonical representative.
Canonicalization is *sound* but not complete: two circuits mapping to
the same canonical form are always related by a qubit relabeling (hence
execution-identical — same clbit distribution), while some genuinely
equivalent pairs (e.g. commuting gate reorderings) land in different
classes and simply miss the dedup.

Index-sensitive hooks (see :func:`index_sensitive_transpiler`) never get
a canonical key or a digest: their artifacts depend on the queue
position, so equivalence-class or cross-process reuse would silently
change behavior (CNA's precompiled lookup is the canonical example).
"""

from __future__ import annotations

import hashlib
import numbers
import threading
from collections import Counter, OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.controlflow import (ControlFlowOp, ForLoopOp, IfElseOp,
                                    WhileLoopOp)
from ..circuits.parameters import Parameter, ParameterExpression
from ..transpiler.context import (
    calibration_fingerprint,
    coupling_fingerprint,
)
from ..transpiler.layout import Layout
from ..transpiler.transpile import TranspileResult

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..core.qucp import ProgramAllocation
    from ..hardware.devices import Device

__all__ = [
    "CanonicalForm",
    "TranspileKey",
    "canonical_form",
    "circuit_key",
    "device_digest",
    "index_sensitive_transpiler",
    "invert_relabel",
    "key_digest",
    "persistent_cache_token",
    "persistent_token",
    "remap_layout",
    "remap_result",
    "transpile_key",
]

#: Attribute marking a transpiler hook whose output depends on
#: ``ProgramAllocation.index`` (see :func:`index_sensitive_transpiler`).
_INDEX_SENSITIVE_ATTR = "_observes_allocation_index"

#: Attribute carrying a hook's stable cross-process cache token
#: (see :func:`persistent_cache_token`).
_PERSISTENT_TOKEN_ATTR = "_persistent_cache_token"

#: Bump when the persistent key or payload format changes — old store
#: entries then simply miss instead of deserializing garbage.
_DIGEST_SCHEMA = 1


def index_sensitive_transpiler(fn):
    """Mark *fn* as observing ``ProgramAllocation.index``.

    The default transpile key is *structural*: it covers the circuit,
    partition, EFS, and crosstalk pairs but not the queue index, so
    identical programs submitted at different queue positions dedup into
    one cache entry.  A hook whose result genuinely depends on the index
    (e.g. CNA's precompiled-lookup adapter) must be wrapped with this
    decorator; its entries are then keyed index-sensitively, never alias
    across queue positions, and are excluded from equivalence-class and
    persistent reuse.
    """
    setattr(fn, _INDEX_SENSITIVE_ATTR, True)
    return fn


def persistent_cache_token(token: str):
    """Decorator declaring a hook's stable cross-process cache identity.

    In-memory tiers key hooks by ``id()``, which means nothing across
    processes — so only hooks carrying a declared token participate in
    the persistent store.  The token must change whenever the hook's
    output would (it plays the role a version string plays in any
    on-disk cache)::

        @persistent_cache_token("my-pipeline-v2")
        def my_hook(circuit, device, allocation): ...
    """

    def mark(fn):
        setattr(fn, _PERSISTENT_TOKEN_ATTR, str(token))
        return fn

    return mark


def persistent_token(fn) -> Optional[str]:
    """The hook's declared persistent token, or ``None`` (not persistable)."""
    token = getattr(fn, _PERSISTENT_TOKEN_ATTR, None)
    return None if token is None else str(token)


def _cf_param(p):
    """Value-encode a body parameter so loop-parameterized bodies hash.

    A for-loop body's instructions carry the symbolic loop parameter; two
    freshly-built copies of the same workload hold *different* Parameter
    objects (identity-hashed), which would defeat dedup.  Inside a
    control-flow payload the parameter is op-local — the op itself
    records the binding (indexset + parameter name) — so encoding by
    name is sound there.
    """
    if isinstance(p, Parameter):
        return ("param", p.name)
    if isinstance(p, ParameterExpression):
        terms = tuple(sorted(
            (t.name, float(c)) for t, c in p._terms.items()))  # noqa: SLF001
        return ("expr", terms, float(p._constant))  # noqa: SLF001
    return p


def _condition_key(condition) -> Tuple:
    return (tuple(condition.clbits), condition.value)


def _control_flow_payload(op: ControlFlowOp,
                          relabel: Optional[Dict[int, int]]) -> Tuple:
    """Recursive structural payload of a control-flow op.

    Body instruction sequences are encoded in order (with qubits pushed
    through *relabel* when canonicalizing); declared body widths are
    deliberately excluded — they are a labeling artifact (``max touched
    qubit + 1``), and including them would split relabel-equivalent
    dynamic circuits into different classes.
    """
    bodies = tuple(
        tuple(_body_entry(inst, relabel) for inst in body.instructions)
        for body in op.bodies)
    if isinstance(op, IfElseOp):
        extra: Tuple = ("if", _condition_key(op.condition), len(op.bodies))
    elif isinstance(op, ForLoopOp):
        extra = ("for", tuple(op.indexset),
                 None if op.loop_parameter is None
                 else op.loop_parameter.name)
    elif isinstance(op, WhileLoopOp):
        extra = ("while", _condition_key(op.condition), op.max_iterations)
    else:  # pragma: no cover - future op kinds fall back to the name
        extra = (op.name,)
    return extra + (bodies,)


def _body_entry(inst, relabel: Optional[Dict[int, int]]) -> Tuple:
    qubits = inst.qubits if relabel is None \
        else tuple(relabel[q] for q in inst.qubits)
    if isinstance(inst.gate, ControlFlowOp):
        return (inst.name, _control_flow_payload(inst.gate, relabel),
                qubits, inst.clbits)
    return (inst.name, tuple(_cf_param(p) for p in inst.params),
            qubits, inst.clbits)


def _entry(inst, relabel: Optional[Dict[int, int]] = None) -> Tuple:
    """One top-level instruction's key entry.

    Static instructions keep the historical raw-params form (so existing
    keys are unchanged); control-flow ops get the recursive payload.
    """
    qubits = inst.qubits if relabel is None \
        else tuple(relabel[q] for q in inst.qubits)
    if isinstance(inst.gate, ControlFlowOp):
        return (inst.name, _control_flow_payload(inst.gate, relabel),
                qubits, inst.clbits)
    return (inst.name, inst.params, qubits, inst.clbits)


def circuit_key(circuit: QuantumCircuit) -> Optional[Tuple]:
    """Structural fingerprint of a circuit, or None when unhashable.

    Circuits are compared by value, not identity, so two benchmark combos
    that instantiate the same workload twice share cache entries.
    Control-flow ops contribute a recursive payload (nested bodies,
    condition, indexset/max-iterations), so two dynamic programs with
    the same block structure share entries too.  Unbound symbolic
    parameters may be unhashable; those circuits simply bypass the
    cache.
    """
    key = (
        circuit.num_qubits,
        circuit.num_clbits,
        tuple(_entry(inst) for inst in circuit),
    )
    try:
        hash(key)
    except TypeError:
        return None
    return key


# ----------------------------------------------------------------------
# equivalence-class canonicalization
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CanonicalForm:
    """One circuit's place in the equivalence-class model.

    ``exact_key`` is the label-exact structural key; ``key`` is the
    canonical representative's structural key (qubits relabeled by first
    appearance in the gate sequence); ``relabel`` maps each original
    logical qubit to its canonical label (``None`` when the circuit
    already is its own representative); ``invariants`` are the cheap
    label-free invariants sharding the persistent store's class index.
    """

    exact_key: Tuple
    key: Tuple
    relabel: Optional[Tuple[int, ...]]
    invariants: Tuple


def _record_appearance(instructions, order: Dict[int, int]) -> None:
    """First-appearance qubit order, descending into control-flow bodies.

    A control-flow op's own ``inst.qubits`` is a *sorted* footprint —
    walking it directly would make the relabeling depend on the original
    labels and break relabel-equivalence.  Walking the body instruction
    sequences in program order keeps the canonical form invariant under
    qubit permutation.
    """
    for inst in instructions:
        if isinstance(inst.gate, ControlFlowOp):
            for body in inst.gate.bodies:
                _record_appearance(body.instructions, order)
        else:
            for q in inst.qubits:
                if q not in order:
                    order[q] = len(order)


def canonical_form(circuit: QuantumCircuit) -> Optional[CanonicalForm]:
    """Canonicalize *circuit*, or ``None`` when unhashable.

    Qubits are relabeled in order of first appearance in the instruction
    sequence (unused qubits keep their relative order after the used
    ones), so any two circuits differing only by a qubit-register
    permutation share one canonical form.  Clbits are untouched — the
    measured distribution is therefore invariant across a class, which
    is what makes representative-artifact reuse execution-identical.
    """
    exact = circuit_key(circuit)
    if exact is None:
        return None
    order: Dict[int, int] = {}
    _record_appearance(circuit.instructions, order)
    nxt = len(order)
    relabel = [0] * circuit.num_qubits
    identity = True
    for q in range(circuit.num_qubits):
        label = order.get(q)
        if label is None:
            label = nxt
            nxt += 1
        relabel[q] = label
        if label != q:
            identity = False
    names = Counter(inst.name for inst in circuit)
    invariants = (
        circuit.num_qubits,
        circuit.num_clbits,
        len(circuit),
        tuple(sorted(names.items())),
        sum(1 for inst in circuit if len(inst.qubits) == 2),
    )
    if identity:
        return CanonicalForm(exact, exact, None, invariants)
    relabel_map = {q: label for q, label in enumerate(relabel)}
    canon = (
        circuit.num_qubits,
        circuit.num_clbits,
        tuple(_entry(inst, relabel_map) for inst in circuit),
    )
    return CanonicalForm(exact, canon, tuple(relabel), invariants)


def invert_relabel(relabel: Tuple[int, ...]) -> Tuple[int, ...]:
    """Inverse permutation: canonical label -> original logical qubit."""
    inverse = [0] * len(relabel)
    for orig, canon in enumerate(relabel):
        inverse[canon] = orig
    return tuple(inverse)


def remap_layout(layout: Layout,
                 relabel: Optional[Tuple[int, ...]]) -> Layout:
    """*layout* with each logical qubit ``q`` renamed to ``relabel[q]``.

    ``None`` means the identity relabeling and returns *layout* as is.
    """
    if relabel is None:
        return layout
    return Layout({relabel[q]: p for q, p in layout.as_dict().items()})


def remap_result(result: TranspileResult,
                 relabel: Optional[Tuple[int, ...]]) -> TranspileResult:
    """*result* with its layouts' logical labels renamed via *relabel*.

    The transpiled circuit is expressed over *physical* indices and is
    untouched — relabeling logical qubits only moves which logical name
    each layout entry carries.  ``None`` (identity) returns *result*
    itself.
    """
    if relabel is None:
        return result
    return replace(
        result,
        initial_layout=remap_layout(result.initial_layout, relabel),
        final_layout=remap_layout(result.final_layout, relabel),
    )


# ----------------------------------------------------------------------
# stable digests
# ----------------------------------------------------------------------

def _normalize(obj):
    """Coerce numpy scalars to plain Python so ``repr`` is stable."""
    if isinstance(obj, (tuple, list)):
        return tuple(_normalize(o) for o in obj)
    if isinstance(obj, bool) or obj is None or isinstance(obj, str):
        return obj
    if isinstance(obj, numbers.Integral):
        return int(obj)
    if isinstance(obj, numbers.Real):
        return float(obj)
    return obj


def key_digest(parts) -> str:
    """Stable SHA-256 hex digest of a (nested) tuple of plain values."""
    return hashlib.sha256(repr(_normalize(parts)).encode()).hexdigest()


#: id-keyed device-digest memo.  Entries pin the device object so a
#: recycled id() can never alias a different device (same convention as
#: the in-memory cache values); bounded because benchmarks mint
#: short-lived devices.  Like the ``id()``-keyed in-memory tiers, the
#: memo treats a device's calibration as frozen — mutate it in place and
#: stale entries may be served; build a fresh Device instead.
_DEVICE_DIGESTS: "OrderedDict[int, Tuple[object, str]]" = OrderedDict()
_DEVICE_DIGESTS_MAX = 64
_device_digest_lock = threading.Lock()


def device_digest(device: "Device") -> str:
    """Stable value digest of what compilation observes of a device."""
    with _device_digest_lock:
        entry = _DEVICE_DIGESTS.get(id(device))
        if entry is not None and entry[0] is device:
            _DEVICE_DIGESTS.move_to_end(id(device))
            return entry[1]
    digest = key_digest((
        "device",
        coupling_fingerprint(device.coupling),
        calibration_fingerprint(device.calibration),
    ))
    with _device_digest_lock:
        _DEVICE_DIGESTS[id(device)] = (device, digest)
        while len(_DEVICE_DIGESTS) > _DEVICE_DIGESTS_MAX:
            _DEVICE_DIGESTS.popitem(last=False)
    return digest


# ----------------------------------------------------------------------
# the compound transpile key
# ----------------------------------------------------------------------

@dataclass(frozen=True, eq=False)
class TranspileKey:
    """All three key forms of one transpile request.

    Hash/equality delegate to :attr:`exact`, so in-flight coalescing and
    the exact L1 behave exactly as the plain tuple key did — two
    same-class requests with different labelings are distinct keys and
    never share a future (each gets artifacts in its own labeling).
    """

    #: Label-exact structural tuple (the PR-4 key, id-based identity).
    exact: Tuple
    #: In-memory equivalence-class key; ``None`` for index-sensitive hooks.
    canonical: Optional[Tuple]
    #: Original logical qubit -> canonical label (``None`` = identity).
    relabel: Optional[Tuple[int, ...]]
    #: Stable cross-process store key; ``None`` = not persistable.
    digest: Optional[str]
    #: Class-invariants digest, the store's equivalence-class index.
    invariants: Optional[str]

    def __hash__(self) -> int:
        return hash(self.exact)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TranspileKey):
            return self.exact == other.exact
        return NotImplemented


def transpile_key(circuit: QuantumCircuit, device: "Device",
                  allocation: "ProgramAllocation",
                  transpiler_fn) -> Optional[TranspileKey]:
    """Compute every key form of one request, or ``None`` (unhashable).

    The exact key is *structural*: circuit structure, placement
    (partition, EFS, crosstalk pairs), the device, and the hook — but
    **not** ``allocation.index``, so identical programs admitted at
    different queue positions share one entry across submissions.  Hooks
    that actually observe the index (marked via
    :func:`index_sensitive_transpiler`) get the index folded back in and
    no canonical/persistent keys at all.
    """
    form = canonical_form(circuit)
    if form is None:
        return None
    index_sensitive = getattr(transpiler_fn, _INDEX_SENSITIVE_ATTR, False)
    index = allocation.index if index_sensitive else None
    placement = (allocation.partition, allocation.efs,
                 allocation.crosstalk_pairs)
    exact = (form.exact_key, index) + placement + (
        id(device), id(transpiler_fn))
    if index_sensitive:
        return TranspileKey(exact, None, None, None, None)
    canonical = (form.key,) + placement + (id(device), id(transpiler_fn))
    token = persistent_token(transpiler_fn)
    digest = invariants = None
    if token is not None:
        digest = key_digest(
            ("transpile", _DIGEST_SCHEMA, form.key) + placement
            + (device_digest(device), token))
        invariants = key_digest(("invariants", _DIGEST_SCHEMA)
                                + form.invariants)
    return TranspileKey(exact, canonical, form.relabel, digest, invariants)

"""On-disk L2: a SQLite (WAL-mode) artifact store shared across processes.

:class:`PersistentCache` maps stable string digests (see
:mod:`repro.cache.keys`) to opaque payload blobs, surviving process
death and safely shared by concurrent readers/writers — WAL mode lets
readers proceed while one writer commits, and a busy timeout serializes
concurrent writers.  Rows carry the equivalence-class
invariants digest alongside the payload (indexed), mirroring
sat_revsynth's ``invariants_hash -> equivalence class -> representative``
database model: one row per class representative, the invariants column
as the class index.

Failure policy: an unusable store must never take a job down.  Every
SQLite error — a corrupt/truncated file, a garbage non-database file, a
disk error mid-query — disables the store with a single
:class:`RuntimeWarning` and makes every later ``get`` miss and ``put``
no-op, so callers transparently fall back to cold compilation.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
import warnings
from typing import Dict, List, Optional

__all__ = ["PersistentCache"]

#: Bump when the table layout changes; newer-schema stores are left
#: untouched (disabled with a warning) instead of being misread.
_SCHEMA_VERSION = 1


class PersistentCache:
    """SQLite-backed digest -> payload store (the persistent L2 tier).

    Parameters
    ----------
    path:
        Store file location; parent directories are created.  Each
        process opens its own connection — instances are cheap, the
        store is the shared resource.
    timeout:
        Seconds a writer waits on a locked database before erroring
        (SQLite busy timeout); generous because fleet workers write
        concurrently.
    """

    def __init__(self, path: str, timeout: float = 30.0) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None
        self.disabled = False
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.errors = 0
        try:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            # autocommit (isolation_level=None): every statement commits
            # itself, so concurrent processes never deadlock on a
            # half-open transaction; check_same_thread=False because the
            # compile service publishes from worker callback threads
            # (all access is serialized by self._lock).
            conn = sqlite3.connect(self.path, timeout=timeout,
                                   isolation_level=None,
                                   check_same_thread=False)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                "  key TEXT PRIMARY KEY, value TEXT NOT NULL)")
            conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES "
                "('schema_version', ?)", (str(_SCHEMA_VERSION),))
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None or int(row[0]) != _SCHEMA_VERSION:
                conn.close()
                raise sqlite3.DatabaseError(
                    f"unsupported store schema version {row and row[0]!r} "
                    f"(this build reads version {_SCHEMA_VERSION})")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS artifacts ("
                "  key TEXT PRIMARY KEY,"
                "  invariants TEXT NOT NULL DEFAULT '',"
                "  payload BLOB NOT NULL,"
                "  created REAL NOT NULL)")
            conn.execute(
                "CREATE INDEX IF NOT EXISTS artifacts_invariants "
                "ON artifacts (invariants)")
            self._conn = conn
        except (sqlite3.Error, OSError, ValueError) as exc:
            self._disable(exc)

    # ------------------------------------------------------------------
    def _disable(self, exc: BaseException) -> None:
        """Take the store out of service: warn once, then miss forever.

        A corrupt or otherwise unusable store degrades the process to
        cold compilation — it must never crash a job.
        """
        self.errors += 1
        if not self.disabled:
            self.disabled = True
            warnings.warn(
                f"persistent compile cache {self.path!r} is unusable "
                f"({exc}); continuing without it — compiles fall back "
                "to the cold path",
                RuntimeWarning, stacklevel=3)
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - already broken
                pass

    # ------------------------------------------------------------------
    def get(self, digest: Optional[str]) -> Optional[bytes]:
        """The payload stored under *digest*, or ``None``."""
        if digest is None or self._conn is None:
            return None
        with self._lock:
            if self._conn is None:
                return None
            try:
                row = self._conn.execute(
                    "SELECT payload FROM artifacts WHERE key = ?",
                    (digest,)).fetchone()
            except sqlite3.Error as exc:
                self._disable(exc)
                return None
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return bytes(row[0])

    def put(self, digest: Optional[str], payload: bytes,
            invariants: str = "") -> None:
        """Insert/replace *payload* under *digest* (no-op when disabled)."""
        if digest is None or self._conn is None:
            return
        with self._lock:
            if self._conn is None:
                return
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO artifacts "
                    "(key, invariants, payload, created) "
                    "VALUES (?, ?, ?, ?)",
                    (digest, invariants, payload, time.time()))
            except sqlite3.Error as exc:
                self._disable(exc)
                return
        self.writes += 1

    def delete(self, digest: str) -> None:
        """Drop one entry (used when a payload fails to deserialize)."""
        if self._conn is None:
            return
        with self._lock:
            if self._conn is None:
                return
            try:
                self._conn.execute(
                    "DELETE FROM artifacts WHERE key = ?", (digest,))
            except sqlite3.Error as exc:
                self._disable(exc)

    def clear(self) -> None:
        """Drop every artifact (the shared on-disk state — use with care)."""
        if self._conn is None:
            return
        with self._lock:
            if self._conn is None:
                return
            try:
                self._conn.execute("DELETE FROM artifacts")
            except sqlite3.Error as exc:
                self._disable(exc)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self._conn is None:
            return 0
        with self._lock:
            if self._conn is None:
                return 0
            try:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM artifacts").fetchone()
            except sqlite3.Error as exc:
                self._disable(exc)
                return 0
        return int(row[0])

    def invariant_classes(self) -> Dict[str, int]:
        """Representatives per equivalence-class invariants digest."""
        if self._conn is None:
            return {}
        with self._lock:
            if self._conn is None:
                return {}
            try:
                rows: List = self._conn.execute(
                    "SELECT invariants, COUNT(*) FROM artifacts "
                    "GROUP BY invariants").fetchall()
            except sqlite3.Error as exc:
                self._disable(exc)
                return {}
        return {str(inv): int(count) for inv, count in rows}

    @property
    def stats(self) -> Dict[str, int]:
        """Counter snapshot."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "errors": self.errors,
            "disabled": int(self.disabled),
        }

    def close(self) -> None:
        """Close the connection (the store file stays valid)."""
        with self._lock:
            conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - closing best-effort
                pass

    def __enter__(self) -> "PersistentCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "disabled" if self.disabled else f"{len(self)} artifacts"
        return f"<PersistentCache {self.path!r} ({state})>"

"""Tier composition: exact L1 + equivalence-class L1 + persistent L2.

:class:`TieredCache` is the compile-cache subsystem's engine.  One
lookup walks three tiers, cheapest first:

1. **exact L1** — label-exact key, artifact already in the caller's
   labeling (the historical :class:`~repro.core.ExecutionCache` path);
2. **equivalence-class L1** — same process, same device/hook, but the
   request's circuit is a qubit-relabeled twin of an earlier one: the
   class representative's artifact is remapped into the request's
   labeling and promoted into the exact L1;
3. **persistent L2** — the cross-process store: the representative's
   pickled artifact is deserialized, remapped, and promoted into both
   L1 tables, so a cold process on a warm store pays one unpickle per
   class instead of one compile per program.

Stores mirror the walk downward: the exact artifact lands in L1, its
canonical (representative-labeled) form in the class table, and — when
the request is persistable (default transpiler or a hook with a declared
:func:`~repro.cache.keys.persistent_cache_token`) — in the L2 store.

Every artifact handed out is in the exact labeling of the request that
asked, so callers never see a representative's labels; equivalence-class
reuse is invisible except in the counters (``equivalence_hits``,
``promotions``).
"""

from __future__ import annotations

import pickle
import threading
from typing import TYPE_CHECKING, Dict, Optional

from ..transpiler.transpile import TranspileResult
from .keys import TranspileKey, invert_relabel, remap_result
from .memory import MemoryCache
from .persistent import PersistentCache

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..hardware.devices import Device

__all__ = ["TieredCache", "dumps_artifact", "loads_artifact"]


def dumps_artifact(result: TranspileResult) -> bytes:
    """Serialize one artifact for the persistent store."""
    return pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)


def loads_artifact(payload: bytes) -> Optional[TranspileResult]:
    """Deserialize a store payload; ``None`` for anything malformed.

    A truncated or garbage blob must degrade to a cache miss (cold
    compile), never to an exception in the lookup path.
    """
    try:
        artifact = pickle.loads(payload)
    except Exception:  # noqa: BLE001 - any malformed payload is a miss
        return None
    if not isinstance(artifact, TranspileResult):
        return None
    return artifact


class TieredCache:
    """Layered transpile-artifact cache behind one lookup/store API.

    Parameters
    ----------
    max_entries:
        LRU bound applied to each in-memory table (``None`` unbounded,
        ``0`` disables in-memory storage).
    store_path:
        Location of the persistent L2 store; ``None`` runs in-memory
        only.  Ignored when *persistent* is given.
    persistent:
        An existing :class:`PersistentCache` to attach (shared stores,
        tests).
    """

    def __init__(self, max_entries: Optional[int] = None,
                 store_path: Optional[str] = None,
                 persistent: Optional[PersistentCache] = None) -> None:
        self.l1 = MemoryCache(max_entries)
        self.l1_classes = MemoryCache(max_entries)
        if persistent is None and store_path is not None:
            persistent = PersistentCache(store_path)
        self.l2 = persistent
        self._lock = threading.Lock()
        self.equivalence_hits = 0
        self.promotions = 0
        self.decode_errors = 0

    # ------------------------------------------------------------------
    def lookup(self, key: TranspileKey, device: "Device",
               transpiler_fn) -> Optional[TranspileResult]:
        """The cached artifact in *key*'s exact labeling, or ``None``.

        Values are shared (do not mutate) — the caller freshens before
        handing them to anything that may.  Device/hook identity is
        re-checked against the stored strong references, so a recycled
        ``id()`` can never alias a different object.
        """
        entry = self.l1.get(key.exact)
        if (entry is not None and entry[0] is device
                and entry[1] is transpiler_fn):
            return entry[2]
        if key.canonical is None:
            return None
        entry = self.l1_classes.get(key.canonical)
        if (entry is not None and entry[0] is device
                and entry[1] is transpiler_fn):
            result = self._to_request_labeling(entry[2], key)
            self.l1.put(key.exact, (device, transpiler_fn, result))
            with self._lock:
                self.equivalence_hits += 1
            return result
        if self.l2 is None or key.digest is None:
            return None
        payload = self.l2.get(key.digest)
        if payload is None:
            return None
        canonical = loads_artifact(payload)
        if canonical is None:
            # Row-level corruption: drop the entry so the next writer
            # replaces it, and treat this request as a plain miss.
            with self._lock:
                self.decode_errors += 1
            self.l2.delete(key.digest)
            return None
        self.l1_classes.put(key.canonical,
                            (device, transpiler_fn, canonical))
        result = self._to_request_labeling(canonical, key)
        self.l1.put(key.exact, (device, transpiler_fn, result))
        with self._lock:
            self.promotions += 1
        return result

    def store(self, key: TranspileKey, device: "Device", transpiler_fn,
              result: TranspileResult) -> None:
        """Publish one computed artifact into every applicable tier."""
        self.l1.put(key.exact, (device, transpiler_fn, result))
        if key.canonical is None:
            return
        canonical = remap_result(result, key.relabel)
        self.l1_classes.put(key.canonical,
                            (device, transpiler_fn, canonical))
        if self.l2 is not None and key.digest is not None:
            self.l2.put(key.digest, dumps_artifact(canonical),
                        key.invariants or "")

    @staticmethod
    def _to_request_labeling(canonical: TranspileResult,
                             key: TranspileKey) -> TranspileResult:
        """Representative artifact -> the request's own qubit labels."""
        if key.relabel is None:
            return canonical
        return remap_result(canonical, invert_relabel(key.relabel))

    # ------------------------------------------------------------------
    def clear(self, persistent: bool = False) -> None:
        """Drop the in-memory tiers (and, optionally, the L2 store)."""
        self.l1.clear()
        self.l1_classes.clear()
        if persistent and self.l2 is not None:
            self.l2.clear()

    @property
    def stats(self) -> Dict[str, int]:
        """Cross-tier counter snapshot.

        ``evictions`` sums both in-memory tables; the ``persistent_*``
        entries are zero when no L2 store is attached.
        """
        l2 = self.l2.stats if self.l2 is not None else {}
        return {
            "evictions": self.l1.evictions + self.l1_classes.evictions,
            "equivalence_hits": self.equivalence_hits,
            "promotions": self.promotions,
            "decode_errors": self.decode_errors,
            "persistent_hits": l2.get("hits", 0),
            "persistent_misses": l2.get("misses", 0),
            "persistent_writes": l2.get("writes", 0),
            "persistent_errors": l2.get("errors", 0),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        l2 = "none" if self.l2 is None else repr(self.l2.path)
        return (f"<TieredCache l1={len(self.l1)} "
                f"classes={len(self.l1_classes)} l2={l2}>")

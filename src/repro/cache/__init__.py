"""Layered compile-cache subsystem.

One unified cache API over three tiers:

- :mod:`~repro.cache.keys` — structural cache keys, qubit-relabel
  equivalence-class canonicalization, and stable cross-process digests
  (:func:`transpile_key` computes all forms in one pass);
- :mod:`~repro.cache.memory` — :class:`MemoryCache`, the thread-safe
  in-process LRU tier (L1) with hit/miss/eviction counters;
- :mod:`~repro.cache.persistent` — :class:`PersistentCache`, the
  SQLite WAL-mode on-disk tier (L2) shared across processes, with a
  warn-once/fall-back-cold failure policy;
- :mod:`~repro.cache.tiered` — :class:`TieredCache`, composing exact
  L1 + equivalence-class L1 + L2 with promotion on hit.

:class:`repro.core.ExecutionCache` keeps its public API and delegates
to a :class:`TieredCache` underneath; anything implementing the
:class:`CacheBackend` protocol can slot into the composition.
"""

from typing import Dict, Hashable, Optional, Protocol, runtime_checkable

from .keys import (
    CanonicalForm,
    TranspileKey,
    canonical_form,
    circuit_key,
    device_digest,
    index_sensitive_transpiler,
    invert_relabel,
    key_digest,
    persistent_cache_token,
    persistent_token,
    remap_layout,
    remap_result,
    transpile_key,
)
from .memory import MemoryCache
from .persistent import PersistentCache
from .tiered import TieredCache, dumps_artifact, loads_artifact

__all__ = [
    "CacheBackend",
    "CanonicalForm",
    "MemoryCache",
    "PersistentCache",
    "TieredCache",
    "TranspileKey",
    "canonical_form",
    "circuit_key",
    "device_digest",
    "dumps_artifact",
    "index_sensitive_transpiler",
    "invert_relabel",
    "key_digest",
    "loads_artifact",
    "persistent_cache_token",
    "persistent_token",
    "remap_layout",
    "remap_result",
    "transpile_key",
]


@runtime_checkable
class CacheBackend(Protocol):
    """What a tier must provide to slot into the composition.

    ``get`` returns the stored value or ``None``; ``put`` inserts or
    replaces; ``stats`` is a counter snapshot.  :class:`MemoryCache`
    and :class:`PersistentCache` both satisfy this structurally.
    """

    def get(self, key: Hashable) -> Optional[object]:
        ...  # pragma: no cover - protocol signature

    def put(self, key: Hashable, value) -> None:
        ...  # pragma: no cover - protocol signature

    @property
    def stats(self) -> Dict[str, int]:
        ...  # pragma: no cover - protocol signature

"""In-memory L1: a thread-safe LRU table with hit/miss/eviction counters.

:class:`MemoryCache` is the process-local tier every lookup touches
first.  It is deliberately dumb — hashable key in, value out — so the
same class backs the exact-key table, the equivalence-class table, and
the ideal-distribution table.  ``max_entries`` bounds it LRU-style
(``None`` = unbounded, ``0`` disables storage entirely, matching the
historical ``ExecutionCache(max_entries=...)`` semantics).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional

__all__ = ["MemoryCache"]


class MemoryCache:
    """Bounded LRU mapping with counters — the in-memory cache tier."""

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self.max_entries = max_entries
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        # Guards the compound evict+insert: concurrent writers in the
        # eviction path could otherwise pop the same head key.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable):
        """The cached value (refreshing its recency), or ``None``."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        """Insert/replace *value*, evicting least-recently-used entries
        past :attr:`max_entries` (``max_entries=0`` stores nothing)."""
        with self._lock:
            if self.max_entries is not None:
                if self.max_entries <= 0:
                    return
                while (len(self._data) >= self.max_entries
                       and key not in self._data):
                    self._data.popitem(last=False)
                    self.evictions += 1
            self._data[key] = value
            self._data.move_to_end(key)

    def pop(self, key: Hashable) -> None:
        """Drop *key* if present (no error, no counter)."""
        with self._lock:
            self._data.pop(key, None)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._data.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    @property
    def stats(self) -> Dict[str, int]:
        """Counter snapshot (plus the current entry count)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._data),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bound = ("unbounded" if self.max_entries is None
                 else f"max {self.max_entries}")
        return f"<MemoryCache {len(self)} entries, {bound}>"

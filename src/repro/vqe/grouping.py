"""Commuting-group partitioning for simultaneous measurement (PG).

Naive VQE measurement runs one circuit per Pauli term.  Grouping
qubit-wise-commuting terms lets one measured shot serve every term in the
group (Gokhale et al., McClean et al.) — for the paper's H2 Hamiltonian
the 5 terms collapse into two groups: {II, IZ, ZI, ZZ} and {XX}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .pauli import PauliOperator, PauliString

__all__ = ["MeasurementGroup", "group_commuting_terms"]


@dataclass(frozen=True)
class MeasurementGroup:
    """Pauli terms measurable in one shot, plus the shared basis.

    ``basis[q]`` is ``"X"``, ``"Y"`` or ``"Z"`` — the measurement basis of
    qubit *q* (``"Z"`` when every member is diagonal there).
    """

    terms: Tuple[Tuple[PauliString, float], ...]
    basis: Tuple[str, ...]

    @property
    def num_qubits(self) -> int:
        """Number of qubits spanned."""
        return len(self.basis)


def _shared_basis(strings: Sequence[PauliString],
                  num_qubits: int) -> Tuple[str, ...]:
    basis = ["Z"] * num_qubits
    for string in strings:
        for q, c in enumerate(string.label):
            if c == "I":
                continue
            if basis[q] != "Z" and basis[q] != c:
                raise ValueError("group is not qubit-wise commuting")
            basis[q] = c
    return tuple(basis)


def group_commuting_terms(operator: PauliOperator
                          ) -> List[MeasurementGroup]:
    """Greedy qubit-wise-commuting grouping (first-fit).

    Identity terms join the first group (they need no measurement at
    all — their expectation is 1).
    """
    groups: List[List[Tuple[PauliString, float]]] = []
    for string, coeff in operator:
        if string.is_identity and groups:
            groups[0].append((string, coeff))
            continue
        placed = False
        for group in groups:
            if all(string.qubit_wise_commutes_with(member)
                   for member, _ in group):
                group.append((string, coeff))
                placed = True
                break
        if not placed:
            groups.append([(string, coeff)])
    out: List[MeasurementGroup] = []
    for group in groups:
        basis = _shared_basis([s for s, _ in group], operator.num_qubits)
        out.append(MeasurementGroup(tuple(group), basis))
    return out

"""QAOA for MaxCut, with parallel angle-grid evaluation.

The paper's conclusion calls parallel circuit execution "a key enabler for
quantum algorithms requiring parallel sub-problem executions".  QAOA's
classical outer loop is exactly such an algorithm: every candidate
``(gamma, beta)`` angle pair needs an independent circuit evaluation, and
all of them fit on a large chip simultaneously.

Cost convention: for MaxCut on graph G,
``C(z) = sum_{(i,j) in E} w_ij * (1 - z_i z_j) / 2`` with ``z in {+1,-1}``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..circuits.circuit import QuantumCircuit

__all__ = [
    "maxcut_cost",
    "expected_cut_value",
    "max_cut_value",
    "qaoa_circuit",
    "QAOAGridResult",
    "run_qaoa_grid_ideal",
    "run_qaoa_grid_parallel",
]


def _edge_weight(graph: nx.Graph, a: int, b: int) -> float:
    return float(graph.edges[a, b].get("weight", 1.0))


def maxcut_cost(bitstring: str, graph: nx.Graph) -> float:
    """Cut value of an assignment (character i = side of node i)."""
    total = 0.0
    for a, b in graph.edges:
        if bitstring[a] != bitstring[b]:
            total += _edge_weight(graph, a, b)
    return total


def expected_cut_value(probabilities: Mapping[str, float],
                       graph: nx.Graph) -> float:
    """Expected cut over a measured output distribution."""
    return sum(
        p * maxcut_cost(key, graph) for key, p in probabilities.items()
    )


def max_cut_value(graph: nx.Graph) -> float:
    """Exact MaxCut by brute force (graphs small enough to simulate)."""
    n = graph.number_of_nodes()
    best = 0.0
    for assignment in range(2 ** n):
        bits = format(assignment, f"0{n}b")
        best = max(best, maxcut_cost(bits, graph))
    return best


def qaoa_circuit(graph: nx.Graph, gammas: Sequence[float],
                 betas: Sequence[float]) -> QuantumCircuit:
    """Depth-p QAOA state preparation (p = len(gammas) = len(betas)).

    Cost layer: per edge, ``exp(+i gamma w/2 Z_i Z_j)`` (the constant
    offset is a global phase); mixer layer: ``RX(2 beta)`` on every
    qubit.
    """
    if len(gammas) != len(betas):
        raise ValueError("need one beta per gamma")
    nodes = sorted(graph.nodes)
    if nodes != list(range(len(nodes))):
        raise ValueError("graph nodes must be 0..n-1")
    n = len(nodes)
    qc = QuantumCircuit(n, name=f"qaoa_p{len(gammas)}")
    for q in range(n):
        qc.h(q)
    for gamma, beta in zip(gammas, betas):
        for a, b in sorted(graph.edges):
            qc.rzz(-gamma * _edge_weight(graph, a, b), a, b)
        for q in range(n):
            qc.rx(2.0 * beta, q)
    return qc


@dataclass
class QAOAGridResult:
    """Angle-grid evaluation outcome."""

    gammas: Tuple[float, ...]
    betas: Tuple[float, ...]
    expected_cuts: Tuple[float, ...]
    num_simultaneous: int
    throughput: float

    @property
    def best(self) -> Tuple[float, float, float]:
        """(gamma, beta, expected cut) of the best grid point."""
        idx = int(np.argmax(self.expected_cuts))
        return self.gammas[idx], self.betas[idx], self.expected_cuts[idx]

    def approximation_ratio(self, graph: nx.Graph) -> float:
        """Best expected cut / exact MaxCut."""
        return self.best[2] / max_cut_value(graph)


def _grid(resolution: int) -> List[Tuple[float, float]]:
    gammas = np.linspace(0.1, math.pi - 0.1, resolution)
    betas = np.linspace(0.1, math.pi / 2 - 0.05, resolution)
    return [(float(g), float(b)) for g in gammas for b in betas]


def run_qaoa_grid_ideal(graph: nx.Graph,
                        resolution: int = 4) -> QAOAGridResult:
    """Noiseless p=1 angle grid evaluation."""
    from ..sim.statevector import ideal_probabilities

    points = _grid(resolution)
    cuts = []
    for gamma, beta in points:
        qc = qaoa_circuit(graph, [gamma], [beta]).measure_all()
        cuts.append(expected_cut_value(ideal_probabilities(qc), graph))
    return QAOAGridResult(
        gammas=tuple(g for g, _ in points),
        betas=tuple(b for _, b in points),
        expected_cuts=tuple(cuts),
        num_simultaneous=1,
        throughput=0.0,
    )


def run_qaoa_grid_parallel(
    graph: nx.Graph,
    device,
    resolution: int = 4,
    shots: int = 4096,
    seed: Optional[int] = None,
    sigma: Optional[float] = None,
) -> QAOAGridResult:
    """Evaluate the whole p=1 angle grid in one parallel job via QuCP."""
    from ..core.executor import execute_allocation
    from ..core.qucp import DEFAULT_SIGMA, qucp_allocate

    sigma = DEFAULT_SIGMA if sigma is None else sigma
    points = _grid(resolution)
    circuits = [
        qaoa_circuit(graph, [g], [b]).measure_all() for g, b in points
    ]
    allocation = qucp_allocate(circuits, device, sigma=sigma)
    outcomes = execute_allocation(allocation, shots=shots, seed=seed)
    cuts = [
        expected_cut_value(out.result.probabilities, graph)
        for out in outcomes
    ]
    return QAOAGridResult(
        gammas=tuple(g for g, _ in points),
        betas=tuple(b for _, b in points),
        expected_cuts=tuple(cuts),
        num_simultaneous=len(circuits),
        throughput=allocation.throughput(),
    )

"""Pauli-string algebra for Hamiltonians and simultaneous measurement.

A :class:`PauliString` is a label like ``"IZXY"`` (qubit 0 leftmost); a
:class:`PauliOperator` is a real/complex linear combination of strings.
Qubit-wise commutation — the criterion for measuring strings in the same
shot — lives here too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

import numpy as np

__all__ = ["PauliString", "PauliOperator"]

_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

# Single-qubit Pauli products: (left, right) -> (phase, result).
_PRODUCTS: Dict[Tuple[str, str], Tuple[complex, str]] = {}
for _a in "IXYZ":
    _PRODUCTS[("I", _a)] = (1.0, _a)
    _PRODUCTS[(_a, "I")] = (1.0, _a)
    _PRODUCTS[(_a, _a)] = (1.0, "I")
_PRODUCTS[("X", "Y")] = (1j, "Z")
_PRODUCTS[("Y", "X")] = (-1j, "Z")
_PRODUCTS[("Y", "Z")] = (1j, "X")
_PRODUCTS[("Z", "Y")] = (-1j, "X")
_PRODUCTS[("Z", "X")] = (1j, "Y")
_PRODUCTS[("X", "Z")] = (-1j, "Y")


@dataclass(frozen=True)
class PauliString:
    """A tensor product of single-qubit Paulis, e.g. ``ZX``."""

    label: str

    def __post_init__(self) -> None:
        if not self.label or any(c not in "IXYZ" for c in self.label):
            raise ValueError(f"bad Pauli label {self.label!r}")

    @property
    def num_qubits(self) -> int:
        """Number of qubits the string spans."""
        return len(self.label)

    @property
    def is_identity(self) -> bool:
        """True for the all-I string."""
        return set(self.label) == {"I"}

    def matrix(self) -> np.ndarray:
        """Dense matrix (big-endian: qubit 0 = first tensor factor)."""
        out = np.eye(1, dtype=complex)
        for c in self.label:
            out = np.kron(out, _MATRICES[c])
        return out

    def commutes_with(self, other: "PauliString") -> bool:
        """Full (global) commutation test."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("length mismatch")
        anti = sum(
            1 for a, b in zip(self.label, other.label)
            if a != "I" and b != "I" and a != b
        )
        return anti % 2 == 0

    def qubit_wise_commutes_with(self, other: "PauliString") -> bool:
        """Qubit-wise commutation: on every qubit the factors are equal
        or one is I.  This is the grouping criterion for simultaneous
        measurement with only single-qubit basis rotations."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("length mismatch")
        return all(
            a == "I" or b == "I" or a == b
            for a, b in zip(self.label, other.label)
        )

    def __mul__(self, other: "PauliString") -> Tuple[complex, "PauliString"]:
        """Product with phase: returns ``(phase, string)``."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("length mismatch")
        phase: complex = 1.0
        chars: List[str] = []
        for a, b in zip(self.label, other.label):
            ph, c = _PRODUCTS[(a, b)]
            phase *= ph
            chars.append(c)
        return phase, PauliString("".join(chars))

    def support(self) -> Tuple[int, ...]:
        """Qubits where the string acts non-trivially."""
        return tuple(i for i, c in enumerate(self.label) if c != "I")

    def __str__(self) -> str:
        return self.label


class PauliOperator:
    """A linear combination of Pauli strings (a qubit Hamiltonian)."""

    def __init__(self, terms: Mapping[str, float]) -> None:
        if not terms:
            raise ValueError("operator needs at least one term")
        lengths = {len(label) for label in terms}
        if len(lengths) != 1:
            raise ValueError("all terms must span the same qubits")
        self._terms: Dict[PauliString, float] = {
            PauliString(label): float(coeff)
            for label, coeff in terms.items()
        }
        self.num_qubits = lengths.pop()

    @property
    def terms(self) -> Dict[PauliString, float]:
        """String -> coefficient mapping (copy)."""
        return dict(self._terms)

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[Tuple[PauliString, float]]:
        return iter(sorted(self._terms.items(), key=lambda kv: kv[0].label))

    def coefficient(self, label: str) -> float:
        """Coefficient of a term (0 when absent)."""
        return self._terms.get(PauliString(label), 0.0)

    def matrix(self) -> np.ndarray:
        """Dense Hamiltonian matrix."""
        dim = 2 ** self.num_qubits
        out = np.zeros((dim, dim), dtype=complex)
        for string, coeff in self._terms.items():
            out += coeff * string.matrix()
        return out

    def ground_energy(self) -> float:
        """Exact smallest eigenvalue (SciPy dense eigensolver)."""
        import scipy.linalg

        eigenvalues = scipy.linalg.eigvalsh(self.matrix())
        return float(eigenvalues[0])

    def expectation(self, state: np.ndarray) -> float:
        """<psi|H|psi> for a statevector."""
        return float(np.real(state.conj() @ (self.matrix() @ state)))

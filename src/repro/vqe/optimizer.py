"""VQE optimization drivers on top of the scan machinery.

The paper evaluates fixed parameter grids; a downstream user wants the
actual hybrid loop.  Two drivers are provided:

- :func:`minimize_energy_ideal` — noiseless classical reference
  (scipy scalar minimization over the tied parameter);
- :func:`minimize_energy_parallel` — iterative grid refinement where each
  refinement round's measurement circuits execute **simultaneously** via
  QuCP, so a whole round costs one hardware job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import minimize_scalar

from ..core.qucp import DEFAULT_SIGMA
from ..hardware.devices import Device
from .hamiltonian import h2_hamiltonian
from .pauli import PauliOperator
from .vqe import run_vqe_scan_parallel, vqe_energy_ideal

__all__ = ["OptimizationResult", "minimize_energy_ideal",
           "minimize_energy_parallel"]


@dataclass
class OptimizationResult:
    """Outcome of a VQE minimization."""

    theta: float
    energy: float
    num_jobs: int
    num_circuit_executions: int
    history: Tuple[Tuple[float, float], ...]


def minimize_energy_ideal(
    hamiltonian: Optional[PauliOperator] = None,
    bounds: Tuple[float, float] = (-np.pi, np.pi),
) -> OptimizationResult:
    """Noiseless minimum of the tied-parameter ansatz energy."""
    hamiltonian = hamiltonian or h2_hamiltonian()
    history: List[Tuple[float, float]] = []

    def objective(theta: float) -> float:
        energy = vqe_energy_ideal(theta, hamiltonian)
        history.append((float(theta), energy))
        return energy

    # The landscape is multimodal over the full period: seed the bounded
    # search from the best of a coarse sweep.
    coarse = np.linspace(bounds[0], bounds[1], 25)
    best = min(coarse, key=objective)
    span = (bounds[1] - bounds[0]) / 24
    result = minimize_scalar(
        objective, bounds=(best - span, best + span), method="bounded")
    return OptimizationResult(
        theta=float(result.x),
        energy=float(result.fun),
        num_jobs=0,
        num_circuit_executions=0,
        history=tuple(history),
    )


def minimize_energy_parallel(
    device: Device,
    hamiltonian: Optional[PauliOperator] = None,
    rounds: int = 3,
    points_per_round: int = 8,
    shots: int = 8192,
    seed: Optional[int] = None,
    sigma: float = DEFAULT_SIGMA,
    bounds: Tuple[float, float] = (-np.pi, np.pi),
) -> OptimizationResult:
    """Iterative grid refinement with one parallel job per round.

    Round 1 scans *points_per_round* values across *bounds*; each later
    round zooms into a shrinking window around the best point so far.
    Every round's 2x *points_per_round* measurement circuits execute
    simultaneously under QuCP.
    """
    if rounds < 1 or points_per_round < 2:
        raise ValueError("need >= 1 round and >= 2 points per round")
    hamiltonian = hamiltonian or h2_hamiltonian()
    lo, hi = bounds
    history: List[Tuple[float, float]] = []
    best_theta = 0.5 * (lo + hi)
    best_energy = np.inf
    executions = 0
    for round_idx in range(rounds):
        thetas = np.linspace(lo, hi, points_per_round)
        run_seed = None if seed is None else seed + 101 * round_idx
        scan = run_vqe_scan_parallel(
            thetas, device, shots=shots, seed=run_seed, sigma=sigma,
            hamiltonian=hamiltonian)
        executions += scan.num_simultaneous
        for theta, energy in zip(scan.thetas, scan.energies):
            history.append((float(theta), float(energy)))
            if energy < best_energy:
                best_energy = float(energy)
                best_theta = float(theta)
        # Zoom: new window is two grid steps around the incumbent.
        step = (hi - lo) / (points_per_round - 1)
        lo, hi = best_theta - step, best_theta + step
    return OptimizationResult(
        theta=best_theta,
        energy=best_energy,
        num_jobs=rounds,
        num_circuit_executions=executions,
        history=tuple(history),
    )

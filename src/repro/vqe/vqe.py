"""VQE drivers: ideal scan, independent PG execution, and QuCP+PG.

The paper's Sec. IV-C experiment: scan the tied ansatz parameter over
8/10/12 values, producing 16/20/24 measurement circuits (2 commuting
groups each); run them either one at a time (PG — throughput 3.1% on
Manhattan) or all simultaneously with QuCP (QuCP+PG — throughput up to
73.8%); take the minimum scanned energy as the ground-state estimate and
compare against the ideal simulator (``dE_base``) and SciPy's exact
eigensolver (``dE_theory``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..core.qucp import DEFAULT_SIGMA, qucp_allocate
from ..core.executor import execute_allocation
from ..hardware.devices import Device
from ..sim.statevector import ideal_probabilities, simulate_statevector
from .ansatz import ryrz_ansatz
from .grouping import MeasurementGroup, group_commuting_terms
from .hamiltonian import h2_hamiltonian
from .measurement import energy_from_distributions, measurement_circuit
from .pauli import PauliOperator

__all__ = [
    "VQEScanResult",
    "vqe_energy_ideal",
    "run_vqe_scan_ideal",
    "run_vqe_scan_independent",
    "run_vqe_scan_parallel",
    "relative_error_percent",
]


@dataclass
class VQEScanResult:
    """A parameter scan's outcome."""

    thetas: Tuple[float, ...]
    energies: Tuple[float, ...]
    num_simultaneous: int
    throughput: float
    method: str

    @property
    def minimum_energy(self) -> float:
        """Ground-state estimate: the scan minimum."""
        return min(self.energies)

    @property
    def best_theta(self) -> float:
        """Parameter achieving the scan minimum."""
        return self.thetas[int(np.argmin(self.energies))]


def relative_error_percent(estimate: float, reference: float) -> float:
    """|estimate - reference| / |reference| * 100 (the paper's dE)."""
    return abs(estimate - reference) / abs(reference) * 100.0


def vqe_energy_ideal(theta: float,
                     hamiltonian: Optional[PauliOperator] = None) -> float:
    """Exact <H> of the tied-parameter ansatz (statevector)."""
    hamiltonian = hamiltonian or h2_hamiltonian()
    state = simulate_statevector(ryrz_ansatz([theta]))
    return hamiltonian.expectation(state)


def _scan_circuits(
    thetas: Sequence[float],
    groups: Sequence[MeasurementGroup],
) -> List[QuantumCircuit]:
    """All measurement circuits, theta-major: [t0g0, t0g1, t1g0, ...]."""
    circuits: List[QuantumCircuit] = []
    for theta in thetas:
        ansatz = ryrz_ansatz([theta])
        for group in groups:
            circuits.append(measurement_circuit(ansatz, group))
    return circuits


def run_vqe_scan_ideal(
    thetas: Sequence[float],
    hamiltonian: Optional[PauliOperator] = None,
) -> VQEScanResult:
    """Noiseless scan (the paper's simulator baseline)."""
    hamiltonian = hamiltonian or h2_hamiltonian()
    groups = group_commuting_terms(hamiltonian)
    energies = []
    for theta in thetas:
        ansatz = ryrz_ansatz([theta])
        dists = [
            ideal_probabilities(measurement_circuit(ansatz, group))
            for group in groups
        ]
        energies.append(energy_from_distributions(groups, dists))
    return VQEScanResult(tuple(thetas), tuple(energies),
                         num_simultaneous=1, throughput=0.0,
                         method="ideal")


def run_vqe_scan_independent(
    thetas: Sequence[float],
    device: Device,
    shots: int = 8192,
    seed: Optional[int] = None,
    hamiltonian: Optional[PauliOperator] = None,
) -> VQEScanResult:
    """PG: every measurement circuit runs alone on its best partition."""
    hamiltonian = hamiltonian or h2_hamiltonian()
    groups = group_commuting_terms(hamiltonian)
    circuits = _scan_circuits(thetas, groups)
    dists = []
    for k, circuit in enumerate(circuits):
        allocation = qucp_allocate([circuit], device)
        run_seed = None if seed is None else seed + 31 * k
        outcome = execute_allocation(allocation, shots=shots,
                                     seed=run_seed)[0]
        dists.append(outcome.result.probabilities)
    energies = _energies_from_flat(thetas, groups, dists)
    throughput = hamiltonian.num_qubits / device.num_qubits
    return VQEScanResult(tuple(thetas), tuple(energies),
                         num_simultaneous=1, throughput=throughput,
                         method="PG")


def run_vqe_scan_parallel(
    thetas: Sequence[float],
    device: Device,
    shots: int = 8192,
    seed: Optional[int] = None,
    sigma: float = DEFAULT_SIGMA,
    hamiltonian: Optional[PauliOperator] = None,
) -> VQEScanResult:
    """QuCP+PG: all scan circuits execute simultaneously on the device."""
    hamiltonian = hamiltonian or h2_hamiltonian()
    groups = group_commuting_terms(hamiltonian)
    circuits = _scan_circuits(thetas, groups)
    allocation = qucp_allocate(circuits, device, sigma=sigma)
    outcomes = execute_allocation(allocation, shots=shots, seed=seed)
    dists = [o.result.probabilities for o in outcomes]
    energies = _energies_from_flat(thetas, groups, dists)
    return VQEScanResult(
        tuple(thetas), tuple(energies),
        num_simultaneous=len(circuits),
        throughput=allocation.throughput(),
        method="QuCP+PG",
    )


def _energies_from_flat(
    thetas: Sequence[float],
    groups: Sequence[MeasurementGroup],
    dists: Sequence[dict],
) -> List[float]:
    """Recombine theta-major flat distributions into per-theta energies."""
    n_groups = len(groups)
    energies = []
    for t_idx in range(len(thetas)):
        chunk = dists[t_idx * n_groups:(t_idx + 1) * n_groups]
        energies.append(energy_from_distributions(groups, chunk))
    return energies

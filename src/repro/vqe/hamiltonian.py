"""The H2 Hamiltonian used in the paper's Sec. IV-C.

Molecular hydrogen at the equilibrium bond length (0.735 angstroms),
singlet state, no charge, STO-3G basis, fermionic operators mapped to
qubits with **parity mapping** and two-qubit reduction.  The result is the
standard 2-qubit, 5-term Hamiltonian over {II, IZ, ZI, ZZ, XX} with the
well-known coefficients (Hartree) used throughout the VQE literature.
"""

from __future__ import annotations

from .pauli import PauliOperator

__all__ = ["h2_hamiltonian", "H2_COEFFICIENTS", "H2_BOND_LENGTH_ANGSTROM"]

#: Equilibrium bond length the paper evaluates at.
H2_BOND_LENGTH_ANGSTROM = 0.735

#: Parity-mapped, tapered 2-qubit H2 coefficients at 0.735 A (Hartree).
H2_COEFFICIENTS = {
    "II": -1.052373245772859,
    "IZ": 0.39793742484318045,
    "ZI": -0.39793742484318045,
    "ZZ": -0.01128010425623538,
    "XX": 0.18093119978423156,
}


def h2_hamiltonian() -> PauliOperator:
    """The 5-term parity-mapped H2 Hamiltonian at 0.735 angstroms."""
    return PauliOperator(H2_COEFFICIENTS)

"""The paper's heuristic ansatz (Kandala et al. hardware-efficient form).

Two repetitions; each repetition applies RY and RZ on every qubit followed
by a CX entangler, with a final rotation layer: 3 rotation layers x 2
qubits x 2 gates = 12 single-qubit parameters and two CNOTs.  As in the
paper, all 12 parameters can be tied to a single value ("we set the same
value for these parameters each time and regard them as one parameter").
"""

from __future__ import annotations

from typing import Sequence

from ..circuits.circuit import QuantumCircuit

__all__ = ["ryrz_ansatz", "NUM_ANSATZ_PARAMETERS"]

#: 3 rotation layers x 2 qubits x (RY + RZ).
NUM_ANSATZ_PARAMETERS = 12


def ryrz_ansatz(parameters: Sequence[float],
                num_qubits: int = 2, reps: int = 2) -> QuantumCircuit:
    """Build the RyRz hardware-efficient ansatz.

    *parameters* may be a single tied value (length 1) or one value per
    rotation (length ``(reps + 1) * num_qubits * 2``).
    """
    expected = (reps + 1) * num_qubits * 2
    if len(parameters) == 1:
        parameters = [parameters[0]] * expected
    if len(parameters) != expected:
        raise ValueError(
            f"ansatz needs 1 or {expected} parameters, got "
            f"{len(parameters)}")
    qc = QuantumCircuit(num_qubits, name="ryrz_ansatz")
    it = iter(parameters)
    for rep in range(reps + 1):
        for q in range(num_qubits):
            qc.ry(next(it), q)
            qc.rz(next(it), q)
        if rep < reps:
            # Entangler direction chosen so the *tied*-parameter form can
            # reach within ~1% of the exact H2 ground energy (with
            # cx(q, q+1) the tied ansatz bottoms out ~19% high).
            for q in range(num_qubits - 1):
                qc.cx(q + 1, q)
    return qc

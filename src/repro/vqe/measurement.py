"""Measurement circuits and expectation estimation for grouped terms.

For a qubit-wise-commuting group, the measurement circuit is the ansatz
followed by single-qubit basis rotations (H for X, S-dagger then H for Y)
and Z-basis measurement; every term's expectation is the signed parity of
its support bits under the measured distribution.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from .grouping import MeasurementGroup
from .pauli import PauliString

__all__ = [
    "measurement_circuit",
    "term_expectation",
    "group_energy",
    "energy_from_distributions",
]


def measurement_circuit(ansatz: QuantumCircuit,
                        group: MeasurementGroup) -> QuantumCircuit:
    """Ansatz + basis rotations + measure-all for one group."""
    if ansatz.num_qubits != group.num_qubits:
        raise ValueError("ansatz/group qubit mismatch")
    qc = ansatz.copy(name=f"{ansatz.name}_meas")
    for q, basis in enumerate(group.basis):
        if basis == "X":
            qc.h(q)
        elif basis == "Y":
            qc.sdg(q)
            qc.h(q)
    qc.measure_all()
    return qc


def term_expectation(probabilities: Mapping[str, float],
                     term: PauliString) -> float:
    """<P> from a measured distribution (bit i of the key = qubit i)."""
    if term.is_identity:
        return 1.0
    support = term.support()
    total = 0.0
    for key, p in probabilities.items():
        parity = sum(int(key[q]) for q in support) % 2
        total += p * (1.0 if parity == 0 else -1.0)
    return total


def group_energy(probabilities: Mapping[str, float],
                 group: MeasurementGroup) -> float:
    """Energy contribution of one group under one distribution."""
    return sum(
        coeff * term_expectation(probabilities, term)
        for term, coeff in group.terms
    )


def energy_from_distributions(
    groups: Sequence[MeasurementGroup],
    distributions: Sequence[Mapping[str, float]],
) -> float:
    """Total energy: sum of per-group contributions."""
    if len(groups) != len(distributions):
        raise ValueError("one distribution per group required")
    return sum(
        group_energy(dist, group)
        for group, dist in zip(groups, distributions)
    )

"""VQE with Pauli grouping (paper Sec. IV-C): H2 Hamiltonian, RyRz
ansatz, commuting-group measurement, and the PG / QuCP+PG drivers."""

from .ansatz import NUM_ANSATZ_PARAMETERS, ryrz_ansatz
from .grouping import MeasurementGroup, group_commuting_terms
from .hamiltonian import (
    H2_BOND_LENGTH_ANGSTROM,
    H2_COEFFICIENTS,
    h2_hamiltonian,
)
from .measurement import (
    energy_from_distributions,
    group_energy,
    measurement_circuit,
    term_expectation,
)
from .optimizer import (
    OptimizationResult,
    minimize_energy_ideal,
    minimize_energy_parallel,
)
from .pauli import PauliOperator, PauliString
from .qaoa import (
    QAOAGridResult,
    expected_cut_value,
    max_cut_value,
    maxcut_cost,
    qaoa_circuit,
    run_qaoa_grid_ideal,
    run_qaoa_grid_parallel,
)
from .vqe import (
    VQEScanResult,
    relative_error_percent,
    run_vqe_scan_ideal,
    run_vqe_scan_independent,
    run_vqe_scan_parallel,
    vqe_energy_ideal,
)

__all__ = [
    "H2_BOND_LENGTH_ANGSTROM",
    "H2_COEFFICIENTS",
    "MeasurementGroup",
    "NUM_ANSATZ_PARAMETERS",
    "OptimizationResult",
    "PauliOperator",
    "PauliString",
    "QAOAGridResult",
    "VQEScanResult",
    "energy_from_distributions",
    "expected_cut_value",
    "group_commuting_terms",
    "group_energy",
    "h2_hamiltonian",
    "max_cut_value",
    "maxcut_cost",
    "measurement_circuit",
    "minimize_energy_ideal",
    "minimize_energy_parallel",
    "qaoa_circuit",
    "relative_error_percent",
    "run_qaoa_grid_ideal",
    "run_qaoa_grid_parallel",
    "run_vqe_scan_ideal",
    "run_vqe_scan_independent",
    "run_vqe_scan_parallel",
    "ryrz_ansatz",
    "term_expectation",
    "vqe_energy_ideal",
]

"""Synthetic multi-user traffic generators over the Table II suite.

The cloud scheduler needs realistic arrival streams, not hand-written
lists.  This module synthesizes :class:`~repro.core.SubmittedProgram`
streams from three orthogonal knobs:

- **arrival pattern** — ``poisson`` (memoryless, the M/G/1 textbook
  case) or ``bursty`` (tight clumps separated by quiet gaps, the shape
  real notebook-driven traffic has);
- **circuit mix** — ``uniform`` over the suite, or ``heavy_tail``
  (small circuits dominate, large ones form the tail — weights follow a
  Zipf law over the suite ordered by qubit count);
- **users/priorities** — submissions rotate through a user pool, with
  optional per-user priorities.

Everything is seeded and deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.scheduler import SubmittedProgram
from .dynamic import dynamic_workloads
from .suite import Workload, all_workloads, workload

__all__ = [
    "poisson_arrival_times",
    "bursty_arrival_times",
    "sample_workload_mix",
    "synthesize_traffic",
    "traffic_rate_sweep",
    "ARRIVAL_PATTERNS",
    "CIRCUIT_MIXES",
]

ARRIVAL_PATTERNS = ("poisson", "bursty")
CIRCUIT_MIXES = ("uniform", "heavy_tail")

SeedLike = Union[int, np.random.Generator, None]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def poisson_arrival_times(
    num_programs: int,
    mean_interarrival_ns: float,
    seed: SeedLike = 0,
) -> List[float]:
    """Arrival instants of a Poisson process (exponential gaps)."""
    if num_programs <= 0:
        raise ValueError("num_programs must be positive")
    if mean_interarrival_ns <= 0:
        raise ValueError("mean interarrival must be positive")
    rng = _rng(seed)
    gaps = rng.exponential(mean_interarrival_ns, size=num_programs)
    return list(np.cumsum(gaps) - gaps[0])  # first arrival at t = 0


def bursty_arrival_times(
    num_programs: int,
    burst_size: int = 4,
    burst_gap_ns: float = 5e6,
    intra_gap_ns: float = 1e4,
    seed: SeedLike = 0,
) -> List[float]:
    """Clumped arrivals: bursts of *burst_size* nearly-simultaneous
    submissions separated by long quiet gaps (both exponentially
    jittered)."""
    if num_programs <= 0 or burst_size <= 0:
        raise ValueError("counts must be positive")
    if burst_gap_ns <= 0 or intra_gap_ns < 0:
        raise ValueError("gaps must be positive")
    rng = _rng(seed)
    times: List[float] = []
    t = 0.0
    while len(times) < num_programs:
        for _ in range(min(burst_size, num_programs - len(times))):
            times.append(t)
            if intra_gap_ns > 0:
                t += float(rng.exponential(intra_gap_ns))
        t += float(rng.exponential(burst_gap_ns))
    return times


def sample_workload_mix(
    num_programs: int,
    mix: str = "uniform",
    seed: SeedLike = 0,
    zipf_exponent: float = 1.5,
) -> List[Workload]:
    """Draw *num_programs* suite workloads under a size mix.

    ``uniform`` draws every suite circuit equally; ``heavy_tail``
    weights circuits by a Zipf law over their qubit-count rank
    (smallest first), so 3-qubit programs dominate and 5-qubit ones are
    the rare heavy jobs.
    """
    if mix not in CIRCUIT_MIXES:
        raise ValueError(
            f"unknown circuit mix {mix!r}; choose from {CIRCUIT_MIXES}")
    rng = _rng(seed)
    suite = sorted(all_workloads(), key=lambda w: (w.num_qubits, w.name))
    if mix == "uniform":
        weights = np.ones(len(suite))
    else:
        weights = 1.0 / np.arange(1, len(suite) + 1) ** zipf_exponent
    weights = weights / weights.sum()
    picks = rng.choice(len(suite), size=num_programs, p=weights)
    return [suite[i] for i in picks]


def _mix_in_dynamic(picks: List[Workload], dynamic_fraction: float,
                    rng: np.random.Generator) -> List[Workload]:
    """Replace a *dynamic_fraction* of the picks with dynamic workloads.

    Each slot is independently rerolled with the given probability; the
    replacement is drawn uniformly from the dynamic suite.  Fraction 0
    (the default everywhere) is a strict no-op — it doesn't even draw
    from the RNG, so existing seeded streams are unchanged.
    """
    if dynamic_fraction == 0.0:
        return picks
    if not 0.0 <= dynamic_fraction <= 1.0:
        raise ValueError("dynamic_fraction must be within [0, 1]")
    dyn = dynamic_workloads()
    out = list(picks)
    for i in range(len(out)):
        if rng.random() < dynamic_fraction:
            out[i] = dyn[int(rng.integers(len(dyn)))]
    return out


def _build_circuit(wl: Workload) -> "QuantumCircuit":  # noqa: F821
    """A workload's submission circuit.

    Dynamic-suite builders are self-contained (their measurements are
    part of the program — mid-circuit measures feed the branches), so
    they skip the ``measure_all`` the static suite needs.
    """
    built = wl.builder()
    if built.has_control_flow() or built.has_midcircuit_measurement():
        return built
    return wl.circuit()


def synthesize_traffic(
    num_programs: int,
    pattern: str = "poisson",
    mean_interarrival_ns: float = 5e5,
    mix: str = "uniform",
    seed: SeedLike = 0,
    num_users: int = 4,
    user_priorities: Optional[Dict[str, int]] = None,
    burst_size: int = 4,
    dynamic_fraction: float = 0.0,
) -> List[SubmittedProgram]:
    """Synthesize a full submission stream for the cloud scheduler.

    Users are named ``user0..user{num_users-1}`` round-robin;
    *user_priorities* optionally maps user names to scheduler
    priorities (default 0).  For the ``bursty`` pattern,
    *mean_interarrival_ns* sets the quiet gap between bursts.
    *dynamic_fraction* rerolls that share of the submissions onto the
    dynamic (control-flow) suite, so mixed static/dynamic streams can
    be dialed in for scheduler studies.
    """
    if pattern not in ARRIVAL_PATTERNS:
        raise ValueError(
            f"unknown arrival pattern {pattern!r}; "
            f"choose from {ARRIVAL_PATTERNS}")
    if num_users <= 0:
        raise ValueError("num_users must be positive")
    rng = _rng(seed)
    if pattern == "poisson":
        arrivals = poisson_arrival_times(
            num_programs, mean_interarrival_ns, seed=rng)
    else:
        arrivals = bursty_arrival_times(
            num_programs, burst_size=burst_size,
            burst_gap_ns=mean_interarrival_ns, seed=rng)
    picks = sample_workload_mix(num_programs, mix=mix, seed=rng)
    picks = _mix_in_dynamic(picks, dynamic_fraction, rng)
    priorities = user_priorities or {}
    out: List[SubmittedProgram] = []
    for i, (t, wl) in enumerate(zip(arrivals, picks)):
        user = f"user{i % num_users}"
        out.append(SubmittedProgram(
            circuit=_build_circuit(wl),
            arrival_ns=float(t),
            user=user,
            priority=priorities.get(user, 0),
        ))
    return out


def traffic_rate_sweep(
    num_programs: int,
    mean_interarrival_ns_values: Sequence[float],
    mix: str = "uniform",
    seed: SeedLike = 0,
    num_users: int = 4,
    user_priorities: Optional[Dict[str, int]] = None,
    dynamic_fraction: float = 0.0,
) -> Dict[float, List[SubmittedProgram]]:
    """Poisson streams at several arrival rates with a *shared* draw.

    One workload mix and one set of unit-exponential gaps are sampled
    once; each requested rate rescales the gaps.  Every returned stream
    therefore submits the **same programs in the same order** — only
    the arrival spacing differs — so rate studies (turnaround-vs-load
    curves, the hedged-racing p99 sweep) isolate queueing pressure from
    mix variance instead of comparing different random workloads.

    Returns ``{mean_interarrival_ns: [SubmittedProgram, ...]}`` in the
    order the rates were given (dicts preserve insertion order).
    """
    if num_users <= 0:
        raise ValueError("num_users must be positive")
    if not mean_interarrival_ns_values:
        raise ValueError("at least one arrival rate is required")
    for rate in mean_interarrival_ns_values:
        if rate <= 0:
            raise ValueError("mean interarrival must be positive")
    rng = _rng(seed)
    unit_gaps = rng.exponential(1.0, size=num_programs)
    unit_gaps[0] = 0.0  # first arrival at t = 0, at every rate
    picks = sample_workload_mix(num_programs, mix=mix, seed=rng)
    picks = _mix_in_dynamic(picks, dynamic_fraction, rng)
    circuits = [_build_circuit(wl) for wl in picks]
    priorities = user_priorities or {}
    sweep: Dict[float, List[SubmittedProgram]] = {}
    for rate in mean_interarrival_ns_values:
        arrivals = np.cumsum(unit_gaps * rate)
        sweep[float(rate)] = [
            SubmittedProgram(
                circuit=circuit,
                arrival_ns=float(t),
                user=f"user{i % num_users}",
                priority=priorities.get(f"user{i % num_users}", 0),
            )
            for i, (t, circuit) in enumerate(zip(arrivals, circuits))
        ]
    return sweep

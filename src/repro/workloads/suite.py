"""The Table II benchmark suite.

Eight small circuits from RevLib / QASMBench, reconstructed to match the
paper's reported size exactly (qubits / total gates / CX count) and the
reported output type: ``Result = 1`` means the ideal output is a single
basis state (scored with PST), ``dist`` means a distribution (scored with
JSD).

``adder`` is the verbatim QASMBench ``adder_n4`` circuit.  The others are
structural reconstructions: the original sources are not bundled here, so
each circuit is rebuilt with the same gate budget, entanglement structure,
and output type, which is what the partitioning/mapping/fidelity pipeline
actually consumes.  (Documented in DESIGN.md.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..circuits.circuit import QuantumCircuit

__all__ = [
    "Workload",
    "workload",
    "all_workloads",
    "workload_names",
    "TABLE_II",
]


@dataclass(frozen=True)
class Workload:
    """One benchmark: its circuit and how to score it."""

    name: str
    num_qubits: int
    num_gates: int
    num_cx: int
    deterministic: bool
    builder: Callable[[], QuantumCircuit]

    @property
    def metric(self) -> str:
        """"pst" for deterministic-output circuits, "jsd" otherwise."""
        return "pst" if self.deterministic else "jsd"

    def circuit(self, measured: bool = True) -> QuantumCircuit:
        """Build the benchmark circuit (with measurements by default)."""
        qc = self.builder()
        if measured:
            qc.measure_all()
        return qc


def _ccx_block(qc: QuantumCircuit, a: int, b: int, t: int) -> None:
    """Standard 15-gate (6 CX) Toffoli decomposition, appended in place."""
    qc.h(t)
    qc.cx(b, t)
    qc.tdg(t)
    qc.cx(a, t)
    qc.t(t)
    qc.cx(b, t)
    qc.tdg(t)
    qc.cx(a, t)
    qc.t(b)
    qc.t(t)
    qc.h(t)
    qc.cx(a, b)
    qc.t(a)
    qc.tdg(b)
    qc.cx(a, b)


def _adder() -> QuantumCircuit:
    """QASMBench ``adder_n4``: 4 qubits, 23 gates, 10 CX, deterministic."""
    qc = QuantumCircuit(4, name="adder")
    qc.x(0)
    qc.x(1)
    qc.h(3)
    qc.cx(2, 3)
    qc.t(0)
    qc.t(1)
    qc.t(2)
    qc.tdg(3)
    qc.cx(0, 1)
    qc.cx(2, 3)
    qc.cx(3, 0)
    qc.cx(1, 2)
    qc.cx(0, 1)
    qc.cx(2, 3)
    qc.tdg(0)
    qc.tdg(1)
    qc.tdg(2)
    qc.t(3)
    qc.cx(0, 1)
    qc.cx(2, 3)
    qc.s(3)
    qc.cx(3, 0)
    qc.h(3)
    return qc


def _linearsolver() -> QuantumCircuit:
    """Linear-solver style HHL toy: 3 qubits, 19 gates, 4 CX, dist."""
    qc = QuantumCircuit(3, name="linearsolver")
    qc.ry(math.pi / 4, 0)
    qc.h(1)
    qc.h(2)
    qc.cx(1, 0)
    qc.rz(math.pi / 8, 0)
    qc.cx(2, 0)
    qc.rz(-math.pi / 8, 0)
    qc.ry(math.pi / 3, 1)
    qc.ry(math.pi / 5, 2)
    qc.cx(1, 2)
    qc.rz(math.pi / 7, 2)
    qc.h(0)
    qc.t(1)
    qc.tdg(2)
    qc.cx(0, 1)
    qc.h(1)
    qc.h(2)
    qc.s(0)
    qc.ry(math.pi / 6, 2)
    return qc


def _fourmod5() -> QuantumCircuit:
    """RevLib ``4mod5-v1_22`` shape: 5 qubits, 21 gates, 11 CX, det."""
    qc = QuantumCircuit(5, name="4mod5-v1_22")
    qc.x(4)
    _ccx_block(qc, 0, 3, 4)     # 15 gates, 6 cx
    qc.cx(1, 4)
    qc.cx(2, 4)
    qc.cx(0, 4)
    qc.cx(3, 4)
    qc.cx(2, 4)
    return qc


def _fredkin() -> QuantumCircuit:
    """QASMBench ``fredkin_n3`` shape: 3 qubits, 19 gates, 8 CX, det."""
    qc = QuantumCircuit(3, name="fredkin")
    qc.x(0)
    qc.x(1)
    qc.cx(2, 1)
    _ccx_block(qc, 0, 1, 2)     # 15 gates, 6 cx
    qc.cx(2, 1)
    return qc


def _qec_en() -> QuantumCircuit:
    """QEC encoder shape (``qec_en_n5``): 5 qubits, 25 gates, 10 CX, dist."""
    qc = QuantumCircuit(5, name="qec_en")
    qc.ry(math.pi / 3, 0)       # data qubit in a superposed state
    qc.h(1)
    qc.h(2)
    qc.cx(0, 3)
    qc.cx(0, 4)
    qc.cx(1, 3)
    qc.cx(2, 4)
    qc.rz(math.pi / 8, 3)
    qc.rz(-math.pi / 8, 4)
    qc.cx(1, 0)
    qc.cx(2, 0)
    qc.h(1)
    qc.h(2)
    qc.t(0)
    qc.t(3)
    qc.tdg(4)
    qc.cx(3, 1)
    qc.cx(4, 2)
    qc.s(1)
    qc.s(2)
    qc.ry(math.pi / 5, 3)
    qc.ry(-math.pi / 5, 4)
    qc.cx(0, 3)
    qc.cx(0, 4)
    qc.h(0)
    return qc


def _alu() -> QuantumCircuit:
    """RevLib ``alu-v0_27`` shape: 5 qubits, 36 gates, 17 CX, det."""
    qc = QuantumCircuit(5, name="alu-v0_27")
    qc.x(4)
    _ccx_block(qc, 0, 1, 2)     # 15 gates, 6 cx
    _ccx_block(qc, 2, 3, 4)     # 15 gates, 6 cx
    qc.cx(0, 2)
    qc.cx(3, 4)
    qc.cx(1, 2)
    qc.cx(2, 4)
    qc.cx(0, 2)
    return qc


def _bell() -> QuantumCircuit:
    """Bell-inequality test shape (``bell_n4``): 4 qubits, 33 gates,
    7 CX, dist."""
    qc = QuantumCircuit(4, name="bell")
    angles = [math.pi / 4, math.pi / 3, math.pi / 5, math.pi / 7]
    for q, a in enumerate(angles):
        qc.ry(a, q)
    qc.cx(0, 1)
    qc.cx(2, 3)
    for q, a in enumerate(angles):
        qc.rz(a / 2, q)
    qc.cx(1, 2)
    for q in range(4):
        qc.h(q)
    qc.cx(0, 1)
    qc.cx(2, 3)
    for q, a in enumerate(angles):
        qc.ry(-a / 3, q)
    qc.cx(1, 2)
    qc.cx(0, 3)
    qc.t(0)
    qc.tdg(1)
    qc.s(2)
    qc.h(3)
    qc.rz(math.pi / 9, 0)
    qc.ry(math.pi / 11, 2)
    qc.sdg(1)
    qc.h(0)
    qc.t(2)
    qc.rz(-math.pi / 6, 3)
    return qc


def _variation() -> QuantumCircuit:
    """Variational-ansatz shape (``variational_n4``): 4 qubits, 54 gates,
    16 CX, dist."""
    qc = QuantumCircuit(4, name="variation")
    layer_angles = [
        (0.3, 0.7), (1.1, 0.2), (0.5, 1.3), (0.9, 0.4),
    ]
    for layer in range(4):
        for q in range(4):
            theta, phi = layer_angles[q]
            qc.ry(theta + 0.2 * layer, q)
            qc.rz(phi - 0.1 * layer, q)
        qc.cx(0, 1)
        qc.cx(1, 2)
        qc.cx(2, 3)
        qc.cx(3, 0)
    for q in range(4):
        qc.ry(0.15 * (q + 1), q)
    qc.rz(0.25, 0)
    qc.rz(-0.25, 3)
    return qc


_REGISTRY: Dict[str, Workload] = {}


def _register(name: str, num_qubits: int, num_gates: int, num_cx: int,
              deterministic: bool,
              builder: Callable[[], QuantumCircuit]) -> None:
    _REGISTRY[name] = Workload(name, num_qubits, num_gates, num_cx,
                               deterministic, builder)


_register("adder", 4, 23, 10, True, _adder)
_register("linearsolver", 3, 19, 4, False, _linearsolver)
_register("4mod5-v1_22", 5, 21, 11, True, _fourmod5)
_register("fredkin", 3, 19, 8, True, _fredkin)
_register("qec_en", 5, 25, 10, False, _qec_en)
_register("alu-v0_27", 5, 36, 17, True, _alu)
_register("bell", 4, 33, 7, False, _bell)
_register("variation", 4, 54, 16, False, _variation)

#: The paper's Table II rows: (qubits, gates, cx, result-type).
TABLE_II: Dict[str, Tuple[int, int, int, str]] = {
    "adder": (4, 23, 10, "1"),
    "linearsolver": (3, 19, 4, "dist"),
    "4mod5-v1_22": (5, 21, 11, "1"),
    "fredkin": (3, 19, 8, "1"),
    "qec_en": (5, 25, 10, "dist"),
    "alu-v0_27": (5, 36, 17, "1"),
    "bell": (4, 33, 7, "dist"),
    "variation": (4, 54, 16, "dist"),
}

#: Short aliases used in the paper's figure labels.
ALIASES: Dict[str, str] = {
    "lin": "linearsolver",
    "qec": "qec_en",
    "var": "variation",
    "4mod": "4mod5-v1_22",
    "fred": "fredkin",
    "alu": "alu-v0_27",
}


def dump_qasm(directory: str) -> List[str]:
    """Write every benchmark as an OpenQASM 2.0 file; returns the paths.

    Useful for feeding the suite to external toolchains.
    """
    import os

    from ..circuits.qasm import to_qasm

    os.makedirs(directory, exist_ok=True)
    paths = []
    for w in all_workloads():
        safe = w.name.replace("-", "_")
        path = os.path.join(directory, f"{safe}.qasm")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(to_qasm(w.circuit()))
        paths.append(path)
    return paths


def workload(name: str) -> Workload:
    """Look up a workload by name or paper alias."""
    name = ALIASES.get(name, name)
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def workload_names() -> List[str]:
    """All workload names in Table II order."""
    return list(TABLE_II)


def all_workloads() -> List[Workload]:
    """All workloads in Table II order."""
    return [workload(n) for n in workload_names()]

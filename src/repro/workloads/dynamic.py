"""Dynamic-circuit workloads: feed-forward teleportation, repeat-until-
success, and statically-resolvable loop programs.

These are the control-flow counterparts of the Table II suite: small
(2-3 qubit) programs whose builders return *self-contained* circuits —
every measurement they need is already in place (mid-circuit measures
feed the branches; ``measure_all`` on top would be redundant), so use
``Workload.circuit(measured=False)`` / :func:`dynamic_circuit` when
drawing from this suite.

``echo_loop`` is deliberately statically resolvable: it exercises the
:func:`~repro.transpiler.expand_control_flow` unroll-then-cache path,
while the other three keep data-dependent branches and exercise the
per-shot feed-forward path.  Traffic mixes
(:func:`repro.workloads.synthesize_traffic` with ``dynamic_fraction``)
interleave both kinds.
"""

from __future__ import annotations

from typing import Dict, List

from ..circuits.circuit import QuantumCircuit
from .suite import Workload

__all__ = [
    "DYNAMIC_SUITE",
    "dynamic_circuit",
    "dynamic_workload",
    "dynamic_workload_names",
    "dynamic_workloads",
]


def teleportation() -> QuantumCircuit:
    """Standard one-qubit teleportation with feed-forward corrections.

    An ``ry(0.8)`` state on qubit 0 is teleported to qubit 2 through a
    Bell pair; the X/Z corrections are classically-controlled on the
    mid-circuit measurement outcomes (the canonical dynamic circuit).
    """
    qc = QuantumCircuit(3, 3, name="teleportation")
    qc.ry(0.8, 0)
    qc.h(1)
    qc.cx(1, 2)
    qc.cx(0, 1)
    qc.h(0)
    qc.measure(0, 0)
    qc.measure(1, 1)
    x_fix = QuantumCircuit(3, 3)
    x_fix.x(2)
    z_fix = QuantumCircuit(3, 3)
    z_fix.z(2)
    qc.if_test(([1], 1), x_fix)
    qc.if_test(([0], 1), z_fix)
    qc.measure(2, 2)
    return qc


def repeat_until_success() -> QuantumCircuit:
    """Repeat-until-success: re-prepare q0 until it measures 1.

    Each failed round resets and re-tries (bounded at 6 iterations), so
    clbit 0 reads 1 with probability ``1 - 2^-7``; the success then
    fans out onto q1 through a CX.
    """
    qc = QuantumCircuit(2, 2, name="repeat_until_success")
    qc.h(0)
    qc.measure(0, 0)
    retry = QuantumCircuit(2, 2)
    retry.reset(0)
    retry.h(0)
    retry.measure(0, 0)
    qc.while_loop(([0], 0), retry, max_iterations=6)
    qc.cx(0, 1)
    qc.measure(1, 1)
    return qc


def echo_loop() -> QuantumCircuit:
    """Bounded X-X echo loop around a Bell pair — statically resolvable.

    The for-loop body is pure identity (two X pulses), so
    ``expand_control_flow`` unrolls the whole program into a flat Bell
    circuit; this workload exists to exercise the unroll-then-cache
    path inside mixed dynamic traffic.
    """
    qc = QuantumCircuit(2, 2, name="echo_loop")
    qc.h(0)
    echo = QuantumCircuit(2, 2)
    echo.x(0)
    echo.x(0)
    qc.for_loop(range(4), echo)
    qc.cx(0, 1)
    qc.measure(0, 0)
    qc.measure(1, 1)
    return qc


def conditional_fixup() -> QuantumCircuit:
    """Measure-and-correct: an if/else branch steered by a coin flip.

    A Hadamard coin on q0 decides whether q1 gets an X (if) or stays
    put after a reset (else); q1 then drives q2 through a CX, so the
    output distribution mixes both branches.
    """
    qc = QuantumCircuit(3, 3, name="conditional_fixup")
    qc.h(0)
    qc.measure(0, 0)
    flip = QuantumCircuit(3, 3)
    flip.x(1)
    hold = QuantumCircuit(3, 3)
    hold.reset(1)
    qc.if_test(([0], 1), flip, hold)
    qc.cx(1, 2)
    qc.measure(1, 1)
    qc.measure(2, 2)
    return qc


#: The dynamic suite, keyed by workload name.  ``num_gates``/``num_cx``
#: count top-level instructions (bodies excluded — their execution count
#: is data-dependent).
DYNAMIC_SUITE: Dict[str, Workload] = {
    w.name: w
    for w in (
        Workload("teleportation", 3, 10, 2, False, teleportation),
        Workload("repeat_until_success", 2, 5, 1, False,
                 repeat_until_success),
        Workload("echo_loop", 2, 5, 1, False, echo_loop),
        Workload("conditional_fixup", 3, 7, 1, False, conditional_fixup),
    )
}


def dynamic_workload_names() -> List[str]:
    """Names of the dynamic suite, in registry order."""
    return list(DYNAMIC_SUITE)


def dynamic_workloads() -> List[Workload]:
    """Every dynamic workload, in registry order."""
    return list(DYNAMIC_SUITE.values())


def dynamic_workload(name: str) -> Workload:
    """Look up one dynamic workload by name."""
    found = DYNAMIC_SUITE.get(name)
    if found is None:
        raise KeyError(
            f"unknown dynamic workload {name!r}; available: "
            f"{', '.join(DYNAMIC_SUITE)}")
    return found


def dynamic_circuit(name: str) -> QuantumCircuit:
    """Build one dynamic workload's circuit (already fully measured)."""
    return dynamic_workload(name).circuit(measured=False)

"""Benchmark workloads: the paper's Table II circuit suite."""

from .suite import (
    ALIASES,
    TABLE_II,
    Workload,
    all_workloads,
    dump_qasm,
    workload,
    workload_names,
)

__all__ = [
    "ALIASES",
    "TABLE_II",
    "Workload",
    "all_workloads",
    "dump_qasm",
    "workload",
    "workload_names",
]

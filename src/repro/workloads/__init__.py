"""Benchmark workloads: the paper's Table II circuit suite plus
synthetic multi-user traffic generators for the cloud scheduler."""

from .dynamic import (
    DYNAMIC_SUITE,
    dynamic_circuit,
    dynamic_workload,
    dynamic_workload_names,
    dynamic_workloads,
)
from .suite import (
    ALIASES,
    TABLE_II,
    Workload,
    all_workloads,
    dump_qasm,
    workload,
    workload_names,
)
from .traffic import (
    ARRIVAL_PATTERNS,
    CIRCUIT_MIXES,
    bursty_arrival_times,
    poisson_arrival_times,
    sample_workload_mix,
    synthesize_traffic,
    traffic_rate_sweep,
)

__all__ = [
    "ALIASES",
    "ARRIVAL_PATTERNS",
    "CIRCUIT_MIXES",
    "DYNAMIC_SUITE",
    "TABLE_II",
    "Workload",
    "all_workloads",
    "bursty_arrival_times",
    "dump_qasm",
    "dynamic_circuit",
    "dynamic_workload",
    "dynamic_workload_names",
    "dynamic_workloads",
    "poisson_arrival_times",
    "sample_workload_mix",
    "synthesize_traffic",
    "traffic_rate_sweep",
    "workload",
    "workload_names",
]

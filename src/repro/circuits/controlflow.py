"""Control-flow IR: ``if``/``for``/``while`` operations with nested bodies.

This module extends the static circuit IR with three control-flow
operations — :class:`IfElseOp`, :class:`ForLoopOp`, and
:class:`WhileLoopOp` — each carrying one or more nested
:class:`~repro.circuits.circuit.QuantumCircuit` bodies and (for the
conditional forms) a clbit-valued :class:`Condition`.

Design invariants
-----------------
* **Outer-indexed bodies.** A body is expressed over the *same*
  qubit/clbit index space as the circuit that contains the op.  Unrolling
  a body is therefore a plain instruction splice, and relabeling the
  outer circuit relabels the bodies through the very same map (see
  :meth:`ControlFlowOp.remapped`).  Bodies keep the outer circuit's
  width so indices never need translation.
* **Touched-bit footprint.** The instruction that carries a control-flow
  op lists the sorted union of every qubit its bodies touch as
  ``inst.qubits`` and the union of body clbits plus condition clbits as
  ``inst.clbits``.  Dependency-based analyses (depth, ASAP/ALAP timing,
  cancellation barriers) then treat the op as one opaque block over that
  footprint without knowing anything about control flow.
* **Conditions read classical bits.** :class:`Condition` compares a
  little-endian register formed from ``clbits`` (``clbits[0]`` is the
  least-significant bit) against ``value``.  Mid-circuit ``measure``
  instructions write those bits; the feed-forward simulator evaluates
  conditions per shot, while :func:`repro.transpiler.controlflow.
  expand_control_flow` resolves conditions whose bits were never written
  (all clbits start at 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Dict, Iterable, Mapping,
                    Optional, Sequence, Tuple, Union)

from .gates import Gate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .circuit import QuantumCircuit

__all__ = [
    "Condition",
    "ControlFlowOp",
    "IfElseOp",
    "ForLoopOp",
    "WhileLoopOp",
    "CONTROL_FLOW_NAMES",
    "DEFAULT_MAX_ITERATIONS",
    "is_control_flow",
    "has_control_flow",
    "measured_clbits_of",
    "written_clbits_of",
]

#: Instruction names reserved for control-flow operations.
CONTROL_FLOW_NAMES = frozenset({"if_else", "for_loop", "while_loop"})

#: Iteration cap applied to ``while`` loops that never exit on their own.
DEFAULT_MAX_ITERATIONS = 16

ConditionLike = Union["Condition", Tuple[Union[int, Sequence[int]], int]]


def _circuit_error(msg: str):
    from .circuit import CircuitError

    return CircuitError(msg)


@dataclass(frozen=True)
class Condition:
    """An equality test on classical bits.

    ``clbits`` forms a little-endian register (``clbits[0]`` is bit 0);
    the condition holds when that register equals ``value``.
    """

    clbits: Tuple[int, ...]
    value: int

    def __post_init__(self) -> None:
        clbits = tuple(int(c) for c in self.clbits)
        object.__setattr__(self, "clbits", clbits)
        object.__setattr__(self, "value", int(self.value))
        if not clbits:
            raise _circuit_error("condition needs at least one clbit")
        if len(set(clbits)) != len(clbits):
            raise _circuit_error(f"duplicate clbit in condition: {clbits}")
        if any(c < 0 for c in clbits):
            raise _circuit_error(f"negative clbit in condition: {clbits}")
        if not 0 <= self.value < (1 << len(clbits)):
            raise _circuit_error(
                f"condition value {self.value} out of range for "
                f"{len(clbits)} clbit(s)")

    @classmethod
    def coerce(cls, cond: ConditionLike) -> "Condition":
        """Accept ``Condition``, ``(clbit, value)``, or ``(bits, value)``."""
        if isinstance(cond, Condition):
            return cond
        try:
            target, value = cond
        except (TypeError, ValueError):
            raise _circuit_error(
                f"condition must be a Condition or a (clbits, value) "
                f"pair, got {cond!r}") from None
        if isinstance(target, (int,)):
            return cls((int(target),), int(value))
        return cls(tuple(int(c) for c in target), int(value))

    def evaluate(self, bits: Mapping[int, int]) -> bool:
        """Evaluate against a clbit -> 0/1 mapping (missing bits are 0)."""
        register = 0
        for position, clbit in enumerate(self.clbits):
            register |= (int(bits.get(clbit, 0)) & 1) << position
        return register == self.value

    def remapped(self, clbit_map: Optional[Dict[int, int]]) -> "Condition":
        """Return a copy with clbits renumbered through *clbit_map*."""
        if clbit_map is None:
            return self
        return Condition(tuple(clbit_map[c] for c in self.clbits),
                         self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if len(self.clbits) == 1:
            return f"c{self.clbits[0]}=={self.value}"
        return f"c{list(self.clbits)}=={self.value}"


def _body_footprint(bodies, condition):
    """Sorted (qubits, clbits) touched by *bodies* plus condition bits."""
    qubits, clbits = set(), set()
    for body in bodies:
        for inst in body:
            qubits.update(inst.qubits)
            clbits.update(inst.clbits)
    if condition is not None:
        clbits.update(condition.clbits)
    return tuple(sorted(qubits)), tuple(sorted(clbits))


class ControlFlowOp(Gate):
    """Base class for ops that carry nested circuit bodies.

    Subclasses bypass :meth:`Gate.__post_init__` (control-flow names are
    not in the gate tables) and add ``bodies``/``condition`` payloads.
    Instances are *unhashable* — bodies are mutable circuits — so they
    must never be used as dict keys; the cache layer builds structural
    tuples via :meth:`structural_key` instead.
    """

    __hash__ = None  # type: ignore[assignment]

    def __init__(self, name: str, bodies: Sequence["QuantumCircuit"],
                 condition: Optional[Condition] = None) -> None:
        from .circuit import QuantumCircuit

        bodies = tuple(bodies)
        if not bodies:
            raise _circuit_error(f"{name} needs at least one body")
        for body in bodies:
            if not isinstance(body, QuantumCircuit):
                raise _circuit_error(
                    f"{name} body must be a QuantumCircuit, "
                    f"got {type(body).__name__}")
        qubits, clbits = _body_footprint(bodies, condition)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "num_qubits", len(qubits))
        object.__setattr__(self, "params", ())
        object.__setattr__(self, "bodies", bodies)
        object.__setattr__(self, "condition", condition)
        object.__setattr__(self, "touched_qubits", qubits)
        object.__setattr__(self, "touched_clbits", clbits)

    # -- structural helpers -------------------------------------------
    @property
    def blocks(self) -> Tuple["QuantumCircuit", ...]:
        """Alias for ``bodies`` (mainstream-compiler naming)."""
        return self.bodies

    def matrix(self):
        raise _circuit_error(
            f"{self.name!r} has no unitary matrix; expand control flow "
            "(repro.transpiler.controlflow.expand_control_flow) or run "
            "through the feed-forward simulator")

    def inverse(self) -> Gate:
        raise _circuit_error(
            f"cannot invert control-flow op {self.name!r}; expand it "
            "first with expand_control_flow")

    @property
    def is_parameterized(self) -> bool:
        return bool(self.free_parameters)

    @property
    def free_parameters(self) -> frozenset:
        """Unbound parameters of the bodies (loop variables excluded)."""
        out = set()
        for body in self.bodies:
            out.update(body.parameters)
        return frozenset(out)

    def bound(self, values) -> "ControlFlowOp":
        """Return a copy with body parameters substituted."""
        return self.with_bodies(
            tuple(body.bind_parameters(values) for body in self.bodies))

    # -- subclass API --------------------------------------------------
    def with_bodies(self, bodies) -> "ControlFlowOp":
        """Rebuild the op around replacement *bodies* (same shape)."""
        raise NotImplementedError

    def remapped(self, qubit_map: Dict[int, int],
                 clbit_map: Optional[Dict[int, int]] = None,
                 ) -> "ControlFlowOp":
        """Return a copy with bodies/condition renumbered."""
        raise NotImplementedError

    def depth_bound(self, include_directives: bool = False) -> int:
        """Worst-case depth contribution (static bound, recursive)."""
        raise NotImplementedError

    def duration_bound(
            self, body_duration: Callable[["QuantumCircuit"], float],
    ) -> float:
        """Worst-case wall-clock contribution given a body-makespan fn."""
        raise NotImplementedError

    # -- equality ------------------------------------------------------
    def _payload(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self._payload() == other._payload()  # type: ignore[attr-defined]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gate({self.name}/{len(self.bodies)} bodies)"

    # -- shared remap plumbing ----------------------------------------
    @staticmethod
    def _remap_body(body: "QuantumCircuit", qubit_map: Dict[int, int],
                    clbit_map: Optional[Dict[int, int]]) -> "QuantumCircuit":
        new_q = [qubit_map[q] for inst in body for q in inst.qubits]
        if clbit_map is None:
            new_c = [c for inst in body for c in inst.clbits]
        else:
            new_c = [clbit_map[c] for inst in body for c in inst.clbits]
        nq = max(new_q, default=-1) + 1
        nc = max(new_c, default=-1) + 1
        return body.remapped(qubit_map, num_qubits=max(nq, 1),
                             clbit_map=clbit_map,
                             num_clbits=max(nc, body.num_clbits
                                            if clbit_map is None else 0))


class IfElseOp(ControlFlowOp):
    """Run ``true_body`` when the condition holds, else ``false_body``."""

    def __init__(self, condition: ConditionLike,
                 true_body: "QuantumCircuit",
                 false_body: Optional["QuantumCircuit"] = None) -> None:
        condition = Condition.coerce(condition)
        bodies = (true_body,) if false_body is None else (true_body,
                                                          false_body)
        super().__init__("if_else", bodies, condition)

    @property
    def true_body(self) -> "QuantumCircuit":
        return self.bodies[0]

    @property
    def false_body(self) -> Optional["QuantumCircuit"]:
        return self.bodies[1] if len(self.bodies) > 1 else None

    def body_for(self, taken: bool) -> Optional["QuantumCircuit"]:
        """The body executed when the condition evaluates to *taken*."""
        return self.true_body if taken else self.false_body

    def with_bodies(self, bodies) -> "IfElseOp":
        bodies = tuple(bodies)
        return IfElseOp(self.condition, bodies[0],
                        bodies[1] if len(bodies) > 1 else None)

    def remapped(self, qubit_map, clbit_map=None) -> "IfElseOp":
        false = self.false_body
        return IfElseOp(
            self.condition.remapped(clbit_map),
            self._remap_body(self.true_body, qubit_map, clbit_map),
            None if false is None
            else self._remap_body(false, qubit_map, clbit_map))

    def depth_bound(self, include_directives: bool = False) -> int:
        return max(body.depth(include_directives) for body in self.bodies)

    def duration_bound(self, body_duration) -> float:
        return max(body_duration(body) for body in self.bodies)

    def _payload(self) -> tuple:
        return (self.condition, self.bodies)


class ForLoopOp(ControlFlowOp):
    """Run ``body`` once per value in ``indexset`` (statically bounded).

    When ``loop_parameter`` is given, each iteration binds it to the
    current index value inside the body.
    """

    def __init__(self, indexset: Iterable[int], body: "QuantumCircuit",
                 loop_parameter=None) -> None:
        indexset = tuple(int(v) for v in indexset)
        super().__init__("for_loop", (body,), None)
        object.__setattr__(self, "indexset", indexset)
        object.__setattr__(self, "loop_parameter", loop_parameter)

    @property
    def body(self) -> "QuantumCircuit":
        return self.bodies[0]

    @property
    def free_parameters(self) -> frozenset:
        params = set(self.body.parameters)
        params.discard(self.loop_parameter)
        return frozenset(params)

    def iteration_body(self, value: int) -> "QuantumCircuit":
        """The body for one loop-index *value* (loop parameter bound)."""
        if self.loop_parameter is None:
            return self.body
        return self.body.bind_parameters({self.loop_parameter: value})

    def with_bodies(self, bodies) -> "ForLoopOp":
        (body,) = tuple(bodies)
        return ForLoopOp(self.indexset, body, self.loop_parameter)

    def remapped(self, qubit_map, clbit_map=None) -> "ForLoopOp":
        return ForLoopOp(self.indexset,
                         self._remap_body(self.body, qubit_map, clbit_map),
                         self.loop_parameter)

    def depth_bound(self, include_directives: bool = False) -> int:
        return len(self.indexset) * self.body.depth(include_directives)

    def duration_bound(self, body_duration) -> float:
        return len(self.indexset) * body_duration(self.body)

    def _payload(self) -> tuple:
        return (self.indexset, self.loop_parameter, self.bodies)


class WhileLoopOp(ControlFlowOp):
    """Run ``body`` while the condition holds, up to ``max_iterations``.

    The iteration cap makes every dynamic program statically bounded —
    the scheduler's duration model and ``depth()`` both use it as the
    worst case, and the feed-forward simulator stops a shot's loop after
    that many passes even if the condition is still true.
    """

    def __init__(self, condition: ConditionLike, body: "QuantumCircuit",
                 max_iterations: int = DEFAULT_MAX_ITERATIONS) -> None:
        condition = Condition.coerce(condition)
        max_iterations = int(max_iterations)
        if max_iterations < 1:
            raise _circuit_error(
                f"while_loop max_iterations must be >= 1, "
                f"got {max_iterations}")
        super().__init__("while_loop", (body,), condition)
        object.__setattr__(self, "max_iterations", max_iterations)

    @property
    def body(self) -> "QuantumCircuit":
        return self.bodies[0]

    def with_bodies(self, bodies) -> "WhileLoopOp":
        (body,) = tuple(bodies)
        return WhileLoopOp(self.condition, body, self.max_iterations)

    def remapped(self, qubit_map, clbit_map=None) -> "WhileLoopOp":
        return WhileLoopOp(self.condition.remapped(clbit_map),
                           self._remap_body(self.body, qubit_map, clbit_map),
                           self.max_iterations)

    def depth_bound(self, include_directives: bool = False) -> int:
        return self.max_iterations * self.body.depth(include_directives)

    def duration_bound(self, body_duration) -> float:
        return self.max_iterations * body_duration(self.body)

    def _payload(self) -> tuple:
        return (self.condition, self.max_iterations, self.bodies)


# ----------------------------------------------------------------------
# queries
# ----------------------------------------------------------------------
def is_control_flow(obj) -> bool:
    """True when *obj* (a Gate or Instruction) is a control-flow op."""
    g = getattr(obj, "gate", obj)
    return isinstance(g, ControlFlowOp)


def has_control_flow(circuit: "QuantumCircuit") -> bool:
    """True when any top-level instruction is a control-flow op.

    Nested control flow only ever appears inside a top-level op's body,
    so the top-level scan is sufficient.
    """
    return any(isinstance(inst.gate, ControlFlowOp) for inst in circuit)


def written_clbits_of(circuit: "QuantumCircuit") -> Tuple[int, ...]:
    """Sorted clbits written by ``measure`` anywhere, bodies included."""
    written = set()
    for inst in circuit:
        if inst.name == "measure":
            written.update(inst.clbits)
        elif isinstance(inst.gate, ControlFlowOp):
            for body in inst.gate.bodies:
                written.update(written_clbits_of(body))
    return tuple(sorted(written))


#: Alias — the only writers of clbits are measurements.
measured_clbits_of = written_clbits_of

"""Clifford-group tooling for randomized benchmarking.

The 1-qubit (24 elements) and 2-qubit (11520 elements) Clifford groups are
built once per process by breadth-first closure over generator gates, with
matrices canonicalized up to global phase.  Each element stores its shortest
generator decomposition, which lets RB append the exact inverse Clifford as
native gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .circuit import QuantumCircuit
from .gates import gate

__all__ = [
    "CliffordElement",
    "CliffordGroup",
    "clifford_group_1q",
    "clifford_group_2q",
]

# A decomposition step: (gate_name, qubit_indices_within_element).
Step = Tuple[str, Tuple[int, ...]]


def _canonicalize(mat: np.ndarray, tol: float = 1e-9) -> bytes:
    """Return a phase-invariant hashable key for a unitary matrix."""
    flat = mat.ravel()
    # Normalize global phase: rotate so the first significant entry is
    # real-positive.
    idx = int(np.argmax(np.abs(flat) > tol))
    phase = flat[idx] / abs(flat[idx])
    normalized = np.round(mat / phase, 6)
    # Adding 0.0 collapses IEEE negative zeros, which would otherwise
    # produce distinct byte keys for identical matrices.
    normalized = normalized + (0.0 + 0.0j)
    return normalized.tobytes()


@dataclass(frozen=True)
class CliffordElement:
    """One Clifford group element: its unitary plus a gate decomposition."""

    matrix: np.ndarray
    steps: Tuple[Step, ...]

    def apply_to(self, circuit: QuantumCircuit,
                 qubits: Sequence[int]) -> None:
        """Append this element's gate sequence to *circuit* on *qubits*."""
        for name, local_qubits in self.steps:
            circuit.append(gate(name), [qubits[i] for i in local_qubits])


class CliffordGroup:
    """A finite Clifford group with sampling and inverse lookup."""

    def __init__(self, num_qubits: int, generators: Sequence[Step]) -> None:
        self.num_qubits = num_qubits
        dim = 2 ** num_qubits
        gen_mats: List[Tuple[Step, np.ndarray]] = []
        for name, qubits in generators:
            gen_mats.append(((name, qubits), self._embed(name, qubits, dim)))
        identity = np.eye(dim, dtype=complex)
        elements: Dict[bytes, CliffordElement] = {
            _canonicalize(identity): CliffordElement(identity, ())
        }
        frontier = [CliffordElement(identity, ())]
        while frontier:
            next_frontier: List[CliffordElement] = []
            for elem in frontier:
                for step, gmat in gen_mats:
                    new_mat = gmat @ elem.matrix
                    key = _canonicalize(new_mat)
                    if key not in elements:
                        new_elem = CliffordElement(
                            new_mat, elem.steps + (step,))
                        elements[key] = new_elem
                        next_frontier.append(new_elem)
            frontier = next_frontier
        self._elements: List[CliffordElement] = list(elements.values())
        self._by_key: Dict[bytes, CliffordElement] = elements

    @staticmethod
    def _embed(name: str, qubits: Tuple[int, ...], dim: int) -> np.ndarray:
        """Expand a generator's matrix onto the full element Hilbert space."""
        import math

        num_qubits = int(math.log2(dim))
        g = gate(name)
        gm = g.matrix()
        if len(qubits) == num_qubits and qubits == tuple(range(num_qubits)):
            return gm
        # Build the permuted tensor embedding via index arithmetic.
        full = np.zeros((dim, dim), dtype=complex)
        other = [q for q in range(num_qubits) if q not in qubits]
        for col in range(dim):
            bits = [(col >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits)]
            sub_in = 0
            for q in qubits:
                sub_in = (sub_in << 1) | bits[q]
            for sub_out in range(gm.shape[0]):
                amp = gm[sub_out, sub_in]
                if amp == 0:
                    continue
                out_bits = list(bits)
                for pos, q in enumerate(qubits):
                    out_bits[q] = (sub_out >> (len(qubits) - 1 - pos)) & 1
                row = 0
                for b in out_bits:
                    row = (row << 1) | b
                full[row, col] += amp
        return full

    def __len__(self) -> int:
        return len(self._elements)

    @property
    def elements(self) -> Tuple[CliffordElement, ...]:
        """All group elements."""
        return tuple(self._elements)

    def sample(self, rng: np.random.Generator) -> CliffordElement:
        """Uniformly sample one element."""
        idx = int(rng.integers(len(self._elements)))
        return self._elements[idx]

    def inverse_of(self, mat: np.ndarray) -> CliffordElement:
        """Return the element implementing the inverse of *mat*.

        *mat* must be (proportional to) a group element's unitary.
        """
        key = _canonicalize(mat.conj().T)
        elem = self._by_key.get(key)
        if elem is None:
            raise KeyError("matrix is not an element of this Clifford group")
        return elem


@lru_cache(maxsize=1)
def clifford_group_1q() -> CliffordGroup:
    """The 24-element single-qubit Clifford group over {h, s}."""
    group = CliffordGroup(1, [("h", (0,)), ("s", (0,))])
    assert len(group) == 24, f"1q Clifford group size {len(group)} != 24"
    return group


@lru_cache(maxsize=1)
def clifford_group_2q() -> CliffordGroup:
    """The 11520-element two-qubit Clifford group over {h, s, cx}."""
    group = CliffordGroup(
        2,
        [
            ("h", (0,)),
            ("h", (1,)),
            ("s", (0,)),
            ("s", (1,)),
            ("cx", (0, 1)),
            ("cx", (1, 0)),
        ],
    )
    assert len(group) == 11520, f"2q Clifford group size {len(group)} != 11520"
    return group

"""OpenQASM 2.0 subset parser and writer.

Supports the subset needed for the RevLib/QASMBench-style benchmarks used in
the paper: ``qreg``/``creg`` declarations, the standard ``qelib1`` gates,
``measure``, and ``barrier``.  Expressions in gate parameters may use ``pi``,
the four arithmetic operators, unary minus, and parentheses.
"""

from __future__ import annotations

import ast
import math
import re
from typing import Dict, List, Tuple

from .circuit import QuantumCircuit
from .controlflow import ControlFlowOp
from .gates import gate

__all__ = ["parse_qasm", "to_qasm", "QasmError"]


class QasmError(ValueError):
    """Raised on malformed QASM input."""


_TOKEN_RE = re.compile(r"(//[^\n]*)|(/\*.*?\*/)", re.DOTALL)


def _strip_comments(text: str) -> str:
    return _TOKEN_RE.sub("", text)


_ALLOWED_AST_NODES = (
    ast.Expression, ast.BinOp, ast.UnaryOp, ast.Constant, ast.Name,
    ast.Load, ast.Add, ast.Sub, ast.Mult, ast.Div, ast.USub, ast.UAdd,
    ast.Pow,
)


def _eval_param(expr: str) -> float:
    """Safely evaluate a QASM parameter expression (pi arithmetic only)."""
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError as exc:
        raise QasmError(f"bad parameter expression {expr!r}") from exc
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_AST_NODES):
            raise QasmError(f"disallowed token in parameter {expr!r}")
        if isinstance(node, ast.Name) and node.id != "pi":
            raise QasmError(f"unknown symbol {node.id!r} in {expr!r}")
    return float(eval(  # noqa: S307 - AST-validated arithmetic only
        compile(tree, "<qasm>", "eval"), {"__builtins__": {}}, {"pi": math.pi}
    ))


_DECL_RE = re.compile(r"^(qreg|creg)\s+([A-Za-z_]\w*)\s*\[\s*(\d+)\s*\]$")
_MEASURE_RE = re.compile(
    r"^measure\s+([A-Za-z_]\w*)\s*(?:\[\s*(\d+)\s*\])?\s*->\s*"
    r"([A-Za-z_]\w*)\s*(?:\[\s*(\d+)\s*\])?$"
)
_GATE_RE = re.compile(r"^([A-Za-z_]\w*)\s*(?:\(([^)]*)\))?\s+(.+)$")
_ARG_RE = re.compile(r"^([A-Za-z_]\w*)\s*(?:\[\s*(\d+)\s*\])?$")

# qelib1 aliases to our IR names.
_NAME_ALIASES = {"cnot": "cx", "toffoli": "ccx", "fredkin": "cswap"}


def parse_qasm(text: str, name: str = "qasm") -> QuantumCircuit:
    """Parse OpenQASM 2.0 source text into a :class:`QuantumCircuit`.

    Registers are flattened in declaration order into a single qubit
    (clbit) index space, as mainstream compilers do.
    """
    text = _strip_comments(text)
    statements = [s.strip() for s in text.split(";") if s.strip()]
    qregs: Dict[str, Tuple[int, int]] = {}  # name -> (offset, size)
    cregs: Dict[str, Tuple[int, int]] = {}
    body: List[str] = []
    nq = nc = 0
    for stmt in statements:
        if stmt.startswith("OPENQASM") or stmt.startswith("include"):
            continue
        m = _DECL_RE.match(stmt)
        if m:
            kind, reg, size_s = m.groups()
            size = int(size_s)
            if kind == "qreg":
                if reg in qregs:
                    raise QasmError(f"duplicate qreg {reg!r}")
                qregs[reg] = (nq, size)
                nq += size
            else:
                if reg in cregs:
                    raise QasmError(f"duplicate creg {reg!r}")
                cregs[reg] = (nc, size)
                nc += size
            continue
        body.append(stmt)

    qc = QuantumCircuit(nq, nc, name=name)

    def qubit_index(reg: str, idx: str | None) -> List[int]:
        if reg not in qregs:
            raise QasmError(f"unknown qreg {reg!r}")
        offset, size = qregs[reg]
        if idx is None:
            return list(range(offset, offset + size))
        i = int(idx)
        if i >= size:
            raise QasmError(f"index {i} out of range for qreg {reg!r}")
        return [offset + i]

    def clbit_index(reg: str, idx: str | None) -> List[int]:
        if reg not in cregs:
            raise QasmError(f"unknown creg {reg!r}")
        offset, size = cregs[reg]
        if idx is None:
            return list(range(offset, offset + size))
        i = int(idx)
        if i >= size:
            raise QasmError(f"index {i} out of range for creg {reg!r}")
        return [offset + i]

    for stmt in body:
        m = _MEASURE_RE.match(stmt)
        if m:
            qreg, qidx, creg, cidx = m.groups()
            qs = qubit_index(qreg, qidx)
            cs = clbit_index(creg, cidx)
            if len(qs) != len(cs):
                raise QasmError(f"measure width mismatch in {stmt!r}")
            for q, c in zip(qs, cs):
                qc.measure(q, c)
            continue
        m = _GATE_RE.match(stmt)
        if not m:
            raise QasmError(f"cannot parse statement {stmt!r}")
        gname, params_s, args_s = m.groups()
        gname = _NAME_ALIASES.get(gname.lower(), gname.lower())
        params = tuple(
            _eval_param(p.strip()) for p in params_s.split(",")
        ) if params_s else ()
        arg_groups: List[List[int]] = []
        for arg in args_s.split(","):
            am = _ARG_RE.match(arg.strip())
            if not am:
                raise QasmError(f"bad argument {arg!r} in {stmt!r}")
            arg_groups.append(qubit_index(am.group(1), am.group(2)))
        if gname == "barrier":
            qs = [q for group in arg_groups for q in group]
            qc.barrier(*qs)
            continue
        if gname == "reset":
            for group in arg_groups:
                for q in group:
                    qc.reset(q)
            continue
        # Broadcast register-wide application (e.g. "h q;").
        widths = {len(g) for g in arg_groups}
        if widths == {1}:
            qc.append(gate(gname, *params), [g[0] for g in arg_groups])
        else:
            span = max(widths)
            for k in range(span):
                qs = [g[k] if len(g) > 1 else g[0] for g in arg_groups]
                qc.append(gate(gname, *params), qs)
    return qc


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialize a circuit to OpenQASM 2.0 text (single q/c registers)."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    if circuit.num_clbits:
        lines.append(f"creg c[{circuit.num_clbits}];")
    for inst in circuit:
        if isinstance(inst.gate, ControlFlowOp):
            # OpenQASM 2.0 has no classical control flow beyond the
            # single-creg `if` statement, which cannot express nested
            # bodies or loops.  Fail loudly with the available remedies.
            raise QasmError(
                f"OpenQASM 2.0 cannot express control-flow op "
                f"{inst.name!r}; expand it first with "
                "repro.transpiler.controlflow.expand_control_flow (for "
                "statically-resolvable circuits) or keep the circuit in "
                "the native IR")
        if inst.name == "measure":
            lines.append(f"measure q[{inst.qubits[0]}] -> c[{inst.clbits[0]}];")
            continue
        if inst.name == "barrier":
            args = ",".join(f"q[{q}]" for q in inst.qubits)
            lines.append(f"barrier {args};")
            continue
        if inst.name == "reset":
            lines.append(f"reset q[{inst.qubits[0]}];")
            continue
        if inst.name == "delay":
            # Delays are scheduler artefacts; QASM 2 has no delay, skip.
            continue
        name = "id" if inst.name == "id" else inst.name
        if inst.params:
            pstr = ",".join(repr(p) for p in inst.params)
            name = f"{name}({pstr})"
        args = ",".join(f"q[{q}]" for q in inst.qubits)
        lines.append(f"{name} {args};")
    return "\n".join(lines) + "\n"

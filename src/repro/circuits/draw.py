"""ASCII circuit rendering.

A compact text drawer for debugging and examples:

>>> from repro.circuits import QuantumCircuit
>>> from repro.circuits.draw import draw
>>> qc = QuantumCircuit(2, 2)
>>> _ = qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1)
>>> print(draw(qc))
q0: -[h]---*----[M]-------
q1: ------[X]--------[M]--
"""

from __future__ import annotations

from typing import Dict, List

from .circuit import QuantumCircuit
from .controlflow import (ControlFlowOp, ForLoopOp, IfElseOp,
                          WhileLoopOp)

__all__ = ["draw"]


def _control_flow_label(op: ControlFlowOp) -> str:
    """Short box label for a control-flow op, e.g. ``[if(c0==1)]``."""
    if isinstance(op, IfElseOp):
        tag = "if/else" if op.false_body is not None else "if"
        return f"[{tag}({op.condition!r})]"
    if isinstance(op, ForLoopOp):
        return f"[for(x{len(op.indexset)})]"
    if isinstance(op, WhileLoopOp):
        return f"[while({op.condition!r},<={op.max_iterations})]"
    return f"[{op.name}]"  # pragma: no cover - future op kinds


def _gate_label(name: str, params) -> str:
    if name == "measure":
        return "[M]"
    if name == "reset":
        return "[R]"
    if name == "delay":
        return f"[~{params[0]:g}]"
    if params:
        pstr = ",".join(f"{p:.2g}" for p in params)
        return f"[{name}({pstr})]"
    return f"[{name}]"


def draw(circuit: QuantumCircuit, max_width: int = 2000) -> str:
    """Render *circuit* as one text line per qubit."""
    lines: List[List[str]] = [
        [f"q{q}: "] for q in range(circuit.num_qubits)
    ]
    # Left-pad qubit labels to equal width.
    label_width = max(len(line[0]) for line in lines)
    for line in lines:
        line[0] = line[0].rjust(label_width)

    for inst in circuit:
        if inst.name == "barrier":
            width = 3
            for q in range(circuit.num_qubits):
                symbol = "-|-" if q in inst.qubits else "-" * width
                lines[q].append(symbol)
            continue
        if isinstance(inst.gate, ControlFlowOp):
            if not inst.qubits:
                continue
            label = _control_flow_label(inst.gate)
            width = len(label) + 2
            anchor = min(inst.qubits)
            lo, hi = anchor, max(inst.qubits)
            for q in range(circuit.num_qubits):
                if q == anchor:
                    symbol = label
                elif q in inst.qubits:
                    symbol = "-#-"
                elif lo < q < hi:
                    symbol = "-|-"
                else:
                    lines[q].append("-" * width)
                    continue
                pad = width - len(symbol)
                lines[q].append("-" * (pad // 2) + symbol
                                + "-" * (pad - pad // 2))
            continue
        if len(inst.qubits) == 1:
            label = _gate_label(inst.name, inst.params)
            width = len(label) + 2
            target = inst.qubits[0]
            for q in range(circuit.num_qubits):
                if q == target:
                    lines[q].append(f"-{label}-")
                else:
                    lines[q].append("-" * width)
            continue
        # Multi-qubit gate: control dots + target box, vertical extent
        # implied by the shared column.
        if inst.name == "cx":
            symbols = {inst.qubits[0]: "-*-",
                       inst.qubits[1]: "[X]"}
        elif inst.name == "cz":
            symbols = {inst.qubits[0]: "-*-", inst.qubits[1]: "-*-"}
        elif inst.name == "swap":
            symbols = {inst.qubits[0]: "-x-", inst.qubits[1]: "-x-"}
        else:
            label = _gate_label(inst.name, inst.params)
            symbols = {}
            for pos, q in enumerate(inst.qubits):
                symbols[q] = label if pos == len(inst.qubits) - 1 \
                    else "-*-"
        width = max(len(s) for s in symbols.values()) + 2
        lo, hi = min(inst.qubits), max(inst.qubits)
        for q in range(circuit.num_qubits):
            if q in symbols:
                s = symbols[q]
                pad = width - len(s)
                lines[q].append("-" * (pad // 2) + s
                                + "-" * (pad - pad // 2))
            elif lo < q < hi:
                mid = "|"
                lines[q].append(
                    "-" * ((width - 1) // 2) + mid
                    + "-" * (width - 1 - (width - 1) // 2))
            else:
                lines[q].append("-" * width)

    rendered = ["".join(parts) for parts in lines]
    return "\n".join(
        line if len(line) <= max_width else line[:max_width - 3] + "..."
        for line in rendered
    )

"""Circuit constructors: common states, QFT, and random circuits."""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from .circuit import QuantumCircuit

__all__ = [
    "ghz_circuit",
    "bell_pair",
    "qft_circuit",
    "random_circuit",
    "w_state_circuit",
    "bernstein_vazirani_circuit",
    "deutsch_jozsa_circuit",
    "quantum_volume_circuit",
]


def bell_pair() -> QuantumCircuit:
    """The 2-qubit Bell state preparation |00> + |11>."""
    qc = QuantumCircuit(2, name="bell_pair")
    qc.h(0).cx(0, 1)
    return qc


def ghz_circuit(num_qubits: int) -> QuantumCircuit:
    """GHZ state preparation on *num_qubits* qubits (linear CX chain)."""
    if num_qubits < 1:
        raise ValueError("GHZ needs at least one qubit")
    qc = QuantumCircuit(num_qubits, name=f"ghz{num_qubits}")
    qc.h(0)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    return qc


def w_state_circuit(num_qubits: int) -> QuantumCircuit:
    """W state preparation via the standard cascade construction.

    Start from |10...0> and repeatedly peel amplitude ``1/sqrt(n)`` onto the
    next qubit with a controlled-RY followed by a CX.
    """
    if num_qubits < 1:
        raise ValueError("W state needs at least one qubit")
    qc = QuantumCircuit(num_qubits, name=f"w{num_qubits}")
    qc.x(0)
    for k in range(1, num_qubits):
        theta = 2 * math.acos(math.sqrt(1.0 / (num_qubits - k + 1)))
        qc.cry(theta, k - 1, k)
        qc.cx(k, k - 1)
    return qc


def qft_circuit(num_qubits: int, do_swaps: bool = True) -> QuantumCircuit:
    """Quantum Fourier transform on *num_qubits* qubits."""
    qc = QuantumCircuit(num_qubits, name=f"qft{num_qubits}")
    for target in range(num_qubits):
        qc.h(target)
        for control in range(target + 1, num_qubits):
            angle = math.pi / (2 ** (control - target))
            qc.cp(angle, control, target)
    if do_swaps:
        for q in range(num_qubits // 2):
            qc.swap(q, num_qubits - 1 - q)
    return qc


def bernstein_vazirani_circuit(secret: str) -> QuantumCircuit:
    """Bernstein-Vazirani: one query recovers the *secret* bitstring.

    Uses ``len(secret)`` data qubits plus one ancilla; the ideal
    measurement outcome on the data qubits is exactly *secret*.
    """
    if not secret or any(c not in "01" for c in secret):
        raise ValueError("secret must be a non-empty bitstring")
    n = len(secret)
    qc = QuantumCircuit(n + 1, name=f"bv_{secret}")
    qc.x(n)
    for q in range(n + 1):
        qc.h(q)
    for q, bit in enumerate(secret):
        if bit == "1":
            qc.cx(q, n)
    for q in range(n):
        qc.h(q)
    return qc


def deutsch_jozsa_circuit(num_qubits: int,
                          balanced: bool = True) -> QuantumCircuit:
    """Deutsch-Jozsa on *num_qubits* data qubits.

    With a balanced oracle (parity of all inputs) the all-zeros outcome
    has probability 0; with the constant oracle it has probability 1.
    """
    if num_qubits < 1:
        raise ValueError("need at least one data qubit")
    n = num_qubits
    qc = QuantumCircuit(n + 1,
                        name=f"dj_{'bal' if balanced else 'const'}{n}")
    qc.x(n)
    for q in range(n + 1):
        qc.h(q)
    if balanced:
        for q in range(n):
            qc.cx(q, n)
    for q in range(n):
        qc.h(q)
    return qc


def quantum_volume_circuit(num_qubits: int, depth: Optional[int] = None,
                           seed: Optional[int] = None) -> QuantumCircuit:
    """Quantum-volume model circuit: layers of random SU(4) blocks.

    Each layer permutes the qubits and applies a Haar-ish random
    two-qubit block (two random 1q rotations around a CX pair) to each
    adjacent pair of the permutation.  ``depth`` defaults to
    ``num_qubits`` (square circuits, as the QV protocol specifies).
    """
    if num_qubits < 2:
        raise ValueError("quantum volume needs >= 2 qubits")
    depth = depth if depth is not None else num_qubits
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits, name=f"qv{num_qubits}x{depth}")
    for _ in range(depth):
        perm = rng.permutation(num_qubits)
        for k in range(0, num_qubits - 1, 2):
            a, b = int(perm[k]), int(perm[k + 1])
            for q in (a, b):
                qc.u(float(rng.uniform(0, math.pi)),
                     float(rng.uniform(0, 2 * math.pi)),
                     float(rng.uniform(0, 2 * math.pi)), q)
            qc.cx(a, b)
            for q in (a, b):
                qc.u(float(rng.uniform(0, math.pi)),
                     float(rng.uniform(0, 2 * math.pi)),
                     float(rng.uniform(0, 2 * math.pi)), q)
    return qc


def random_circuit(
    num_qubits: int,
    depth: int,
    seed: Optional[int] = None,
    twoq_prob: float = 0.4,
    oneq_gates: Sequence[str] = ("h", "x", "rz", "sx", "t"),
) -> QuantumCircuit:
    """Random circuit: each layer fills qubits with 1q gates or CX pairs.

    Deterministic for a given *seed*; used by tests and fuzz benchmarks.
    """
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits, name=f"random{num_qubits}x{depth}")
    for _ in range(depth):
        free = list(range(num_qubits))
        rng.shuffle(free)
        while free:
            if len(free) >= 2 and rng.random() < twoq_prob:
                a = free.pop()
                b = free.pop()
                qc.cx(a, b)
            else:
                q = free.pop()
                name = str(rng.choice(list(oneq_gates)))
                if name == "rz":
                    qc.rz(float(rng.uniform(0, 2 * math.pi)), q)
                else:
                    getattr(qc, name)(q)
    return qc

"""Gate definitions for the circuit IR.

Every gate used by the transpiler, the simulators, and the benchmark suite is
defined here.  A :class:`Gate` is an immutable description (name, number of
qubits, parameters); its unitary matrix is produced on demand by
:meth:`Gate.matrix`.

The device basis used throughout the project is the IBM basis
``{rz, sx, x, cx}`` plus ``measure``/``barrier``/``delay`` directives.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "Gate",
    "GateError",
    "gate",
    "standard_gate_names",
    "is_directive",
    "DIRECTIVES",
    "BASIS_GATES",
]

#: Names that are scheduling/measurement directives, not unitary gates.
DIRECTIVES = frozenset({"measure", "barrier", "reset", "delay"})

#: The hardware basis targeted by the transpiler (IBM's basis).
BASIS_GATES = ("rz", "sx", "x", "cx")


class GateError(ValueError):
    """Raised for malformed gate construction or unknown gate names."""


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """Return the general single-qubit rotation U(theta, phi, lambda)."""
    ct = math.cos(theta / 2.0)
    st = math.sin(theta / 2.0)
    return np.array(
        [
            [ct, -cmath.exp(1j * lam) * st],
            [cmath.exp(1j * phi) * st, cmath.exp(1j * (phi + lam)) * ct],
        ],
        dtype=complex,
    )


_SQ2 = 1.0 / math.sqrt(2.0)

_FIXED_1Q: Dict[str, np.ndarray] = {
    "id": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "h": np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex),
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "t": np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex),
    "tdg": np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex),
    "sx": 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex),
    "sxdg": 0.5 * np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex),
}

# Two-qubit convention: qubit index 0 in the instruction's qubit list is the
# *first* (most significant) tensor factor.  CX below is control=qubit0,
# target=qubit1 in that big-endian convention.
_FIXED_2Q: Dict[str, np.ndarray] = {
    "cx": np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
    ),
    "cz": np.diag([1, 1, 1, -1]).astype(complex),
    "swap": np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    ),
    "iswap": np.array(
        [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
    ),
    "cy": np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, -1j], [0, 0, 1j, 0]], dtype=complex
    ),
    "ch": np.array(
        [
            [1, 0, 0, 0],
            [0, 1, 0, 0],
            [0, 0, _SQ2, _SQ2],
            [0, 0, _SQ2, -_SQ2],
        ],
        dtype=complex,
    ),
}

_FIXED_3Q: Dict[str, np.ndarray] = {}


def _ccx_matrix() -> np.ndarray:
    mat = np.eye(8, dtype=complex)
    mat[[6, 7], :] = mat[[7, 6], :]
    return mat


def _cswap_matrix() -> np.ndarray:
    mat = np.eye(8, dtype=complex)
    mat[[5, 6], :] = mat[[6, 5], :]
    return mat


_FIXED_3Q["ccx"] = _ccx_matrix()
_FIXED_3Q["cswap"] = _cswap_matrix()


def _rx(theta: float) -> np.ndarray:
    return _u3(theta, -math.pi / 2, math.pi / 2)


def _ry(theta: float) -> np.ndarray:
    return _u3(theta, 0.0, 0.0)


def _rz(phi: float) -> np.ndarray:
    return np.array(
        [[cmath.exp(-1j * phi / 2), 0], [0, cmath.exp(1j * phi / 2)]], dtype=complex
    )


def _p(lam: float) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=complex)


def _u(theta: float, phi: float, lam: float) -> np.ndarray:
    return _u3(theta, phi, lam)


def _controlled(mat: np.ndarray) -> np.ndarray:
    dim = mat.shape[0]
    out = np.eye(2 * dim, dtype=complex)
    out[dim:, dim:] = mat
    return out


def _cp(lam: float) -> np.ndarray:
    return _controlled(_p(lam))


def _crx(theta: float) -> np.ndarray:
    return _controlled(_rx(theta))


def _cry(theta: float) -> np.ndarray:
    return _controlled(_ry(theta))


def _crz(theta: float) -> np.ndarray:
    return _controlled(_rz(theta))


def _rzz(theta: float) -> np.ndarray:
    e_m = cmath.exp(-1j * theta / 2)
    e_p = cmath.exp(1j * theta / 2)
    return np.diag([e_m, e_p, e_p, e_m]).astype(complex)


def _rxx(theta: float) -> np.ndarray:
    c = math.cos(theta / 2)
    s = -1j * math.sin(theta / 2)
    return np.array(
        [[c, 0, 0, s], [0, c, s, 0], [0, s, c, 0], [s, 0, 0, c]], dtype=complex
    )


def _ryy(theta: float) -> np.ndarray:
    c = math.cos(theta / 2)
    s = 1j * math.sin(theta / 2)
    return np.array(
        [[c, 0, 0, s], [0, c, -s, 0], [0, -s, c, 0], [s, 0, 0, c]], dtype=complex
    )


_PARAMETRIC: Dict[str, Tuple[int, int, Callable[..., np.ndarray]]] = {
    # name: (num_qubits, num_params, matrix builder)
    "rx": (1, 1, _rx),
    "ry": (1, 1, _ry),
    "rz": (1, 1, _rz),
    "p": (1, 1, _p),
    "u1": (1, 1, _p),
    "u": (1, 3, _u),
    "u3": (1, 3, _u),
    "u2": (1, 2, lambda phi, lam: _u3(math.pi / 2, phi, lam)),
    "cp": (2, 1, _cp),
    "cu1": (2, 1, _cp),
    "crx": (2, 1, _crx),
    "cry": (2, 1, _cry),
    "crz": (2, 1, _crz),
    "rzz": (2, 1, _rzz),
    "rxx": (2, 1, _rxx),
    "ryy": (2, 1, _ryy),
}

_FIXED: Dict[str, np.ndarray] = {}
_FIXED.update(_FIXED_1Q)
_FIXED.update(_FIXED_2Q)
_FIXED.update(_FIXED_3Q)


def standard_gate_names() -> Tuple[str, ...]:
    """Return every gate name known to the IR (directives excluded)."""
    return tuple(sorted(set(_FIXED) | set(_PARAMETRIC)))


def is_directive(name: str) -> bool:
    """Return True if *name* is a non-unitary directive (measure etc.)."""
    return name in DIRECTIVES


@dataclass(frozen=True)
class Gate:
    """An immutable gate description.

    Parameters
    ----------
    name:
        Lower-case gate name (``"cx"``, ``"rz"``, ...).
    num_qubits:
        Number of qubits the gate acts on.
    params:
        Tuple of float parameters (empty for fixed gates).
    """

    name: str
    num_qubits: int
    params: Tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.name in _FIXED:
            if self.params:
                raise GateError(f"gate {self.name!r} takes no parameters")
            expected = int(math.log2(_FIXED[self.name].shape[0]))
            if self.num_qubits != expected:
                raise GateError(
                    f"gate {self.name!r} acts on {expected} qubits, "
                    f"got {self.num_qubits}"
                )
        elif self.name in _PARAMETRIC:
            nq, np_, _ = _PARAMETRIC[self.name]
            if self.num_qubits != nq:
                raise GateError(
                    f"gate {self.name!r} acts on {nq} qubits, got {self.num_qubits}"
                )
            if len(self.params) != np_:
                raise GateError(
                    f"gate {self.name!r} takes {np_} parameters, "
                    f"got {len(self.params)}"
                )
        elif self.name in DIRECTIVES:
            pass
        else:
            raise GateError(f"unknown gate {self.name!r}")

    @property
    def is_directive(self) -> bool:
        """True for measure/barrier/reset/delay pseudo-gates."""
        return self.name in DIRECTIVES

    @property
    def is_parametric(self) -> bool:
        """True when the gate carries continuous parameters."""
        return self.name in _PARAMETRIC

    @property
    def is_parameterized(self) -> bool:
        """True when any parameter is still a symbolic expression."""
        from .parameters import ParameterExpression

        return any(isinstance(p, ParameterExpression)
                   for p in self.params)

    def matrix(self) -> np.ndarray:
        """Return the unitary matrix of the gate (big-endian qubit order)."""
        if self.name in _FIXED:
            return _FIXED[self.name].copy()
        if self.name in _PARAMETRIC:
            if self.is_parameterized:
                from .parameters import UnboundParameterError

                raise UnboundParameterError(
                    f"gate {self.name!r} has unbound parameters; bind "
                    "the circuit first")
            _, _, builder = _PARAMETRIC[self.name]
            return builder(*self.params)
        raise GateError(f"directive {self.name!r} has no matrix")

    def bound(self, values) -> "Gate":
        """Return a copy with symbolic parameters substituted."""
        from .parameters import ParameterExpression

        new_params = []
        for p in self.params:
            if isinstance(p, ParameterExpression):
                new_params.append(p.bind(values))
            else:
                new_params.append(p)
        return Gate(self.name, self.num_qubits, tuple(new_params))

    def inverse(self) -> "Gate":
        """Return the gate implementing the inverse unitary."""
        inverses = {
            "s": "sdg",
            "sdg": "s",
            "t": "tdg",
            "tdg": "t",
            "sx": "sxdg",
            "sxdg": "sx",
        }
        if self.name in inverses:
            return Gate(inverses[self.name], 1)
        if self.name in _FIXED:
            # Remaining fixed gates are self-inverse (X, Y, Z, H, CX, CZ,
            # SWAP, CCX, CSWAP, CY, CH) except iSWAP.
            if self.name == "iswap":
                raise GateError("iswap inverse is not in the gate set")
            return self
        if self.name in _PARAMETRIC:
            if self.name in ("u", "u3"):
                theta, phi, lam = self.params
                return Gate(self.name, 1, (-theta, -lam, -phi))
            if self.name == "u2":
                phi, lam = self.params
                return Gate("u3", 1, (-math.pi / 2, -lam, -phi))
            return Gate(self.name, self.num_qubits,
                        tuple(-p for p in self.params))
        raise GateError(f"directive {self.name!r} has no inverse")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.params:
            pstr = ", ".join(f"{p:.6g}" for p in self.params)
            return f"Gate({self.name}({pstr}))"
        return f"Gate({self.name})"


def _coerce_param(p):
    """Floats pass through; symbolic parameter expressions are kept."""
    from .parameters import ParameterExpression

    if isinstance(p, ParameterExpression):
        return p
    return float(p)


def gate(name: str, *params) -> Gate:
    """Construct a :class:`Gate` by name, inferring its qubit count.

    Parameters may be numbers or symbolic
    :class:`~repro.circuits.parameters.Parameter` expressions.

    >>> gate("cx").num_qubits
    2
    >>> gate("rz", 0.5).params
    (0.5,)
    """
    name = name.lower()
    if name in _FIXED:
        nq = int(math.log2(_FIXED[name].shape[0]))
        return Gate(name, nq, tuple(_coerce_param(p) for p in params))
    if name in _PARAMETRIC:
        nq, _, _ = _PARAMETRIC[name]
        return Gate(name, nq, tuple(_coerce_param(p) for p in params))
    raise GateError(f"unknown gate {name!r}")

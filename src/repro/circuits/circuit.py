"""The :class:`QuantumCircuit` container.

A circuit is an ordered list of :class:`Instruction` objects over ``num_qubits``
qubits and ``num_clbits`` classical bits.  The class offers the builder methods
familiar from mainstream compilers (``h``, ``cx``, ``rz``, ...), structural
queries (depth, gate counts), and transformations (compose, inverse, remap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .gates import Gate, GateError, gate

__all__ = ["Instruction", "QuantumCircuit", "CircuitError"]


class CircuitError(ValueError):
    """Raised on malformed circuit operations (bad indices, size mismatch)."""


@dataclass(frozen=True)
class Instruction:
    """A gate (or directive) applied to specific qubits/clbits.

    ``qubits`` are circuit qubit indices; ``clbits`` is non-empty only for
    ``measure`` instructions.  ``duration`` is an optional length in ``dt``
    units filled in by the scheduler.
    """

    gate: Gate
    qubits: Tuple[int, ...]
    clbits: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def name(self) -> str:
        """Gate name shortcut."""
        return self.gate.name

    @property
    def params(self) -> Tuple[float, ...]:
        """Gate parameters shortcut."""
        return self.gate.params

    def remap(self, qubit_map: Dict[int, int],
              clbit_map: Optional[Dict[int, int]] = None) -> "Instruction":
        """Return a copy with qubits (and optionally clbits) renumbered.

        Control-flow gates are rebuilt recursively: their nested bodies
        and conditions pass through the same maps, and the instruction's
        footprint is recomputed from the remapped op.
        """
        from .controlflow import ControlFlowOp

        if isinstance(self.gate, ControlFlowOp):
            new_gate = self.gate.remapped(qubit_map, clbit_map)
            return Instruction(new_gate, new_gate.touched_qubits,
                               new_gate.touched_clbits)
        new_q = tuple(qubit_map[q] for q in self.qubits)
        if clbit_map is None:
            new_c = self.clbits
        else:
            new_c = tuple(clbit_map[c] for c in self.clbits)
        return Instruction(self.gate, new_q, new_c)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        core = f"{self.name}{list(self.qubits)}"
        if self.clbits:
            core += f"->c{list(self.clbits)}"
        return core


class QuantumCircuit:
    """An ordered sequence of instructions over qubits and classical bits.

    >>> qc = QuantumCircuit(2, 2)
    >>> qc.h(0).cx(0, 1).measure_all()  # doctest: +ELLIPSIS
    <repro.circuits.circuit.QuantumCircuit object at ...>
    >>> qc.depth()
    3
    """

    def __init__(self, num_qubits: int, num_clbits: int = 0,
                 name: str = "circuit") -> None:
        if num_qubits < 0 or num_clbits < 0:
            raise CircuitError("qubit/clbit counts must be non-negative")
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_clbits)
        self.name = name
        self._instructions: List[Instruction] = []

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        """The instruction sequence (read-only view)."""
        return tuple(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, idx: int) -> Instruction:
        return self._instructions[idx]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self.num_clbits == other.num_clbits
            and self._instructions == other._instructions
        )

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def append(self, g: Gate, qubits: Sequence[int],
               clbits: Sequence[int] = ()) -> "QuantumCircuit":
        """Append gate *g* on *qubits*; validates indices and arity."""
        qubits = tuple(int(q) for q in qubits)
        clbits = tuple(int(c) for c in clbits)
        if not g.is_directive and len(qubits) != g.num_qubits:
            raise CircuitError(
                f"gate {g.name!r} needs {g.num_qubits} qubits, got {len(qubits)}"
            )
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(f"qubit index {q} out of range")
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"duplicate qubit in {g.name!r}: {qubits}")
        for c in clbits:
            if not 0 <= c < self.num_clbits:
                raise CircuitError(f"clbit index {c} out of range")
        self._instructions.append(Instruction(g, qubits, clbits))
        return self

    def append_instruction(self, inst: Instruction) -> "QuantumCircuit":
        """Append an existing :class:`Instruction` (revalidated)."""
        return self.append(inst.gate, inst.qubits, inst.clbits)

    # ------------------------------------------------------------------
    # builder methods
    # ------------------------------------------------------------------
    def _add(self, name: str, qubits: Sequence[int],
             *params: float) -> "QuantumCircuit":
        return self.append(gate(name, *params), qubits)

    def i(self, q: int) -> "QuantumCircuit":
        """Identity gate."""
        return self._add("id", [q])

    def x(self, q: int) -> "QuantumCircuit":
        """Pauli-X gate."""
        return self._add("x", [q])

    def y(self, q: int) -> "QuantumCircuit":
        """Pauli-Y gate."""
        return self._add("y", [q])

    def z(self, q: int) -> "QuantumCircuit":
        """Pauli-Z gate."""
        return self._add("z", [q])

    def h(self, q: int) -> "QuantumCircuit":
        """Hadamard gate."""
        return self._add("h", [q])

    def s(self, q: int) -> "QuantumCircuit":
        """S (sqrt(Z)) gate."""
        return self._add("s", [q])

    def sdg(self, q: int) -> "QuantumCircuit":
        """S-dagger gate."""
        return self._add("sdg", [q])

    def t(self, q: int) -> "QuantumCircuit":
        """T (pi/8) gate."""
        return self._add("t", [q])

    def tdg(self, q: int) -> "QuantumCircuit":
        """T-dagger gate."""
        return self._add("tdg", [q])

    def sx(self, q: int) -> "QuantumCircuit":
        """sqrt(X) gate."""
        return self._add("sx", [q])

    def sxdg(self, q: int) -> "QuantumCircuit":
        """sqrt(X)-dagger gate."""
        return self._add("sxdg", [q])

    def rx(self, theta: float, q: int) -> "QuantumCircuit":
        """X-rotation."""
        return self._add("rx", [q], theta)

    def ry(self, theta: float, q: int) -> "QuantumCircuit":
        """Y-rotation."""
        return self._add("ry", [q], theta)

    def rz(self, phi: float, q: int) -> "QuantumCircuit":
        """Z-rotation."""
        return self._add("rz", [q], phi)

    def p(self, lam: float, q: int) -> "QuantumCircuit":
        """Phase gate."""
        return self._add("p", [q], lam)

    def u(self, theta: float, phi: float, lam: float, q: int) -> "QuantumCircuit":
        """General single-qubit rotation."""
        return self._add("u", [q], theta, phi, lam)

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-X (CNOT)."""
        return self._add("cx", [control, target])

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        """Controlled-Z."""
        return self._add("cz", [a, b])

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Y."""
        return self._add("cy", [control, target])

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Hadamard."""
        return self._add("ch", [control, target])

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled-phase."""
        return self._add("cp", [control, target], lam)

    def crx(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled-RX."""
        return self._add("crx", [control, target], theta)

    def cry(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled-RY."""
        return self._add("cry", [control, target], theta)

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled-RZ."""
        return self._add("crz", [control, target], theta)

    def rzz(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        """ZZ interaction."""
        return self._add("rzz", [a, b], theta)

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        """SWAP gate."""
        return self._add("swap", [a, b])

    def ccx(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        """Toffoli gate."""
        return self._add("ccx", [c1, c2, target])

    def cswap(self, control: int, a: int, b: int) -> "QuantumCircuit":
        """Fredkin (controlled-SWAP) gate."""
        return self._add("cswap", [control, a, b])

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        """Barrier directive over *qubits* (all qubits when omitted)."""
        qs = tuple(qubits) if qubits else tuple(range(self.num_qubits))
        self._instructions.append(
            Instruction(Gate("barrier", len(qs)), qs))
        return self

    def reset(self, q: int) -> "QuantumCircuit":
        """Reset a qubit to |0>."""
        self._instructions.append(Instruction(Gate("reset", 1), (int(q),)))
        return self

    def delay(self, q: int, duration: float) -> "QuantumCircuit":
        """Idle delay directive (duration in dt units, kept as a param)."""
        self._instructions.append(
            Instruction(Gate("delay", 1, (float(duration),)), (int(q),)))
        return self

    def measure(self, qubit: int, clbit: int) -> "QuantumCircuit":
        """Measure *qubit* into classical bit *clbit*."""
        if not 0 <= qubit < self.num_qubits:
            raise CircuitError(f"qubit index {qubit} out of range")
        if not 0 <= clbit < self.num_clbits:
            raise CircuitError(f"clbit index {clbit} out of range")
        self._instructions.append(
            Instruction(Gate("measure", 1), (int(qubit),), (int(clbit),)))
        return self

    def measure_all(self) -> "QuantumCircuit":
        """Measure every qubit into the matching classical bit.

        Grows the classical register to ``num_qubits`` if needed.
        """
        if self.num_clbits < self.num_qubits:
            self.num_clbits = self.num_qubits
        for q in range(self.num_qubits):
            self.measure(q, q)
        return self

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------
    def _append_control_flow(self, op) -> "QuantumCircuit":
        """Validate a control-flow op's footprint and append it."""
        for body in op.bodies:
            if body.num_qubits > self.num_qubits:
                raise CircuitError(
                    f"{op.name} body spans {body.num_qubits} qubits but "
                    f"the circuit has {self.num_qubits}; bodies are "
                    "indexed in the outer circuit's qubit space")
        for q in op.touched_qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(f"qubit index {q} out of range")
        for c in op.touched_clbits:
            if not 0 <= c < self.num_clbits:
                raise CircuitError(f"clbit index {c} out of range")
        self._instructions.append(
            Instruction(op, op.touched_qubits, op.touched_clbits))
        return self

    def if_test(self, condition, true_body: "QuantumCircuit",
                false_body: Optional["QuantumCircuit"] = None,
                ) -> "QuantumCircuit":
        """Append an ``if``/``else`` over outer-indexed *bodies*.

        *condition* is a :class:`~repro.circuits.controlflow.Condition`
        or a ``(clbit, value)`` / ``(clbits, value)`` pair.  Bodies are
        circuits over this circuit's qubit/clbit index space.
        """
        from .controlflow import IfElseOp

        return self._append_control_flow(
            IfElseOp(condition, true_body, false_body))

    def for_loop(self, indexset, body: "QuantumCircuit",
                 loop_parameter=None) -> "QuantumCircuit":
        """Append a statically-bounded loop running *body* per index."""
        from .controlflow import ForLoopOp

        return self._append_control_flow(
            ForLoopOp(indexset, body, loop_parameter))

    def while_loop(self, condition, body: "QuantumCircuit",
                   max_iterations: Optional[int] = None) -> "QuantumCircuit":
        """Append a condition-guarded loop (capped at *max_iterations*)."""
        from .controlflow import DEFAULT_MAX_ITERATIONS, WhileLoopOp

        if max_iterations is None:
            max_iterations = DEFAULT_MAX_ITERATIONS
        return self._append_control_flow(
            WhileLoopOp(condition, body, max_iterations))

    def has_control_flow(self) -> bool:
        """True when any instruction is an if/for/while op."""
        from .controlflow import has_control_flow

        return has_control_flow(self)

    def has_midcircuit_measurement(self) -> bool:
        """True when a measured qubit is *operated on* again afterwards.

        These are the circuits whose semantics the deferred-measurement
        simulators (final-state projection, "last measure per clbit
        wins") get wrong: the qubit must be collapsed at measurement
        time, so they execute on the per-shot feed-forward path.  Delays
        and barriers after a measure don't count (ALAP scheduling pads
        every measured circuit with them), and re-measuring an untouched
        qubit doesn't either (projective measurement is repeatable).
        """
        from .controlflow import ControlFlowOp

        measured: set = set()
        for inst in self._instructions:
            if inst.name in ("delay", "barrier"):
                continue
            if inst.name == "measure":
                measured.add(inst.qubits[0])
                continue
            if isinstance(inst.gate, ControlFlowOp):
                if any(q in measured for q in inst.gate.touched_qubits):
                    return True
                # Conservative: any qubit a body might measure counts as
                # measured from here on.
                stack = [i for body in inst.gate.bodies
                         for i in body.instructions]
                while stack:
                    nested = stack.pop()
                    if nested.name == "measure":
                        measured.add(nested.qubits[0])
                    elif isinstance(nested.gate, ControlFlowOp):
                        stack.extend(
                            i for body in nested.gate.bodies
                            for i in body.instructions)
                continue
            if any(q in measured for q in inst.qubits):
                return True
        return False

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    def size(self, include_directives: bool = False) -> int:
        """Number of gates (directives excluded by default)."""
        if include_directives:
            return len(self._instructions)
        return sum(1 for inst in self if not inst.gate.is_directive)

    def count_ops(self) -> Dict[str, int]:
        """Histogram of instruction names."""
        counts: Dict[str, int] = {}
        for inst in self:
            counts[inst.name] = counts.get(inst.name, 0) + 1
        return counts

    def num_twoq_gates(self) -> int:
        """Number of 2-qubit (and larger) unitary gates."""
        return sum(
            1 for inst in self
            if not inst.gate.is_directive and len(inst.qubits) >= 2
        )

    def num_cx(self) -> int:
        """Number of CX gates."""
        return self.count_ops().get("cx", 0)

    def depth(self, include_directives: bool = False) -> int:
        """Circuit depth: longest qubit-wise dependency chain.

        Control-flow ops contribute their *worst-case* depth bound
        (``if``: deepest branch; ``for``: iterations x body depth;
        ``while``: ``max_iterations`` x body depth) over their full
        qubit/clbit footprint, so the result is a static upper bound
        rather than a per-shot depth.
        """
        from .controlflow import ControlFlowOp

        level: Dict[int, int] = {}
        clevel: Dict[int, int] = {}
        depth = 0
        for inst in self:
            if inst.gate.is_directive and not include_directives:
                if inst.name != "measure":
                    continue
            if isinstance(inst.gate, ControlFlowOp):
                weight = inst.gate.depth_bound(include_directives)
            else:
                weight = 1
            bits = inst.qubits
            start = max(
                [level.get(q, 0) for q in bits]
                + [clevel.get(c, 0) for c in inst.clbits]
                + [0]
            )
            end = start + weight
            for q in bits:
                level[q] = end
            for c in inst.clbits:
                clevel[c] = end
            depth = max(depth, end)
        return depth

    def qubits_used(self) -> Tuple[int, ...]:
        """Sorted tuple of qubit indices touched by any instruction."""
        used = set()
        for inst in self:
            used.update(inst.qubits)
        return tuple(sorted(used))

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """Shallow-copy the circuit (instructions are immutable)."""
        out = QuantumCircuit(self.num_qubits, self.num_clbits,
                             name or self.name)
        out._instructions = list(self._instructions)
        return out

    def inverse(self) -> "QuantumCircuit":
        """Return the adjoint circuit; fails on measure/reset/control flow."""
        from .controlflow import ControlFlowOp

        out = QuantumCircuit(self.num_qubits, self.num_clbits,
                             f"{self.name}_dg")
        for inst in reversed(self._instructions):
            if isinstance(inst.gate, ControlFlowOp):
                raise CircuitError(
                    f"cannot invert control-flow op {inst.name!r}: branch "
                    "outcomes are shot-dependent; statically resolvable "
                    "circuits can be flattened first with "
                    "repro.transpiler.controlflow.expand_control_flow")
            if inst.name in ("measure", "reset"):
                raise CircuitError("cannot invert a circuit with "
                                   f"{inst.name!r}")
            if inst.name in ("barrier", "delay"):
                out._instructions.append(inst)
                continue
            out.append(inst.gate.inverse(), inst.qubits)
        return out

    def adjoint(self) -> "QuantumCircuit":
        """Alias for :meth:`inverse` (same control-flow restrictions)."""
        return self.inverse()

    def without_measurements(self) -> "QuantumCircuit":
        """Return a copy with measure/barrier instructions stripped.

        Raises :class:`CircuitError` on control-flow ops: stripping a
        mid-circuit measurement that feeds a condition would silently
        change which branches run.
        """
        from .controlflow import ControlFlowOp

        out = QuantumCircuit(self.num_qubits, self.num_clbits, self.name)
        for inst in self:
            if isinstance(inst.gate, ControlFlowOp):
                raise CircuitError(
                    f"cannot strip measurements around control-flow op "
                    f"{inst.name!r}: conditions read measured clbits; "
                    "expand_control_flow the circuit first if it is "
                    "statically resolvable")
            if inst.name in ("measure", "barrier"):
                continue
            out._instructions.append(inst)
        return out

    def compose(self, other: "QuantumCircuit",
                qubits: Optional[Sequence[int]] = None,
                clbits: Optional[Sequence[int]] = None) -> "QuantumCircuit":
        """Return ``self`` followed by *other* (mapped onto *qubits*).

        ``qubits[i]`` is the qubit of ``self`` that qubit ``i`` of *other*
        lands on (identity mapping by default).
        """
        if qubits is None:
            qubits = list(range(other.num_qubits))
        if clbits is None:
            clbits = list(range(other.num_clbits))
        if len(qubits) != other.num_qubits:
            raise CircuitError("qubit mapping length mismatch")
        if len(clbits) != other.num_clbits:
            raise CircuitError("clbit mapping length mismatch")
        qmap = {i: q for i, q in enumerate(qubits)}
        cmap = {i: c for i, c in enumerate(clbits)}
        out = self.copy()
        for inst in other:
            out.append_instruction(inst.remap(qmap, cmap))
        return out

    def remapped(self, qubit_map: Dict[int, int],
                 num_qubits: Optional[int] = None,
                 clbit_map: Optional[Dict[int, int]] = None,
                 num_clbits: Optional[int] = None) -> "QuantumCircuit":
        """Return a copy with qubit indices renumbered via *qubit_map*."""
        nq = num_qubits if num_qubits is not None else self.num_qubits
        nc = num_clbits if num_clbits is not None else self.num_clbits
        out = QuantumCircuit(nq, nc, self.name)
        for inst in self:
            out.append_instruction(inst.remap(qubit_map, clbit_map))
        return out

    def repeated(self, reps: int) -> "QuantumCircuit":
        """Return the circuit repeated *reps* times (no measurements)."""
        if reps < 0:
            raise CircuitError("reps must be non-negative")
        body = self.without_measurements()
        out = QuantumCircuit(self.num_qubits, self.num_clbits,
                             f"{self.name}_x{reps}")
        for _ in range(reps):
            out = out.compose(body)
        return out

    # ------------------------------------------------------------------
    # symbolic parameters
    # ------------------------------------------------------------------
    @property
    def parameters(self) -> set:
        """Free symbolic parameters of the circuit."""
        from .controlflow import ControlFlowOp
        from .parameters import ParameterExpression

        out: set = set()
        for inst in self:
            if isinstance(inst.gate, ControlFlowOp):
                out.update(inst.gate.free_parameters)
                continue
            for p in inst.params:
                if isinstance(p, ParameterExpression):
                    out.update(p.parameters)
        return out

    def is_parameterized(self) -> bool:
        """True when any gate carries an unbound parameter.

        A ``for`` loop's own loop variable does not count — it is bound
        internally at each iteration.
        """
        return any(inst.gate.is_parameterized for inst in self
                   if not inst.gate.is_directive)

    def bind_parameters(self, values: Dict) -> "QuantumCircuit":
        """Return a copy with symbolic parameters substituted.

        *values* maps :class:`~repro.circuits.parameters.Parameter` to
        numbers.  Binding may be partial; unbound parameters remain
        symbolic.  Control-flow bodies are bound recursively.
        """
        from .controlflow import ControlFlowOp

        out = QuantumCircuit(self.num_qubits, self.num_clbits, self.name)
        for inst in self:
            if isinstance(inst.gate, ControlFlowOp):
                out._instructions.append(
                    Instruction(inst.gate.bound(values), inst.qubits,
                                inst.clbits))
                continue
            if inst.gate.is_directive or not inst.gate.is_parameterized:
                out._instructions.append(inst)
                continue
            out._instructions.append(
                Instruction(inst.gate.bound(values), inst.qubits,
                            inst.clbits))
        return out

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QuantumCircuit {self.name!r}: {self.num_qubits}q "
            f"{self.num_clbits}c, {len(self)} instructions>"
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        ops = ", ".join(f"{k}:{v}" for k, v in sorted(self.count_ops().items()))
        return (
            f"{self.name}: {self.num_qubits} qubits, depth {self.depth()}, "
            f"{self.size()} gates ({ops})"
        )

"""Symbolic circuit parameters.

A :class:`Parameter` is a named placeholder usable anywhere a gate angle
is expected; :class:`ParameterExpression` supports the affine arithmetic
(``2 * theta + 0.5``, ``-theta``) variational workflows need.  A circuit
containing parameters cannot be simulated until
:meth:`~repro.circuits.circuit.QuantumCircuit.bind_parameters` replaces
them with floats.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Set, Union

__all__ = ["Parameter", "ParameterExpression", "UnboundParameterError"]

Number = Union[int, float]


class UnboundParameterError(TypeError):
    """Raised when an operation needs a numeric value but found symbols."""


class ParameterExpression:
    """An affine combination of parameters: ``sum(coeff_i * p_i) + const``."""

    def __init__(self, terms: Mapping["Parameter", float],
                 constant: float = 0.0) -> None:
        self._terms: Dict[Parameter, float] = {
            p: float(c) for p, c in terms.items() if c != 0.0
        }
        self._constant = float(constant)

    # ------------------------------------------------------------------
    @property
    def parameters(self) -> Set["Parameter"]:
        """The free parameters of the expression."""
        return set(self._terms)

    def bind(self, values: Mapping["Parameter", float]
             ) -> Union["ParameterExpression", float]:
        """Substitute values; returns a float when fully bound."""
        remaining: Dict[Parameter, float] = {}
        constant = self._constant
        for param, coeff in self._terms.items():
            if param in values:
                constant += coeff * float(values[param])
            else:
                remaining[param] = coeff
        if not remaining:
            return constant
        return ParameterExpression(remaining, constant)

    def value(self) -> float:
        """Numeric value; raises if parameters remain."""
        if self._terms:
            names = ", ".join(sorted(p.name for p in self._terms))
            raise UnboundParameterError(
                f"expression still contains parameters: {names}")
        return self._constant

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _combined(self, other: Union["ParameterExpression", Number],
                  sign: float) -> "ParameterExpression":
        terms = dict(self._terms)
        constant = self._constant
        if isinstance(other, ParameterExpression):
            for p, c in other._terms.items():
                terms[p] = terms.get(p, 0.0) + sign * c
            constant += sign * other._constant
        else:
            constant += sign * float(other)
        return ParameterExpression(terms, constant)

    def __add__(self, other):
        return self._combined(other, 1.0)

    __radd__ = __add__

    def __sub__(self, other):
        return self._combined(other, -1.0)

    def __rsub__(self, other):
        return (-self)._combined(other, 1.0)

    def __neg__(self):
        return ParameterExpression(
            {p: -c for p, c in self._terms.items()}, -self._constant)

    def __mul__(self, factor: Number):
        if isinstance(factor, ParameterExpression):
            raise TypeError("parameter expressions are affine only")
        return ParameterExpression(
            {p: c * float(factor) for p, c in self._terms.items()},
            self._constant * float(factor))

    __rmul__ = __mul__

    def __truediv__(self, factor: Number):
        return self * (1.0 / float(factor))

    def __float__(self) -> float:
        return self.value()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float)):
            return not self._terms and self._constant == other
        if not isinstance(other, ParameterExpression):
            return NotImplemented
        return (self._terms == other._terms
                and self._constant == other._constant)

    def __hash__(self) -> int:
        return hash((frozenset(self._terms.items()), self._constant))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [
            f"{c:g}*{p.name}" for p, c in sorted(
                self._terms.items(), key=lambda pc: pc[0].name)
        ]
        if self._constant or not parts:
            parts.append(f"{self._constant:g}")
        return " + ".join(parts)


class Parameter(ParameterExpression):
    """A named symbolic parameter."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("parameter needs a name")
        self.name = name
        super().__init__({self: 1.0})

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name})"

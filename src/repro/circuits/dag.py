"""DAG view of a circuit: dependency layers and ASAP/ALAP levelling.

The multiprogramming scheduler needs to know which gates execute
*simultaneously* (to apply crosstalk between one-hop CNOT pairs), and the
ALAP pass needs per-gate time slots.  Both are derived here from the
qubit-wise dependency structure of the instruction list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .circuit import Instruction, QuantumCircuit

__all__ = ["DagNode", "CircuitDag", "asap_layers", "alap_layers"]


@dataclass(frozen=True)
class DagNode:
    """One instruction plus its position in the original circuit."""

    index: int
    instruction: Instruction

    @property
    def qubits(self) -> Tuple[int, ...]:
        """Qubits the node touches."""
        return self.instruction.qubits


class CircuitDag:
    """Directed acyclic dependency graph over a circuit's instructions.

    Edges connect consecutive instructions that share a qubit or clbit.
    Barriers create dependencies across all the qubits they span but are
    not emitted as layer members.
    """

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.circuit = circuit
        self.nodes: List[DagNode] = [
            DagNode(i, inst) for i, inst in enumerate(circuit)
        ]
        self.successors: Dict[int, List[int]] = {n.index: [] for n in self.nodes}
        self.predecessors: Dict[int, List[int]] = {n.index: [] for n in self.nodes}
        last_on_qubit: Dict[int, int] = {}
        last_on_clbit: Dict[int, int] = {}
        for node in self.nodes:
            deps = set()
            for q in node.instruction.qubits:
                if q in last_on_qubit:
                    deps.add(last_on_qubit[q])
                last_on_qubit[q] = node.index
            for c in node.instruction.clbits:
                if c in last_on_clbit:
                    deps.add(last_on_clbit[c])
                last_on_clbit[c] = node.index
            for dep in sorted(deps):
                self.successors[dep].append(node.index)
                self.predecessors[node.index].append(dep)

    def front_layer(self) -> List[DagNode]:
        """Nodes with no predecessors (the executable frontier)."""
        return [n for n in self.nodes if not self.predecessors[n.index]]

    def topological_order(self) -> List[DagNode]:
        """Nodes in a topological order (original order works by design)."""
        return list(self.nodes)


def _levels(circuit: QuantumCircuit) -> List[int]:
    """ASAP level of each instruction (barriers participate, level -1 when
    the instruction is a barrier so callers can skip them)."""
    qubit_level: Dict[int, int] = {}
    clbit_level: Dict[int, int] = {}
    levels: List[int] = []
    for inst in circuit:
        start = max(
            [qubit_level.get(q, 0) for q in inst.qubits]
            + [clbit_level.get(c, 0) for c in inst.clbits]
            + [0]
        )
        end = start + 1
        for q in inst.qubits:
            qubit_level[q] = end
        for c in inst.clbits:
            clbit_level[c] = end
        levels.append(start)
    return levels


def asap_layers(circuit: QuantumCircuit) -> List[List[Instruction]]:
    """Group instructions into As-Soon-As-Possible layers.

    Layer *k* contains instructions whose every dependency completed in
    layers ``< k``.  Barriers enforce ordering but are not emitted.
    """
    levels = _levels(circuit)
    depth = max(levels, default=-1) + 1
    layers: List[List[Instruction]] = [[] for _ in range(depth)]
    for inst, lvl in zip(circuit, levels):
        if inst.name == "barrier":
            continue
        layers[lvl].append(inst)
    return [layer for layer in layers if layer]


def alap_layers(circuit: QuantumCircuit) -> List[List[Instruction]]:
    """Group instructions into As-Late-As-Possible layers.

    This is the scheduling discipline all the parallel-execution papers use:
    qubits stay in the ground state as long as possible, so programs of
    different depths *finish* together rather than *start* together.
    Implemented as ASAP on the reversed instruction list, then re-reversed.
    """
    reversed_circuit = QuantumCircuit(circuit.num_qubits, circuit.num_clbits)
    for inst in reversed(circuit.instructions):
        reversed_circuit._instructions.append(inst)  # noqa: SLF001
    rev_layers = asap_layers(reversed_circuit)
    return [list(layer) for layer in reversed(rev_layers)]


def instruction_levels(circuit: QuantumCircuit,
                       mode: str = "asap") -> List[int]:
    """Per-instruction time level under ASAP or ALAP scheduling.

    For ``mode="asap"`` the level counts from the circuit start; for
    ``mode="alap"`` the returned value is the level counted **from the
    end** (0 = final layer), which is the natural alignment for parallel
    programs that finish together.
    """
    if mode == "asap":
        return _levels(circuit)
    if mode == "alap":
        reversed_circuit = QuantumCircuit(circuit.num_qubits,
                                          circuit.num_clbits)
        for inst in reversed(circuit.instructions):
            reversed_circuit._instructions.append(inst)  # noqa: SLF001
        rev = _levels(reversed_circuit)
        return list(reversed(rev))
    raise ValueError(f"unknown scheduling mode {mode!r}")


def simultaneous_twoq_pairs(
    layers: Sequence[Sequence[Instruction]],
) -> List[List[Tuple[int, int]]]:
    """For each layer, the list of 2-qubit gate pairs active in that layer.

    Pairs are returned as sorted ``(low, high)`` qubit tuples — the unit the
    crosstalk model reasons about.
    """
    out: List[List[Tuple[int, int]]] = []
    for layer in layers:
        pairs = [
            (min(inst.qubits), max(inst.qubits))
            for inst in layer
            if not inst.gate.is_directive and len(inst.qubits) == 2
        ]
        out.append(pairs)
    return out

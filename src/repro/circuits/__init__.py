"""Quantum-circuit intermediate representation.

Public surface:

- :class:`~repro.circuits.circuit.QuantumCircuit` / `Instruction`
- :class:`~repro.circuits.gates.Gate` and the :func:`gate` factory
- DAG utilities (`asap_layers`, `alap_layers`, `CircuitDag`)
- OpenQASM 2.0 I/O (`parse_qasm`, `to_qasm`)
- circuit constructors (`ghz_circuit`, `qft_circuit`, `random_circuit`, ...)
- Clifford groups for randomized benchmarking
"""

from .circuit import CircuitError, Instruction, QuantumCircuit
from .controlflow import (
    Condition,
    ControlFlowOp,
    ForLoopOp,
    IfElseOp,
    WhileLoopOp,
    has_control_flow,
    is_control_flow,
    measured_clbits_of,
)
from .clifford import (
    CliffordElement,
    CliffordGroup,
    clifford_group_1q,
    clifford_group_2q,
)
from .draw import draw
from .dag import CircuitDag, alap_layers, asap_layers, simultaneous_twoq_pairs
from .gates import BASIS_GATES, DIRECTIVES, Gate, GateError, gate
from .parameters import Parameter, ParameterExpression, UnboundParameterError
from .library import (
    bell_pair,
    bernstein_vazirani_circuit,
    deutsch_jozsa_circuit,
    ghz_circuit,
    qft_circuit,
    quantum_volume_circuit,
    random_circuit,
    w_state_circuit,
)
from .qasm import QasmError, parse_qasm, to_qasm

__all__ = [
    "BASIS_GATES",
    "DIRECTIVES",
    "CircuitDag",
    "CircuitError",
    "CliffordElement",
    "CliffordGroup",
    "Condition",
    "ControlFlowOp",
    "ForLoopOp",
    "IfElseOp",
    "WhileLoopOp",
    "has_control_flow",
    "is_control_flow",
    "measured_clbits_of",
    "Gate",
    "GateError",
    "Instruction",
    "Parameter",
    "ParameterExpression",
    "QasmError",
    "QuantumCircuit",
    "UnboundParameterError",
    "alap_layers",
    "asap_layers",
    "bell_pair",
    "bernstein_vazirani_circuit",
    "clifford_group_1q",
    "deutsch_jozsa_circuit",
    "clifford_group_2q",
    "draw",
    "gate",
    "ghz_circuit",
    "parse_qasm",
    "qft_circuit",
    "quantum_volume_circuit",
    "random_circuit",
    "simultaneous_twoq_pairs",
    "to_qasm",
    "w_state_circuit",
]

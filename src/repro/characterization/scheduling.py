"""SRB experiment scheduling and overhead accounting (paper Table I).

Terminology, following the paper:

- a **CNOT pair** is a device link (a pair of coupled qubits);
- two links are a **one-hop pair** when they are disjoint and one extra
  edge connects them — the crosstalk-prone configuration;
- an **SRB experiment** characterizes one one-hop link pair and consists
  of three job types: RB on the first link alone, RB on the second link
  alone, and simultaneous RB on both.

Experiments whose links are all mutually separated by more than one hop
can share a job (Murali et al.'s optimization); the greedy grouping below
computes that packing.  Total jobs = 3 job types x seeds x groups —
the paper's 135 (Toronto) and 165 (Manhattan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..hardware.topology import CouplingMap, Edge

__all__ = [
    "SRBExperiment",
    "srb_experiments",
    "group_experiments",
    "srb_job_count",
    "SRBOverheadReport",
    "srb_overhead_report",
]


@dataclass(frozen=True)
class SRBExperiment:
    """One crosstalk characterization target: a one-hop link pair."""

    link_a: Edge
    link_b: Edge

    @property
    def qubits(self) -> Tuple[int, ...]:
        """All four qubits involved."""
        return tuple(sorted(set(self.link_a) | set(self.link_b)))


def srb_experiments(coupling: CouplingMap) -> Tuple[SRBExperiment, ...]:
    """All one-hop link pairs of the device, as SRB experiments."""
    return tuple(
        SRBExperiment(e1, e2)
        for e1, e2 in coupling.all_one_hop_edge_pairs()
    )


def _conflict(coupling: CouplingMap, a: SRBExperiment,
              b: SRBExperiment) -> bool:
    """Experiments conflict when any of their links are within one hop."""
    for e1 in (a.link_a, a.link_b):
        for e2 in (b.link_a, b.link_b):
            if coupling.pair_distance(e1, e2) <= 1:
                return True
    return False


def group_experiments(
    coupling: CouplingMap,
    experiments: Sequence[SRBExperiment] = (),
) -> List[List[SRBExperiment]]:
    """Pack experiments into a minimal number of conflict-free groups.

    Greedy graph colouring (DSATUR plus random-restart greedy, keeping the
    best).  Note: under this *strict* separation criterion the Toronto
    conflict graph contains a 13-clique, so fewer than 13 groups is
    impossible — the paper's reported 9/11 groups must rest on a weaker
    (unpublished) criterion; see EXPERIMENTS.md.
    """
    if not experiments:
        experiments = srb_experiments(coupling)
    n = len(experiments)
    conflicts: Dict[int, set] = {i: set() for i in range(n)}
    for i in range(n):
        for j in range(i + 1, n):
            if _conflict(coupling, experiments[i], experiments[j]):
                conflicts[i].add(j)
                conflicts[j].add(i)

    def greedy(order: Sequence[int]) -> Dict[int, int]:
        color: Dict[int, int] = {}
        for i in order:
            used = {color[j] for j in conflicts[i] if j in color}
            c = 0
            while c in used:
                c += 1
            color[i] = c
        return color

    # DSATUR-ish baseline: descending degree, then random restarts.
    best = greedy(sorted(range(n), key=lambda i: -len(conflicts[i])))
    rng = np.random.default_rng(0)
    for _ in range(200):
        candidate = greedy(list(rng.permutation(n)))
        if max(candidate.values(), default=-1) < max(best.values(),
                                                     default=-1):
            best = candidate

    num_groups = max(best.values(), default=-1) + 1
    groups: List[List[SRBExperiment]] = [[] for _ in range(num_groups)]
    for i, c in best.items():
        groups[c].append(experiments[i])
    return groups


def srb_job_count(num_groups: int, seeds: int = 5,
                  jobs_per_group: int = 3) -> int:
    """Total jobs: (RB link A + RB link B + simultaneous) x seeds x groups."""
    return jobs_per_group * seeds * num_groups


@dataclass(frozen=True)
class SRBOverheadReport:
    """The row of Table I for one chip."""

    chip: str
    num_qubits: int
    one_hop_pairs: int
    groups: int
    seeds: int
    jobs: int


def srb_overhead_report(chip_name: str, coupling: CouplingMap,
                        seeds: int = 5) -> SRBOverheadReport:
    """Compute the Table I row for a device.

    The paper's "1-hop pairs" row counts the device's CNOT pairs (links),
    which is what must be characterized; grouping is over the one-hop
    *pairs of links*.
    """
    groups = group_experiments(coupling)
    return SRBOverheadReport(
        chip=chip_name,
        num_qubits=coupling.num_qubits,
        one_hop_pairs=len(coupling.edges),
        groups=len(groups),
        seeds=seeds,
        jobs=srb_job_count(len(groups), seeds=seeds),
    )

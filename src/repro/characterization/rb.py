"""Randomized benchmarking (RB) on the simulated device.

Standard interleaved-free RB: compose ``m`` uniformly random Cliffords,
append the exact inverse Clifford, measure the ground-state survival
probability, and fit ``A * alpha^m + B``.  The error per Clifford is
``EPC = (d-1)/d * (1 - alpha)``.

Used on 2-qubit links both standalone and inside simultaneous RB
(:mod:`repro.characterization.srb`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import curve_fit

from ..circuits.circuit import QuantumCircuit
from ..circuits.clifford import (
    CliffordGroup,
    clifford_group_1q,
    clifford_group_2q,
)
from ..hardware.devices import Device
from ..sim.executor import Program, run_parallel

__all__ = [
    "RBResult",
    "rb_sequence",
    "rb_survival",
    "fit_rb_decay",
    "run_rb",
    "DEFAULT_RB_LENGTHS",
]

#: Clifford sequence lengths used when none are given.
DEFAULT_RB_LENGTHS: Tuple[int, ...] = (1, 4, 8, 16, 28, 44, 64)


@dataclass
class RBResult:
    """Outcome of an RB experiment on one qubit subset."""

    lengths: Tuple[int, ...]
    survival: Tuple[float, ...]
    alpha: float
    epc: float
    amplitude: float
    baseline: float

    def summary(self) -> str:
        """One-line report."""
        return f"alpha={self.alpha:.5f} EPC={self.epc:.5f}"


def _group_for(num_qubits: int) -> CliffordGroup:
    if num_qubits == 1:
        return clifford_group_1q()
    if num_qubits == 2:
        return clifford_group_2q()
    raise ValueError("RB supported on 1 or 2 qubits")


def rb_sequence(num_qubits: int, length: int,
                rng: np.random.Generator) -> QuantumCircuit:
    """Build one RB circuit: *length* random Cliffords + inversion.

    The net unitary is the identity, so the ideal outcome is all-zeros.
    """
    group = _group_for(num_qubits)
    qc = QuantumCircuit(num_qubits, num_qubits,
                        name=f"rb{num_qubits}q_m{length}")
    total = np.eye(2 ** num_qubits, dtype=complex)
    qubits = list(range(num_qubits))
    for _ in range(length):
        elem = group.sample(rng)
        elem.apply_to(qc, qubits)
        total = elem.matrix @ total
    group.inverse_of(total).apply_to(qc, qubits)
    qc.measure_all()
    return qc


def rb_survival(result_probs: Dict[str, float]) -> float:
    """Ground-state survival probability from an output distribution."""
    if not result_probs:
        return 0.0
    width = len(next(iter(result_probs)))
    return result_probs.get("0" * width, 0.0)


def _decay(m: np.ndarray, a: float, alpha: float, b: float) -> np.ndarray:
    return a * np.power(alpha, m) + b


def fit_rb_decay(lengths: Sequence[int],
                 survival: Sequence[float],
                 num_qubits: int) -> Tuple[float, float, float, float]:
    """Fit the RB decay; returns ``(alpha, epc, amplitude, baseline)``."""
    d = 2 ** num_qubits
    m = np.asarray(lengths, dtype=float)
    y = np.asarray(survival, dtype=float)
    baseline_guess = 1.0 / d
    amp_guess = max(y[0] - baseline_guess, 0.1)
    try:
        import warnings

        from scipy.optimize import OptimizeWarning

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", OptimizeWarning)
            popt, _ = curve_fit(
                _decay, m, y,
                p0=(amp_guess, 0.98, baseline_guess),
                bounds=([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]),
                maxfev=10000,
            )
        amp, alpha, base = (float(v) for v in popt)
    except RuntimeError:
        # Fall back to a log-linear fit on the baseline-subtracted data.
        shifted = np.clip(y - baseline_guess, 1e-6, None)
        slope, intercept = np.polyfit(m, np.log(shifted), 1)
        alpha = float(min(max(math.exp(slope), 0.0), 1.0))
        amp = float(math.exp(intercept))
        base = baseline_guess
    epc = (d - 1) / d * (1.0 - alpha)
    return alpha, epc, amp, base


def run_rb(
    device: Device,
    qubits: Tuple[int, ...],
    lengths: Sequence[int] = DEFAULT_RB_LENGTHS,
    seeds: int = 3,
    shots: int = 1024,
    rng_seed: int = 1234,
    companions: Sequence[Tuple[Tuple[int, ...], None]] = (),
) -> RBResult:
    """Run RB on *qubits* of *device* and fit the decay.

    *companions* lists additional qubit subsets that are driven with their
    own random Clifford sequences at the same time — this is the
    simultaneous-RB mechanism (see :mod:`repro.characterization.srb`).
    Each companion entry is ``(qubit_tuple, None)``.
    """
    rng = np.random.default_rng(rng_seed)
    survival_by_len: List[float] = []
    for length in lengths:
        values = []
        for _ in range(seeds):
            programs = [Program(rb_sequence(len(qubits), length, rng),
                                qubits)]
            for comp_qubits, _ in companions:
                programs.append(
                    Program(rb_sequence(len(comp_qubits), length, rng),
                            comp_qubits))
            results = run_parallel(
                programs, device, shots=shots,
                seed=int(rng.integers(1 << 31)),
            )
            values.append(rb_survival(results[0].probabilities))
        survival_by_len.append(float(np.mean(values)))
    alpha, epc, amp, base = fit_rb_decay(lengths, survival_by_len,
                                         len(qubits))
    return RBResult(tuple(lengths), tuple(survival_by_len),
                    alpha, epc, amp, base)

"""Device characterization: randomized benchmarking, simultaneous RB
crosstalk discovery, and SRB overhead accounting (paper Table I / Fig. 2).
"""

from .rb import (
    DEFAULT_RB_LENGTHS,
    RBResult,
    fit_rb_decay,
    rb_sequence,
    rb_survival,
    run_rb,
)
from .scheduling import (
    SRBExperiment,
    SRBOverheadReport,
    group_experiments,
    srb_experiments,
    srb_job_count,
    srb_overhead_report,
)
from .tomography import (
    ProcessTomographyResult,
    TomographyResult,
    process_tomography_1q,
    project_to_physical,
    state_tomography,
    tomography_circuits,
)
from .srb import (
    CrosstalkCharacterization,
    SRBPairResult,
    characterize_crosstalk,
    run_srb_experiment,
)

__all__ = [
    "DEFAULT_RB_LENGTHS",
    "CrosstalkCharacterization",
    "RBResult",
    "SRBExperiment",
    "SRBOverheadReport",
    "SRBPairResult",
    "ProcessTomographyResult",
    "TomographyResult",
    "characterize_crosstalk",
    "fit_rb_decay",
    "group_experiments",
    "rb_sequence",
    "rb_survival",
    "run_rb",
    "run_srb_experiment",
    "srb_experiments",
    "srb_job_count",
    "process_tomography_1q",
    "project_to_physical",
    "srb_overhead_report",
    "state_tomography",
    "tomography_circuits",
]

"""Quantum state tomography (1–3 qubits).

Reconstructs the density matrix of a prepared state from Pauli-basis
measurements: for every non-identity Pauli string the expectation value is
estimated from a rotated Z-basis measurement, and the state is assembled
as ``rho = 2^-n * sum_P <P> P``.  Linear-inversion estimates can be
slightly unphysical under sampling noise, so a projection onto the PSD
cone (Smolin-Gambetta-Smith) is applied.

Used in tests and benches to validate that the simulator's noise channels
produce the states the calibration data predicts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from ..sim.executor import Program, run_parallel
from ..vqe.pauli import PauliString

__all__ = ["TomographyResult", "state_tomography",
           "tomography_circuits", "project_to_physical",
           "ProcessTomographyResult", "process_tomography_1q"]


@dataclass
class TomographyResult:
    """Reconstructed state plus the raw expectation data."""

    density_matrix: np.ndarray
    expectations: Dict[str, float]

    @property
    def num_qubits(self) -> int:
        """Number of reconstructed qubits."""
        return int(np.log2(self.density_matrix.shape[0]))


def _basis_rotation(qc: QuantumCircuit, q: int, basis: str) -> None:
    if basis == "X":
        qc.h(q)
    elif basis == "Y":
        qc.sdg(q)
        qc.h(q)


def tomography_circuits(preparation: QuantumCircuit
                        ) -> List[Tuple[str, QuantumCircuit]]:
    """One measured circuit per {X, Y, Z}^n basis setting."""
    n = preparation.num_qubits
    out: List[Tuple[str, QuantumCircuit]] = []
    for setting in itertools.product("XYZ", repeat=n):
        qc = preparation.without_measurements().copy(
            name=f"tomo_{''.join(setting)}")
        qc.num_clbits = max(qc.num_clbits, n)
        for q, basis in enumerate(setting):
            _basis_rotation(qc, q, basis)
        for q in range(n):
            qc.measure(q, q)
        out.append(("".join(setting), qc))
    return out


def _expectation_from_probs(probs: Dict[str, float],
                            support: Tuple[int, ...]) -> float:
    total = 0.0
    for key, p in probs.items():
        parity = sum(int(key[q]) for q in support) % 2
        total += p * (1.0 if parity == 0 else -1.0)
    return total


def project_to_physical(rho: np.ndarray) -> np.ndarray:
    """Project a Hermitian matrix onto the closest physical state.

    Eigenvalue truncation with redistribution (Smolin et al. 2012):
    negative eigenvalues are zeroed and their mass subtracted from the
    remaining ones, preserving trace one.
    """
    rho = 0.5 * (rho + rho.conj().T)
    eigvals, eigvecs = np.linalg.eigh(rho)
    d = rho.shape[0]
    # Walk from the smallest eigenvalue upward, zeroing negatives and
    # spreading the deficit over the rest.
    vals = list(eigvals)
    deficit = 0.0
    for i in range(d):
        adjusted = vals[i] + deficit / (d - i)
        if adjusted < 0:
            deficit += vals[i]
            vals[i] = 0.0
        else:
            for j in range(i, d):
                vals[j] += deficit / (d - i)
            deficit = 0.0
            break
    out = eigvecs @ np.diag(vals) @ eigvecs.conj().T
    trace = np.trace(out).real
    return out / trace if trace > 0 else np.eye(d) / d


@dataclass
class ProcessTomographyResult:
    """A reconstructed single-qubit channel as a Pauli transfer matrix.

    ``ptm[i, j] = 0.5 * Tr(P_i E(P_j))`` over the basis (I, X, Y, Z):
    the identity channel gives the 4x4 identity; a depolarizing channel
    with parameter p scales the X/Y/Z diagonal by (1 - p).
    """

    ptm: np.ndarray

    def average_gate_fidelity(
            self, reference: Optional[np.ndarray] = None) -> float:
        """Average gate fidelity to a reference channel's PTM.

        ``F_avg = (Tr(R_ref^T R) / d + 1) / (d + 1)`` with d = 2; the
        default reference is the identity channel, so for a *gate* pass
        the ideal gate's PTM (e.g. from a noiseless
        :func:`process_tomography_1q`).
        """
        if reference is None:
            reference = np.eye(4)
        overlap = float(np.trace(reference.T @ self.ptm).real)
        return (overlap / 2.0 + 1.0) / 3.0

    def is_unital(self, tol: float = 1e-6) -> bool:
        """True when the channel preserves the maximally mixed state."""
        return bool(np.allclose(self.ptm[1:, 0], 0.0, atol=tol))


def process_tomography_1q(
    gate_name: str,
    device: Optional[Device] = None,
    qubit: int = 0,
    shots: int = 0,
    seed: Optional[int] = None,
    params: Tuple[float, ...] = (),
) -> ProcessTomographyResult:
    """Pauli-transfer-matrix tomography of one single-qubit gate.

    Prepares the six Pauli eigenstates, applies the gate, runs state
    tomography on the output, and solves for the PTM columns.  With a
    device, the reconstruction contains the device's gate and readout
    noise (readout is mitigated so the PTM isolates the *gate* channel).
    """
    from ..circuits.gates import gate as make_gate

    # Input states: eigenstates of +-X, +-Y, +-Z with their Bloch vectors.
    preparations = {
        "0": ([], np.array([1.0, 0.0, 0.0, 1.0])),
        "1": ([("x", ())], np.array([1.0, 0.0, 0.0, -1.0])),
        "+": ([("h", ())], np.array([1.0, 1.0, 0.0, 0.0])),
        "-": ([("x", ()), ("h", ())], np.array([1.0, -1.0, 0.0, 0.0])),
        "+i": ([("h", ()), ("s", ())], np.array([1.0, 0.0, 1.0, 0.0])),
        "-i": ([("h", ()), ("sdg", ())], np.array([1.0, 0.0, -1.0, 0.0])),
    }

    in_vectors = []
    out_vectors = []
    for steps, bloch_in in preparations.values():
        prep = QuantumCircuit(1, name="ptm_prep")
        for name, gate_params in steps:
            prep.append(make_gate(name, *gate_params), (0,))
        prep.append(make_gate(gate_name, *params), (0,))
        state = state_tomography(
            prep, device=device,
            partition=(qubit,) if device is not None else None,
            shots=shots, seed=seed,
            mitigate_readout=device is not None)
        out_vectors.append(np.array([
            1.0,
            state.expectations["X"],
            state.expectations["Y"],
            state.expectations["Z"],
        ]))
        in_vectors.append(bloch_in)

    # Solve PTM @ in = out in least squares over the six preparations.
    in_mat = np.stack(in_vectors, axis=1)     # 4 x 6
    out_mat = np.stack(out_vectors, axis=1)   # 4 x 6
    ptm, *_ = np.linalg.lstsq(in_mat.T, out_mat.T, rcond=None)
    return ProcessTomographyResult(ptm.T)


def state_tomography(
    preparation: QuantumCircuit,
    device: Optional[Device] = None,
    partition: Optional[Sequence[int]] = None,
    shots: int = 0,
    seed: Optional[int] = None,
    noisy: bool = True,
    mitigate_readout: bool = False,
) -> TomographyResult:
    """Reconstruct the state *preparation* leaves on the device.

    With ``device=None`` the circuits run noiselessly (useful for
    validating the reconstruction itself).  ``shots=0`` uses exact
    measurement probabilities.  Without *mitigate_readout* the
    reconstruction includes the measurement channel (readout confusion);
    with it, a tensored mitigator is calibrated on the partition and the
    reconstruction approximates the *pre-measurement* state.
    """
    n = preparation.num_qubits
    if n > 3:
        raise ValueError("full tomography beyond 3 qubits is untracked "
                         f"({3 ** n} settings); restrict the subsystem")
    circuits = tomography_circuits(preparation)

    mitigator = None
    if mitigate_readout and device is not None:
        from ..mitigation.measurement import calibrate_readout

        part = tuple(partition) if partition else tuple(range(n))
        mitigator = calibrate_readout(device, part, shots=shots or 8192,
                                      seed=seed)

    setting_probs: Dict[str, Dict[str, float]] = {}
    for setting, qc in circuits:
        if device is None:
            from ..sim.statevector import ideal_probabilities

            probs = ideal_probabilities(qc)
        else:
            part = tuple(partition) if partition else tuple(range(n))
            res = run_parallel([Program(qc, part)], device,
                               shots=shots, seed=seed, noisy=noisy)[0]
            probs = res.probabilities
        if mitigator is not None:
            probs = mitigator.apply(probs)
        setting_probs[setting] = probs

    expectations: Dict[str, float] = {"I" * n: 1.0}
    for labels in itertools.product("IXYZ", repeat=n):
        label = "".join(labels)
        if label == "I" * n:
            continue
        # Measure under any setting that matches on the support.
        setting = "".join(c if c != "I" else "Z" for c in label)
        support = PauliString(label).support()
        expectations[label] = _expectation_from_probs(
            setting_probs[setting], support)

    dim = 2 ** n
    rho = np.zeros((dim, dim), dtype=complex)
    for label, value in expectations.items():
        rho += value * PauliString(label).matrix()
    rho /= dim
    return TomographyResult(project_to_physical(rho), expectations)

"""Simultaneous Randomized Benchmarking — crosstalk characterization.

For a one-hop link pair ``(g_i, g_j)``:

1. run RB on ``g_i`` alone -> ``EPC(g_i)``;
2. run RB on ``g_j`` alone -> ``EPC(g_j)``;
3. run RB on both simultaneously -> ``EPC(g_i | g_j)``, ``EPC(g_j | g_i)``.

The crosstalk ratio ``r = EPC(g_i | g_j) / EPC(g_i)`` quantifies how much
driving ``g_j`` degrades ``g_i``; pairs with ``r`` above a threshold are
the red arrows in the paper's Fig. 2.  QuMC consumes this map; QuCP's
whole point is *not needing it*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..hardware.devices import Device
from ..hardware.topology import Edge
from ..sim.executor import Program, run_parallel
from .rb import DEFAULT_RB_LENGTHS, fit_rb_decay, rb_sequence, rb_survival
from .scheduling import SRBExperiment, srb_experiments

__all__ = [
    "SRBPairResult",
    "CrosstalkCharacterization",
    "run_srb_experiment",
    "characterize_crosstalk",
]


@dataclass(frozen=True)
class SRBPairResult:
    """EPCs for one one-hop link pair, alone and simultaneous."""

    link_a: Edge
    link_b: Edge
    epc_a: float
    epc_b: float
    epc_a_simultaneous: float
    epc_b_simultaneous: float

    @property
    def ratio_a(self) -> float:
        """Crosstalk ratio on link A (>= ~2 is significant)."""
        return self.epc_a_simultaneous / max(self.epc_a, 1e-9)

    @property
    def ratio_b(self) -> float:
        """Crosstalk ratio on link B."""
        return self.epc_b_simultaneous / max(self.epc_b, 1e-9)

    @property
    def max_ratio(self) -> float:
        """The larger of the two directional ratios."""
        return max(self.ratio_a, self.ratio_b)


@dataclass
class CrosstalkCharacterization:
    """The measured crosstalk map of a device (the paper's Fig. 2)."""

    device_name: str
    results: Tuple[SRBPairResult, ...]
    threshold: float = 2.0

    def significant_pairs(self) -> Tuple[Tuple[Edge, Edge], ...]:
        """Pairs whose measured ratio exceeds the threshold."""
        return tuple(
            (r.link_a, r.link_b) for r in self.results
            if r.max_ratio >= self.threshold
        )

    def ratio_map(self) -> Dict[FrozenSet[Edge], float]:
        """Unordered-pair -> measured max ratio (consumed by QuMC)."""
        return {
            frozenset((r.link_a, r.link_b)): r.max_ratio
            for r in self.results
        }

    def compare_to_ground_truth(self, device: Device
                                ) -> Dict[str, float]:
        """Precision/recall of the discovered map vs the hidden truth."""
        truth = {
            frozenset(p) for p in device.crosstalk.affected_pairs(
                threshold=self.threshold)
        }
        found = {frozenset(p) for p in self.significant_pairs()}
        tp = len(truth & found)
        precision = tp / len(found) if found else 1.0
        recall = tp / len(truth) if truth else 1.0
        return {"precision": precision, "recall": recall,
                "true_pairs": float(len(truth)),
                "found_pairs": float(len(found))}


def _rb_epc(
    device: Device,
    target: Edge,
    companion: Optional[Edge],
    lengths: Sequence[int],
    seeds: int,
    shots: int,
    rng: np.random.Generator,
) -> float:
    """EPC of *target*, optionally with *companion* driven simultaneously."""
    survival: List[float] = []
    for length in lengths:
        values = []
        for _ in range(seeds):
            programs = [Program(rb_sequence(2, length, rng), target)]
            if companion is not None:
                programs.append(
                    Program(rb_sequence(2, length, rng), companion))
            results = run_parallel(programs, device, shots=shots,
                                   seed=int(rng.integers(1 << 31)))
            values.append(rb_survival(results[0].probabilities))
        survival.append(float(np.mean(values)))
    _, epc, _, _ = fit_rb_decay(lengths, survival, 2)
    return epc


def run_srb_experiment(
    device: Device,
    experiment: SRBExperiment,
    lengths: Sequence[int] = DEFAULT_RB_LENGTHS,
    seeds: int = 3,
    shots: int = 1024,
    rng_seed: int = 99,
) -> SRBPairResult:
    """Run the 3-job SRB protocol on one one-hop link pair."""
    rng = np.random.default_rng(rng_seed)
    ea = _rb_epc(device, experiment.link_a, None, lengths, seeds, shots, rng)
    eb = _rb_epc(device, experiment.link_b, None, lengths, seeds, shots, rng)
    eas = _rb_epc(device, experiment.link_a, experiment.link_b,
                  lengths, seeds, shots, rng)
    ebs = _rb_epc(device, experiment.link_b, experiment.link_a,
                  lengths, seeds, shots, rng)
    return SRBPairResult(experiment.link_a, experiment.link_b,
                         ea, eb, eas, ebs)


def characterize_crosstalk(
    device: Device,
    experiments: Sequence[SRBExperiment] = (),
    lengths: Sequence[int] = DEFAULT_RB_LENGTHS,
    seeds: int = 3,
    shots: int = 1024,
    threshold: float = 2.0,
    rng_seed: int = 99,
) -> CrosstalkCharacterization:
    """Characterize the whole device (all one-hop pairs by default).

    This is the expensive step the paper's Table I quantifies — and the
    overhead QuCP eliminates.
    """
    if not experiments:
        experiments = srb_experiments(device.coupling)
    results = []
    for k, experiment in enumerate(experiments):
        results.append(
            run_srb_experiment(device, experiment, lengths=lengths,
                               seeds=seeds, shots=shots,
                               rng_seed=rng_seed + 17 * k))
    return CrosstalkCharacterization(device.name, tuple(results),
                                     threshold=threshold)

"""Backends: per-target configuration + the ``run`` entry point.

A backend binds one execution target (a device or a fleet) to a
:class:`BackendConfiguration` and turns submissions into asynchronous
:class:`~repro.service.Job` handles.  Two concrete kinds:

- :class:`SimulatorBackend` — one device, direct parallel execution:
  allocate crosstalk-safe partitions, transpile, simulate, score.  The
  engine underneath is :func:`repro.core.execute_allocation`.
- :class:`CloudBackend` — the paper's cloud service: submissions flow
  through the discrete-event :class:`~repro.core.CloudScheduler`
  (batching windows, fidelity-threshold admission, fleet dispatch) and
  each dispatched hardware job is then executed via
  :func:`repro.core.run_batch`.  ``execute=False`` stops after
  scheduling, for queue-behaviour studies that don't need simulated
  counts.

Both publish compiles into the provider's shared
:class:`~repro.core.ExecutionCache` through its
:class:`~repro.core.CompileService`, so repeated programs — across
jobs, backends, and sessions — transpile once.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..circuits.circuit import QuantumCircuit
from ..circuits.controlflow import has_control_flow
from ..core.allocators import (
    AllocationResult,
    Allocator,
    allocation_engine,
    resolve_allocator,
)
from ..core.executor import (
    BatchJob,
    ExecutionOutcome,
    TranspilerFn,
    execute_allocation,
    run_batch,
)
from ..core.faults import FaultPlan
from ..core.health import DeviceFailurePlan, HealthPolicy
from ..core.scheduler import (
    CloudScheduler,
    ScheduleOutcome,
    SubmittedProgram,
    json_safe_num,
)
from ..hardware.devices import Device
from ..hardware.fleet import DeviceFleet
from ..sim.readout import SeedLike
from .job import Job, JobError, JobSet
from .result import Result, RunMetadata, build_program_results

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .provider import QuantumProvider

__all__ = ["BackendConfiguration", "BaseBackend", "SimulatorBackend",
           "CloudBackend"]


def _count_dynamic(circuits) -> int:
    """How many circuits stay dynamic after static expansion.

    These are the programs the sim layer runs on the per-shot
    feed-forward path; resolvable control flow (bounded loops,
    compile-time branches) unrolls away and is *not* counted.
    """
    from ..transpiler.controlflow import is_statically_resolvable

    return sum(1 for c in circuits
               if has_control_flow(c) and not is_statically_resolvable(c))


@dataclass(frozen=True)
class BackendConfiguration:
    """Per-target execution defaults; any field can be overridden per
    ``run`` call.

    The allocator/scheduler fields mirror :class:`~repro.core.
    CloudScheduler`'s constructor (same semantics, same defaults), the
    execution fields mirror :func:`~repro.core.execute_allocation` —
    the facade adds no knobs of its own, it only carries them.
    """

    #: Allocation strategy: registry name, instance, or ``None`` (QuCP).
    allocator: Union[str, Allocator, None] = None
    #: QuCP's sigma; only with the default allocator (like the engine).
    sigma: Optional[float] = None
    #: Max relative EFS degradation admitted vs. solo-best placement.
    fidelity_threshold: float = 0.3
    #: How long a batch head waits for co-tenants before dispatch.
    batch_window_ns: float = 0.0
    #: Fixed per-hardware-job overhead the batching amortizes.
    job_overhead_ns: float = 1e6
    #: Programs per hardware job (``None`` unlimited; 1 = serial).
    max_batch_size: Optional[int] = None
    #: Challenger allocators hedge-raced against the primary at every
    #: scheduler dispatch (``"best"`` mode: each packs the same batch,
    #: the pack admitting the most programs at the best mean EFS wins,
    #: ties resolve to the primary).  ``None`` disables racing.
    race_allocators: Optional[Tuple[Union[str, Allocator], ...]] = None
    #: Default shot count for ``run`` calls that don't pass one.
    shots: int = 8192
    #: Instruction scheduling mode for execution ("alap"/"asap").
    scheduling: str = "alap"
    #: Whether the simulation applies the crosstalk model.
    include_crosstalk: bool = True
    #: Deterministic device-outage plan injected into the scheduler's
    #: event stream (chaos testing; ``None`` = a healthy fleet).
    fault_plan: Optional[FaultPlan] = None
    #: Deterministic device-*misbehavior* plan: batches dispatched on a
    #: covered device fail at completion (the device stays schedulable,
    #: unlike an outage) — the signal circuit breakers exist to infer.
    failure_plan: Optional[DeviceFailurePlan] = None
    #: Per-device circuit-breaker policy.  ``None`` with a
    #: ``failure_plan`` enables the default policy; ``None`` without
    #: one disables breakers entirely (legacy behaviour).
    health_policy: Optional[HealthPolicy] = None
    #: Nanoseconds of queue wait per +1 effective priority (anti-
    #: starvation aging for multi-tenant priority classes).  ``None``
    #: keeps the legacy strict-priority order bit-identical.
    priority_aging_ns: Optional[float] = None

    def replace(self, **overrides) -> "BackendConfiguration":
        """A copy with *overrides* applied (``None`` values ignored)."""
        changed = {k: v for k, v in overrides.items() if v is not None}
        return dataclasses.replace(self, **changed) if changed else self


class BaseBackend(ABC):
    """One execution target owned by a provider."""

    def __init__(self, name: str, provider: "QuantumProvider",
                 configuration: Optional[BackendConfiguration] = None
                 ) -> None:
        self._name = name
        self._provider = provider
        self._configuration = configuration or BackendConfiguration()

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Backend name (unique within its provider)."""
        return self._name

    @property
    def provider(self) -> "QuantumProvider":
        """The owning provider (shared caches, job pool)."""
        return self._provider

    @property
    def configuration(self) -> BackendConfiguration:
        """This backend's execution defaults."""
        return self._configuration

    @property
    @abstractmethod
    def devices(self) -> Tuple[Device, ...]:
        """The physical targets behind this backend."""

    @abstractmethod
    def run(self, *args, **kwargs) -> Job:
        """Submit work; returns an asynchronous :class:`Job` handle."""

    # ------------------------------------------------------------------
    def warm(self) -> None:
        """Precompute the device-invariant compilation tables.

        Builds each device's shared :class:`~repro.transpiler.context.
        DeviceContext` (reliability graph, all-pairs distance tables,
        readout vector) and registers its allocation engine, so a
        session's first run pays no cold-start cost.  Idempotent.
        """
        for device in self.devices:
            engine = allocation_engine(device)
            context = engine.context
            context.reliability_distance
            context.reliability_matrix
            context.readout_vector

    def _resolve_allocator(self, allocator, sigma,
                           require_incremental: bool = False) -> Allocator:
        """Per-run allocator override falling back to the configuration."""
        cfg = self._configuration
        if allocator is None:
            allocator, sigma = cfg.allocator, (
                cfg.sigma if sigma is None else sigma)
        return resolve_allocator(allocator, sigma,
                                 require_incremental=require_incremental)

    #: Shared-cache counters snapshotted around each run; their deltas
    #: land in :class:`~repro.service.RunMetadata`.
    _METADATA_COUNTERS = ("transpile_hits", "transpile_misses",
                          "evictions", "promotions")
    #: Execution-service counters snapshotted the same way (prefixed so
    #: they can't collide with the cache's names in one delta dict).
    _EXECUTION_COUNTERS = ("batches", "chunks", "fallbacks")

    def _metadata_counters(self) -> Dict[str, int]:
        stats = self._provider.cache.stats
        counters = {k: stats[k] for k in self._METADATA_COUNTERS}
        exec_stats = self._provider.execution_service.stats
        for key in self._EXECUTION_COUNTERS:
            counters[f"execution_{key}"] = exec_stats[key]
        return counters

    @staticmethod
    def _counter_deltas(before: Dict[str, int],
                        after: Dict[str, int]) -> Dict[str, int]:
        return {k: after[k] - before[k] for k in before}

    def __repr__(self) -> str:
        targets = ", ".join(d.name for d in self.devices)
        return f"<{type(self).__name__} {self._name!r} on [{targets}]>"


def _as_circuits(circuits: Union[QuantumCircuit, Sequence[QuantumCircuit]]
                 ) -> List[QuantumCircuit]:
    if isinstance(circuits, QuantumCircuit):
        return [circuits]
    return list(circuits)


class SimulatorBackend(BaseBackend):
    """Direct parallel execution on one device (no queueing model)."""

    def __init__(self, name: str, provider: "QuantumProvider",
                 device: Device,
                 configuration: Optional[BackendConfiguration] = None
                 ) -> None:
        super().__init__(name, provider, configuration)
        self._device = device

    @property
    def device(self) -> Device:
        """The single simulated device."""
        return self._device

    @property
    def devices(self) -> Tuple[Device, ...]:
        return (self._device,)

    # ------------------------------------------------------------------
    def run(
        self,
        circuits: Union[QuantumCircuit, Sequence[QuantumCircuit],
                        AllocationResult],
        shots: Optional[int] = None,
        seed: SeedLike = None,
        allocator: Union[str, Allocator, None] = None,
        sigma: Optional[float] = None,
        transpiler_fn: Optional[TranspilerFn] = None,
        scheduling: Optional[str] = None,
        include_crosstalk: Optional[bool] = None,
    ) -> Job:
        """Run circuits simultaneously as one hardware job.

        *circuits* is one circuit, a sequence (allocated with this
        backend's allocator), or a pre-built
        :class:`~repro.core.AllocationResult` (used as-is).  Returns
        immediately with a :class:`Job`; ``job.result()`` blocks for
        the typed :class:`~repro.service.Result`.
        """
        cfg = self._configuration.replace(
            shots=shots, scheduling=scheduling,
            include_crosstalk=include_crosstalk)
        if isinstance(circuits, AllocationResult):
            allocation: Optional[AllocationResult] = circuits
            to_allocate: List[QuantumCircuit] = []
            if allocation.device is not self._device:
                raise ValueError(
                    f"allocation was built for device "
                    f"{allocation.device.name!r} (a different instance "
                    f"than this backend's {self._device.name!r}); run it "
                    "on a backend for that device, or re-allocate")
            if allocator is not None or sigma is not None:
                raise ValueError(
                    "allocator/sigma have no effect on a pre-built "
                    "AllocationResult — its placements are final; pass "
                    "circuits instead to re-allocate")
        else:
            allocation = None
            to_allocate = _as_circuits(circuits)
        chosen = (None if allocation is not None
                  else self._resolve_allocator(allocator, sigma))

        def execute(job_id: str) -> Result:
            alloc = (allocation if allocation is not None
                     else chosen.allocate(to_allocate, self._device))
            before = self._metadata_counters()
            outcomes = execute_allocation(
                alloc,
                shots=cfg.shots,
                seed=seed,
                scheduling=cfg.scheduling,
                transpiler_fn=transpiler_fn,
                include_crosstalk=cfg.include_crosstalk,
                compile_service=self._provider.compile_service,
                execution_service=self._provider.execution_service,
            )
            deltas = self._counter_deltas(before,
                                          self._metadata_counters())
            return self._build_result(job_id, alloc, outcomes, cfg.shots,
                                      deltas)

        # Replay spec for the durable job store: enough pure data to
        # re-run this submission after a crash.  A live transpiler hook
        # is not replayable (it cannot be persisted faithfully).
        spec = None
        if transpiler_fn is None:
            spec = {
                "kind": "simulator",
                "backend_name": self._name,
                "device": self._device,
                "configuration": cfg,
                "payload": (allocation if allocation is not None
                            else to_allocate),
                "allocator": chosen,
                "seed": seed,
            }
        return self._provider._submit_job(self, execute, spec=spec)

    def run_sweep(
        self,
        batches: Sequence[Union[Sequence[QuantumCircuit],
                                AllocationResult, BatchJob]],
        shots: Optional[int] = None,
        seed: SeedLike = None,
        allocator: Union[str, Allocator, None] = None,
        sigma: Optional[float] = None,
    ) -> JobSet:
        """Submit a sweep — one :class:`Job` per batch, grouped.

        Mirrors :func:`repro.core.run_batch`'s seeding contract: each
        batch without an explicit seed gets an independent child stream
        spawned from *seed*, and all batches share the provider's
        caches.
        """
        from ..sim.executor import spawn_seeds

        chosen = self._resolve_allocator(allocator, sigma)
        children = spawn_seeds(seed, len(batches))
        jobs = JobSet()
        for batch, child in zip(batches, children):
            if isinstance(batch, BatchJob):
                job = self.run(batch.allocation,
                               shots=batch.shots,
                               seed=(batch.seed if batch.seed is not None
                                     else child),
                               transpiler_fn=batch.transpiler_fn,
                               scheduling=batch.scheduling,
                               include_crosstalk=batch.include_crosstalk)
            elif isinstance(batch, AllocationResult):
                job = self.run(batch, shots=shots, seed=child)
            else:
                job = self.run(list(batch), shots=shots, seed=child,
                               allocator=chosen)
            jobs.add(job)
        return jobs

    # ------------------------------------------------------------------
    def _build_result(self, job_id: str, allocation: AllocationResult,
                      outcomes: List[ExecutionOutcome], shots: int,
                      deltas: Dict[str, int]) -> Result:
        metadata = RunMetadata(
            job_id=job_id,
            backend_name=self._name,
            method=allocation.method,
            shots=shots,
            num_programs=len(allocation.allocations),
            num_hardware_jobs=1,
            throughput=allocation.throughput(),
            transpile_hits=deltas["transpile_hits"],
            transpile_misses=deltas["transpile_misses"],
            cache_evictions=deltas["evictions"],
            cache_promotions=deltas["promotions"],
            execution_batches=deltas["execution_batches"],
            execution_chunks=deltas["execution_chunks"],
            execution_fallbacks=deltas["execution_fallbacks"],
            dynamic_programs=_count_dynamic(
                a.circuit for a in allocation.allocations),
        )
        programs = build_program_results([outcomes], [self._device.name])
        return Result(metadata=metadata, programs=programs,
                      outcomes=[outcomes])


class CloudBackend(BaseBackend):
    """The multi-tenant cloud service over a device fleet.

    Submissions go through the discrete-event scheduler exactly as a
    direct :meth:`CloudScheduler.schedule` call would — same admission,
    same dispatch, same timings — and each dispatched hardware job is
    then executed through :func:`~repro.core.run_batch` in dispatch
    order with child RNG streams spawned from *seed*.  The equivalence
    is bit-exact and test-enforced
    (``tests/test_service_equivalence.py``).
    """

    def __init__(self, name: str, provider: "QuantumProvider",
                 fleet: DeviceFleet,
                 configuration: Optional[BackendConfiguration] = None
                 ) -> None:
        super().__init__(name, provider, configuration)
        self._fleet = fleet

    @property
    def fleet(self) -> DeviceFleet:
        """The device fleet behind this backend."""
        return self._fleet

    @property
    def devices(self) -> Tuple[Device, ...]:
        return tuple(self._fleet)

    # ------------------------------------------------------------------
    def scheduler(self, allocator: Union[str, Allocator, None] = None,
                  sigma: Optional[float] = None,
                  with_compile_service: bool = False) -> CloudScheduler:
        """A :class:`CloudScheduler` configured like this backend."""
        cfg = self._configuration
        if not isinstance(allocator, Allocator):
            allocator = self._resolve_allocator(allocator, sigma)
        return CloudScheduler(
            self._fleet,
            allocator=allocator,
            fidelity_threshold=cfg.fidelity_threshold,
            batch_window_ns=cfg.batch_window_ns,
            job_overhead_ns=cfg.job_overhead_ns,
            max_batch_size=cfg.max_batch_size,
            compile_service=(self._provider.compile_service
                             if with_compile_service else None),
            race_allocators=cfg.race_allocators,
            fault_plan=cfg.fault_plan,
            failure_plan=cfg.failure_plan,
            health_policy=cfg.health_policy,
            priority_aging_ns=cfg.priority_aging_ns,
        )

    def run(
        self,
        submissions: Union[QuantumCircuit, Sequence[QuantumCircuit],
                           Sequence[SubmittedProgram]],
        shots: Optional[int] = None,
        seed: SeedLike = None,
        allocator: Union[str, Allocator, None] = None,
        sigma: Optional[float] = None,
        execute: bool = True,
        transpiler_fn: Optional[TranspilerFn] = None,
    ) -> Job:
        """Submit a stream of programs to the cloud service.

        *submissions* may be :class:`~repro.core.SubmittedProgram`
        objects (arrival times, users, priorities) or bare circuits
        (wrapped as simultaneous arrivals at t=0).  With
        ``execute=False`` the job stops after the discrete-event
        schedule — ``result().schedule`` carries the queue outcome and
        no counts are simulated (the mode queue studies and the
        scheduler benchmark run in).
        """
        cfg = self._configuration.replace(shots=shots)
        subs = self._as_submissions(submissions)
        # Resolve the allocator now, not on the job thread: a typo'd
        # registry name (and the scheduler's sigma/incremental
        # validation) should fail at submit time, like SimulatorBackend.
        chosen = self._resolve_allocator(allocator, sigma,
                                         require_incremental=True)
        # Dispatch-time compile prefetch only helps when the execution
        # pass will hit the same cache entries, i.e. when it compiles
        # with the default hook.
        prefetch = execute and transpiler_fn is None

        def serve(job_id: str) -> Result:
            scheduler = self.scheduler(chosen,
                                       with_compile_service=prefetch)
            before = self._metadata_counters()
            outcome = scheduler.schedule(subs)
            if outcome.rejected and not outcome.completion_ns:
                # Nothing survived admission: a deterministic, typed
                # failure (partial rejections complete normally and
                # list the casualties in the metadata instead).
                raise JobError(
                    f"all {len(subs)} submissions were rejected",
                    job_id=job_id,
                    reasons=outcome.rejection_reasons)
            outcomes: List[List[ExecutionOutcome]] = []
            if execute:
                batch_jobs = [
                    BatchJob(job.allocation,
                             shots=cfg.shots,
                             scheduling=cfg.scheduling,
                             include_crosstalk=cfg.include_crosstalk,
                             transpiler_fn=transpiler_fn)
                    for job in outcome.jobs
                ]
                if batch_jobs:
                    outcomes = run_batch(
                        batch_jobs, seed=seed,
                        compile_service=(
                            self._provider.compile_service if prefetch
                            else None),
                        cache=(None if prefetch
                               else self._provider.cache),
                        execution_service=(
                            self._provider.execution_service))
            deltas = self._counter_deltas(before,
                                          self._metadata_counters())
            return self._build_result(job_id, subs, outcome, outcomes,
                                      cfg.shots, deltas)

        spec = None
        if transpiler_fn is None:
            spec = {
                "kind": "cloud",
                "backend_name": self._name,
                "fleet": self._fleet,
                "configuration": cfg,
                "submissions": subs,
                "allocator": chosen,
                "seed": seed,
                "execute": execute,
            }
        return self._provider._submit_job(self, serve, spec=spec)

    # ------------------------------------------------------------------
    @staticmethod
    def _as_submissions(
        submissions: Union[QuantumCircuit, Sequence[QuantumCircuit],
                           Sequence[SubmittedProgram]],
    ) -> List[SubmittedProgram]:
        if isinstance(submissions, QuantumCircuit):
            return [SubmittedProgram(submissions)]
        subs: List[SubmittedProgram] = []
        for item in submissions:
            if isinstance(item, SubmittedProgram):
                subs.append(item)
            elif isinstance(item, QuantumCircuit):
                subs.append(SubmittedProgram(item))
            else:
                raise TypeError(
                    f"expected QuantumCircuit or SubmittedProgram, got "
                    f"{type(item).__name__}")
        return subs

    def _build_result(self, job_id: str, subs: List[SubmittedProgram],
                      outcome: ScheduleOutcome,
                      outcomes: List[List[ExecutionOutcome]],
                      shots: int, deltas: Dict[str, int]) -> Result:
        throughputs = [job.allocation.throughput() for job in outcome.jobs]
        turnarounds = outcome.turnaround_ns(subs)
        method = (outcome.jobs[0].allocation.method if outcome.jobs
                  else "online")
        metadata = RunMetadata(
            job_id=job_id,
            backend_name=self._name,
            method=method,
            shots=shots if outcomes else 0,
            num_programs=len(subs),
            num_hardware_jobs=outcome.num_jobs,
            throughput=(float(sum(throughputs) / len(throughputs))
                        if throughputs else 0.0),
            makespan_ns=outcome.makespan_ns,
            mean_turnaround_ns=json_safe_num(outcome.mean_turnaround_ns),
            rejected=tuple(outcome.rejected),
            compile_requests=outcome.compile_requests,
            transpile_hits=deltas["transpile_hits"],
            transpile_misses=deltas["transpile_misses"],
            cache_evictions=deltas["evictions"],
            cache_promotions=deltas["promotions"],
            execution_batches=deltas["execution_batches"],
            execution_chunks=deltas["execution_chunks"],
            execution_fallbacks=deltas["execution_fallbacks"],
            races=sum(outcome.race_wins.values()),
            rejection_reasons=tuple(sorted(
                (int(i), str(r))
                for i, r in outcome.rejection_reasons.items())),
            dynamic_programs=_count_dynamic(s.circuit for s in subs),
        )
        device_names = [job.device_name for job in outcome.jobs]
        programs = build_program_results(outcomes, device_names,
                                         turnarounds)
        return Result(metadata=metadata, programs=programs,
                      schedule=outcome, outcomes=outcomes)

"""Typed results for facade jobs.

One :class:`Result` per job, three layers deep:

- :class:`RunMetadata` — provenance: job/backend identity, the
  allocation method, compile-cache and queue statistics;
- :class:`ProgramResult` — one entry per *submitted program*, in
  submission order: counts, probabilities, PST/JSD, placement, and (for
  scheduler-backed runs) queue timings;
- the raw engine objects (:class:`~repro.core.ScheduleOutcome`,
  per-hardware-job :class:`~repro.core.ExecutionOutcome` lists) for
  callers that need everything.

``Result.to_dict()`` is JSON-safe end to end: the ``schedule`` entry is
:meth:`ScheduleOutcome.to_dict` (the same format the scheduler
benchmark writes to ``BENCH_scheduler.json``), and
``to_dict(include_outcomes=True)`` adds the raw per-hardware-job
:meth:`ExecutionOutcome.to_dict` rows — so job results and benchmark
artifacts share one on-disk format.

``from_dict`` is the exact inverse the durable
:class:`~repro.service.JobStore` needs: a result rehydrated from its
stored payload serializes back **bit-identically** (``to_dict`` of the
round-trip equals the original payload).  Rehydrated results carry a
:class:`ScheduleRecord` — a read-only view over the stored schedule
summary — in place of the live engine :class:`ScheduleOutcome`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.executor import ExecutionOutcome
from ..core.scheduler import ScheduleOutcome, json_safe_num

__all__ = ["ProgramResult", "RunMetadata", "Result", "ScheduleRecord"]


@dataclass(frozen=True)
class ProgramResult:
    """Everything the service reports about one submitted program."""

    #: Submission index (position in the caller's input sequence).
    index: int
    #: Logical circuit name.
    circuit_name: str
    #: Physical qubits the program ran on.
    partition: Tuple[int, ...]
    #: Estimated fidelity score of the placement (lower is better).
    efs: float
    #: Sampled counts (empty when the run used ``shots=0``).
    counts: Dict[str, int]
    #: Measured output distribution (post readout error).
    probabilities: Dict[str, float]
    #: Probability of successful trial vs. the ideal top outcome.
    pst: float
    #: Jensen-Shannon divergence vs. the ideal distribution.
    jsd: float
    #: Name of the device the program executed on.
    device_name: str
    #: Index of the hardware job (dispatched batch) that carried it.
    hardware_job: int
    #: Completion - arrival, for scheduler-backed runs (else ``None``).
    turnaround_ns: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form."""
        return {
            "index": int(self.index),
            "circuit_name": self.circuit_name,
            "partition": [int(q) for q in self.partition],
            "efs": float(self.efs),
            "counts": {str(k): int(v) for k, v in self.counts.items()},
            "probabilities": {str(k): float(v)
                              for k, v in self.probabilities.items()},
            "pst": float(self.pst),
            "jsd": float(self.jsd),
            "device_name": self.device_name,
            "hardware_job": int(self.hardware_job),
            "turnaround_ns": (None if self.turnaround_ns is None
                              else float(self.turnaround_ns)),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ProgramResult":
        """Inverse of :meth:`to_dict` (store rehydration)."""
        turnaround = payload.get("turnaround_ns")
        return cls(
            index=int(payload["index"]),
            circuit_name=str(payload["circuit_name"]),
            partition=tuple(int(q) for q in payload["partition"]),
            efs=float(payload["efs"]),
            counts={str(k): int(v)
                    for k, v in payload["counts"].items()},
            probabilities={str(k): float(v)
                           for k, v in payload["probabilities"].items()},
            pst=float(payload["pst"]),
            jsd=float(payload["jsd"]),
            device_name=str(payload["device_name"]),
            hardware_job=int(payload["hardware_job"]),
            turnaround_ns=(None if turnaround is None
                           else float(turnaround)),
        )


@dataclass(frozen=True)
class RunMetadata:
    """Provenance of one job: who ran what, where, and at what cost."""

    job_id: str
    backend_name: str
    #: Allocation method label (e.g. ``"QuCP"`` or the scheduler's
    #: ``"online-qucp(th=0.3)"``).
    method: str
    shots: int
    num_programs: int
    #: Hardware jobs the submissions packed into (1 for direct runs).
    num_hardware_jobs: int
    #: Mean hardware throughput across the job's dispatched batches.
    throughput: float
    #: Scheduler queue timings; ``None`` for direct simulator runs.
    makespan_ns: Optional[float] = None
    mean_turnaround_ns: Optional[float] = None
    rejected: Tuple[int, ...] = ()
    #: Transpile requests handed to the compile service (0 without one).
    compile_requests: int = 0
    #: Shared-cache counter deltas over this job's execution window.
    #: Exact with the provider's default single-worker job pool; with
    #: ``job_workers > 1`` concurrent jobs' lookups land in each
    #: other's windows, so treat them as indicative only.
    transpile_hits: int = 0
    transpile_misses: int = 0
    #: In-memory cache entries LRU-evicted during the window.
    cache_evictions: int = 0
    #: Artifacts promoted from the persistent store into memory during
    #: the window (0 unless the provider attached a ``cache_path``).
    cache_promotions: int = 0
    #: Execution-service counter deltas over the same window (same
    #: single-worker caveat as the cache deltas above): batches routed
    #: through the shared :class:`~repro.core.ExecutionService`, the
    #: process-pool chunks they sharded into, and programs that fell
    #: back inline because a pool broke.
    execution_batches: int = 0
    execution_chunks: int = 0
    execution_fallbacks: int = 0
    #: Hedged allocator races the scheduler ran for this job (0 when
    #: the backend has no ``race_allocators`` configured).
    races: int = 0
    #: Attempts the provider's retry policy spent before this result
    #: (1 = the first try succeeded; see ``RetryPolicy``).
    attempts: int = 1
    #: Why each rejected submission was rejected: ``(index, reason)``
    #: pairs, sorted by index (tuple-of-tuples so the dataclass stays
    #: hashable).  Empty for direct simulator runs.
    rejection_reasons: Tuple[Tuple[int, str], ...] = ()
    #: Submitted circuits still carrying control flow after static
    #: expansion (they executed on the per-shot feed-forward path).
    dynamic_programs: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (NaN timings become ``None``)."""
        return {
            "job_id": self.job_id,
            "backend_name": self.backend_name,
            "method": self.method,
            "shots": int(self.shots),
            "num_programs": int(self.num_programs),
            "num_hardware_jobs": int(self.num_hardware_jobs),
            "throughput": float(self.throughput),
            "makespan_ns": json_safe_num(self.makespan_ns),
            "mean_turnaround_ns": json_safe_num(self.mean_turnaround_ns),
            "rejected": [int(i) for i in self.rejected],
            "compile_requests": int(self.compile_requests),
            "transpile_hits": int(self.transpile_hits),
            "transpile_misses": int(self.transpile_misses),
            "cache_evictions": int(self.cache_evictions),
            "cache_promotions": int(self.cache_promotions),
            "execution_batches": int(self.execution_batches),
            "execution_chunks": int(self.execution_chunks),
            "execution_fallbacks": int(self.execution_fallbacks),
            "races": int(self.races),
            "attempts": int(self.attempts),
            "rejection_reasons": {str(i): str(r) for i, r
                                  in self.rejection_reasons},
            "dynamic_programs": int(self.dynamic_programs),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunMetadata":
        """Inverse of :meth:`to_dict` (store rehydration).

        ``None`` timings stay ``None`` — the serialized null is the
        canonical spelling of a NaN timing, so the round-trip
        ``to_dict(from_dict(d)) == d`` holds exactly.
        """
        makespan = payload.get("makespan_ns")
        turnaround = payload.get("mean_turnaround_ns")
        reasons = payload.get("rejection_reasons") or {}
        return cls(
            job_id=str(payload["job_id"]),
            backend_name=str(payload["backend_name"]),
            method=str(payload["method"]),
            shots=int(payload["shots"]),
            num_programs=int(payload["num_programs"]),
            num_hardware_jobs=int(payload["num_hardware_jobs"]),
            throughput=float(payload["throughput"]),
            makespan_ns=None if makespan is None else float(makespan),
            mean_turnaround_ns=(None if turnaround is None
                                else float(turnaround)),
            rejected=tuple(int(i) for i in payload.get("rejected", ())),
            compile_requests=int(payload.get("compile_requests", 0)),
            transpile_hits=int(payload.get("transpile_hits", 0)),
            transpile_misses=int(payload.get("transpile_misses", 0)),
            cache_evictions=int(payload.get("cache_evictions", 0)),
            cache_promotions=int(payload.get("cache_promotions", 0)),
            execution_batches=int(payload.get("execution_batches", 0)),
            execution_chunks=int(payload.get("execution_chunks", 0)),
            execution_fallbacks=int(
                payload.get("execution_fallbacks", 0)),
            races=int(payload.get("races", 0)),
            attempts=int(payload.get("attempts", 1)),
            rejection_reasons=tuple(sorted(
                (int(i), str(r)) for i, r in reasons.items())),
            dynamic_programs=int(payload.get("dynamic_programs", 0)),
        )


class ScheduleRecord:
    """Read-only view over a *stored* schedule summary.

    Rehydrated results carry one of these in place of the live engine
    :class:`~repro.core.ScheduleOutcome`: the stored JSON payload is
    the authority, field access reads through to it (``record.num_jobs``,
    ``record.rejected``, ...), and :meth:`to_dict` returns the payload
    verbatim — which is what makes the store's round-trip bit-identical
    without re-deriving engine objects from their serialized form.
    """

    def __init__(self, payload: Dict[str, object]) -> None:
        object.__setattr__(self, "_payload", copy.deepcopy(payload))

    def __getattr__(self, name: str) -> object:
        try:
            return copy.deepcopy(self._payload[name])
        except KeyError:
            raise AttributeError(
                f"stored schedule has no field {name!r}") from None

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ScheduleRecord is read-only")

    def to_dict(self) -> Dict[str, object]:
        """The stored payload, verbatim (a defensive copy)."""
        return copy.deepcopy(self._payload)

    def __repr__(self) -> str:
        return (f"<ScheduleRecord: {self._payload.get('num_jobs')} "
                "jobs (rehydrated)>")


@dataclass
class Result:
    """The complete output of one facade job.

    ``programs`` holds one :class:`ProgramResult` per *completed*
    submission, in submission order (rejected submissions are listed in
    ``metadata.rejected``).  ``schedule`` is the discrete-event
    :class:`~repro.core.ScheduleOutcome` for scheduler-backed runs
    (a :class:`ScheduleRecord` for results rehydrated from a job
    store) and ``None`` for direct simulator runs; ``outcomes`` are the
    raw per-hardware-job :class:`~repro.core.ExecutionOutcome` lists
    (empty when the run was scheduled with ``execute=False`` — and for
    rehydrated results, which store only the JSON-safe form).
    """

    metadata: RunMetadata
    programs: List[ProgramResult] = field(default_factory=list)
    schedule: Optional[Union[ScheduleOutcome, ScheduleRecord]] = None
    outcomes: List[List[ExecutionOutcome]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def program(self, index: int) -> ProgramResult:
        """The result of the *index*-th submitted program."""
        for prog in self.programs:
            if prog.index == index:
                return prog
        raise KeyError(f"no result for program {index} (rejected: "
                       f"{list(self.metadata.rejected)})")

    def counts(self, index: int = 0) -> Dict[str, int]:
        """Sampled counts of one program (default: the first)."""
        return dict(self.program(index).counts)

    def probabilities(self, index: int = 0) -> Dict[str, float]:
        """Measured distribution of one program (default: the first)."""
        return dict(self.program(index).probabilities)

    def mean_pst(self) -> float:
        """Average PST across completed programs."""
        if not self.programs:
            return float("nan")
        return float(sum(p.pst for p in self.programs)
                     / len(self.programs))

    def mean_jsd(self) -> float:
        """Average JSD across completed programs."""
        if not self.programs:
            return float("nan")
        return float(sum(p.jsd for p in self.programs)
                     / len(self.programs))

    # ------------------------------------------------------------------
    def to_dict(self, include_outcomes: bool = False
                ) -> Dict[str, object]:
        """JSON-safe form of the whole result (``json.dumps`` works).

        *include_outcomes* adds the raw engine-layer rows
        (:meth:`ExecutionOutcome.to_dict`, grouped per hardware job) —
        mostly redundant with ``programs`` but exact about which
        programs shared a hardware job, for bench-style artifacts.
        """
        payload: Dict[str, object] = {
            "metadata": self.metadata.to_dict(),
            "programs": [p.to_dict() for p in self.programs],
            "schedule": (None if self.schedule is None
                         else self.schedule.to_dict()),
        }
        if include_outcomes:
            payload["outcomes"] = [
                [out.to_dict() for out in job] for job in self.outcomes]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Result":
        """Inverse of :meth:`to_dict` (store rehydration).

        The round-trip is bit-identical: ``from_dict(d).to_dict() == d``
        for any ``to_dict(include_outcomes=False)`` payload.  Raw
        engine outcomes are not stored, so ``outcomes`` comes back
        empty and ``schedule`` as a :class:`ScheduleRecord`.
        """
        schedule = payload.get("schedule")
        return cls(
            metadata=RunMetadata.from_dict(payload["metadata"]),
            programs=[ProgramResult.from_dict(p)
                      for p in payload.get("programs", [])],
            schedule=None if schedule is None else ScheduleRecord(
                schedule),
            outcomes=[],
        )

    def __repr__(self) -> str:
        return (f"<Result {self.metadata.job_id}: "
                f"{len(self.programs)} programs over "
                f"{self.metadata.num_hardware_jobs} hardware jobs>")


def build_program_results(
    outcomes: Sequence[Sequence[ExecutionOutcome]],
    device_names: Sequence[str],
    turnarounds: Optional[Dict[int, float]] = None,
) -> List[ProgramResult]:
    """Flatten per-hardware-job outcomes into submission-ordered rows.

    *device_names* gives the executing device of each hardware job;
    *turnarounds* (submission index -> ns) comes from the scheduler when
    there is one.
    """
    rows: List[ProgramResult] = []
    for job_idx, job_outcomes in enumerate(outcomes):
        for out in job_outcomes:
            alloc = out.allocation
            turnaround = (None if turnarounds is None
                          else turnarounds.get(alloc.index))
            rows.append(ProgramResult(
                index=alloc.index,
                circuit_name=alloc.circuit.name,
                partition=tuple(alloc.partition),
                efs=alloc.efs,
                counts=dict(out.result.counts),
                probabilities=dict(out.result.probabilities),
                pst=out.pst(),
                jsd=out.jsd(),
                device_name=device_names[job_idx],
                hardware_job=job_idx,
                turnaround_ns=turnaround,
            ))
    rows.sort(key=lambda r: r.index)
    return rows

"""Retry and timeout policy for provider jobs.

A :class:`RetryPolicy` makes transient infrastructure failures (a
broken worker pool, a wedged store, an injected chaos fault) survivable
without making deterministic failures (a rejected program, a broken
circuit) slow: the policy re-runs a failed attempt with exponential
backoff and a **seeded, per-job deterministic jitter** — two runs of
the same job id under the same policy sleep the same schedule, so
chaos tests assert exact retry traces — while exceptions on the
``non_retryable`` list (a :class:`~repro.service.JobError` by default)
propagate immediately.

Per-attempt timeouts run the attempt on a daemon thread: the simulation
kernels hold no cancellation points, so a timed-out attempt is
*abandoned* (left to finish in the background) rather than interrupted,
and the job moves on to its next attempt or fails with
:class:`JobTimeoutError`.

Abandoned attempts are **fenced**: each timed attempt carries an
:class:`AttemptFence` token in its thread's local storage, and the
fence is marked abandoned the instant the timeout fires.  Shared sinks
(the provider wires :func:`publication_allowed` into the
:class:`~repro.core.ExecutionCache`'s write gate) consult it before
accepting a write, so a superseded attempt that keeps simulating in the
background can no longer publish stale artifacts into state the live
attempt — or any other job — reads.  The fence is thread-local by
design: work an attempt hands to the shared compile/execution pools is
published by *pool* threads, which is safe — those writes are
content-addressed (structural keys), so a late one is value-identical
to what the winning attempt would store.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type

import numpy as np

from .job import JobError

__all__ = ["RetryPolicy", "JobTimeoutError", "AttemptFence",
           "current_fence", "publication_allowed"]


class AttemptFence:
    """Publication token of one timed attempt.

    Created per attempt by :meth:`RetryPolicy.run_attempt`, installed in
    the attempt thread's local storage, and flipped to ``abandoned``
    when the timeout fires.  A single monotonic flag — readable without
    locking from any thread the attempt runs code on.
    """

    __slots__ = ("job_id", "attempt", "abandoned")

    def __init__(self, job_id: str, attempt: int) -> None:
        self.job_id = job_id
        self.attempt = attempt
        self.abandoned = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "abandoned" if self.abandoned else "live"
        return f"<AttemptFence {self.job_id}#{self.attempt} {state}>"


_FENCE = threading.local()


def current_fence() -> Optional[AttemptFence]:
    """The fence of the attempt running on this thread, if any."""
    return getattr(_FENCE, "fence", None)


def publication_allowed() -> bool:
    """Whether this thread may publish into shared state.

    ``True`` on any thread not running a fenced attempt (the common
    case — unfenced work is never superseded), ``False`` once this
    thread's attempt has been abandoned by its timeout.
    """
    fence = current_fence()
    return fence is None or not fence.abandoned


class JobTimeoutError(TimeoutError):
    """An attempt exceeded the policy's per-attempt timeout."""

    def __init__(self, job_id: str, attempt: int,
                 timeout_s: float) -> None:
        super().__init__(
            f"job {job_id} attempt {attempt} exceeded "
            f"{timeout_s:g}s attempt timeout")
        self.job_id = job_id
        self.attempt = attempt
        self.timeout_s = timeout_s


@dataclass(frozen=True)
class RetryPolicy:
    """How many times, how spaced, and how long each attempt may run.

    The default policy (3 attempts, 50 ms base backoff doubling per
    retry, ±10% deterministic jitter, no attempt timeout) retries
    infrastructure errors twice before surfacing them.  A
    ``RetryPolicy(max_attempts=1)`` disables retries entirely.
    """

    #: Total attempts (first try included); must be >= 1.
    max_attempts: int = 3
    #: Sleep before retry *k* (1-based): ``backoff_s * factor**(k-1)``,
    #: capped at ``max_backoff_s``, then jittered.
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 5.0
    #: Jitter fraction: the delay is scaled by a deterministic factor
    #: drawn from [1 - jitter, 1 + jitter], seeded by (seed, job id,
    #: attempt) — spread in a fleet, reproducible in a test.
    jitter: float = 0.1
    seed: int = 0
    #: Seconds one attempt may run; ``None`` = unbounded.
    attempt_timeout_s: Optional[float] = None
    #: Exception types that fail immediately (deterministic failures:
    #: retrying them would re-compute the same error, slower).
    non_retryable: Tuple[Type[BaseException], ...] = field(
        default=(JobError,))

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        if (self.attempt_timeout_s is not None
                and self.attempt_timeout_s <= 0):
            raise ValueError("attempt_timeout_s must be positive")

    # ------------------------------------------------------------------
    def retries(self, exc: BaseException) -> bool:
        """Whether *exc* is worth another attempt."""
        return not isinstance(exc, tuple(self.non_retryable))

    def delay_s(self, job_id: str, attempt: int) -> float:
        """Deterministic backoff before retry *attempt* (1-based: the
        delay slept after attempt *attempt* failed)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(self.backoff_s * self.backoff_factor ** (attempt - 1),
                   self.max_backoff_s)
        if self.jitter == 0 or base == 0:
            return float(base)
        rng = np.random.default_rng(
            [self.seed, zlib.crc32(job_id.encode("utf-8")), attempt])
        scale = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return float(base * scale)

    def run_attempt(self, fn: Callable[[], object], job_id: str,
                    attempt: int) -> object:
        """Run one attempt, bounded by ``attempt_timeout_s``.

        Without a timeout the call is inline.  With one, the attempt
        runs on a daemon thread; on timeout it is abandoned (the
        kernels cannot be interrupted) and :class:`JobTimeoutError`
        raises — itself retryable under the policy.  The abandoned
        thread's :class:`AttemptFence` is marked *before* the error
        raises, so by the time the next attempt (or the caller) runs,
        the stale thread can no longer publish into gated shared state.
        """
        if self.attempt_timeout_s is None:
            return fn()
        outcome: dict = {}
        done = threading.Event()
        fence = AttemptFence(job_id, attempt)

        def target() -> None:
            _FENCE.fence = fence
            try:
                outcome["value"] = fn()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                outcome["error"] = exc
            finally:
                _FENCE.fence = None
                done.set()

        worker = threading.Thread(
            target=target, name=f"{job_id}-attempt-{attempt}",
            daemon=True)
        worker.start()
        if not done.wait(self.attempt_timeout_s):
            fence.abandoned = True
            raise JobTimeoutError(job_id, attempt, self.attempt_timeout_s)
        if "error" in outcome:
            raise outcome["error"]
        return outcome["value"]

"""Durable job store: submissions, transitions, and results on disk.

:class:`JobStore` is the service layer's crash-recovery substrate — a
SQLite (WAL-mode) mirror of everything the in-memory
:class:`~repro.service.QuantumProvider` job pool knows: each submission
(with a pickled replay spec), every :class:`~repro.service.JobStatus`
transition with wall-clock timestamps, attempt counts, error text, and
the final :meth:`~repro.service.Result.to_dict` payload.  A fresh
provider opened on the same store re-serves completed results
bit-identically and re-queues whatever was QUEUED/RUNNING at crash
time (see ``QuantumProvider(store_path=...)``).

The store is **memory-primary**: an in-process dict is the authority
and SQLite is the durable write-through mirror.  That makes the
failure policy identical to :class:`~repro.cache.PersistentCache` —
the template this module copies deliberately: a corrupt, foreign,
newer-schema, or locked database disables *the mirror* with a single
:class:`RuntimeWarning`, and the provider keeps running (jobs just
stop being durable), never crashes.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .job import JobStatus

__all__ = ["JobStore", "StoredJob", "StoredTransition"]

#: Bump when the table layout changes; newer-schema stores are left
#: untouched (disabled with a warning) instead of being misread.
_SCHEMA_VERSION = 1

#: Tables a job store may legitimately contain.  Anything else (for
#: example a compile cache's ``artifacts`` table — the two stores share
#: the ``meta`` convention) marks the file as someone else's database.
_OWN_TABLES = frozenset({"meta", "jobs", "transitions", "sqlite_sequence"})

#: Statuses that survive a restart as work-to-redo.  Admission
#: refusals ("shed"/"rejected") are terminal by construction — a
#: restart must never re-queue work the gateway refused.
_PENDING_STATUSES = frozenset({"queued", "running", "retrying"})

#: Terminal statuses :meth:`JobStore.record_refusal` accepts.
_REFUSAL_STATUSES = frozenset({"shed", "rejected"})


def _status_value(status: Union[str, "JobStatus"]) -> str:
    """Accept a :class:`~repro.service.JobStatus` or its string value."""
    return str(getattr(status, "value", status))


@dataclass(frozen=True)
class StoredJob:
    """One job's durable record (a snapshot — reads return copies)."""

    job_id: str
    #: Ordinal used to continue the provider's ``job-NNNNNN`` sequence.
    job_number: int
    backend_name: str
    status: str
    attempts: int = 0
    error: Optional[str] = None
    #: Pickled replay spec (how to re-run the job), or ``None`` when the
    #: submission is not replayable (e.g. carried a live callable).
    spec: Optional[bytes] = None
    #: ``Result.to_dict()`` payload once the job completed.
    result: Optional[Dict[str, object]] = None
    submitted: float = 0.0
    updated: float = 0.0

    @property
    def is_pending(self) -> bool:
        """Whether a restart should re-run this job."""
        return self.status in _PENDING_STATUSES


@dataclass(frozen=True)
class StoredTransition:
    """One status-transition row of a job's audit trail."""

    job_id: str
    status: str
    attempt: int
    error: Optional[str]
    time: float


class JobStore:
    """Durable job ledger: memory-primary with a SQLite mirror.

    Parameters
    ----------
    path:
        Store file location; parent directories are created.  Opening
        an existing store loads its rows into memory (that is what
        resume-on-restart reads).
    timeout:
        Seconds a writer waits on a locked database before the mirror
        degrades (SQLite busy timeout).  Shorter than the compile
        cache's: a wedged job store should degrade fast, not stall
        submissions.
    """

    def __init__(self, path: str, timeout: float = 5.0) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None
        self._records: Dict[str, StoredJob] = {}
        self._transitions: List[StoredTransition] = []
        self.disabled = False
        self.writes = 0
        self.errors = 0
        self.loaded = 0
        try:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            # Same connection discipline as the persistent compile
            # cache: autocommit so concurrent openers never deadlock on
            # a half-open transaction, check_same_thread=False because
            # job-pool workers record transitions (all access is
            # serialized by self._lock).
            conn = sqlite3.connect(self.path, timeout=timeout,
                                   isolation_level=None,
                                   check_same_thread=False)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            tables = {row[0] for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'")}
            foreign = tables - _OWN_TABLES
            if foreign:
                conn.close()
                raise sqlite3.DatabaseError(
                    "file belongs to another application (unexpected "
                    f"tables: {', '.join(sorted(foreign))})")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                "  key TEXT PRIMARY KEY, value TEXT NOT NULL)")
            conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES "
                "('schema_version', ?)", (str(_SCHEMA_VERSION),))
            conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES "
                "('kind', 'jobs')")
            rows = dict(conn.execute(
                "SELECT key, value FROM meta WHERE key IN "
                "('schema_version', 'kind')").fetchall())
            if rows.get("kind") != "jobs":
                conn.close()
                raise sqlite3.DatabaseError(
                    f"not a job store (kind={rows.get('kind')!r})")
            if int(rows.get("schema_version", -1)) != _SCHEMA_VERSION:
                conn.close()
                raise sqlite3.DatabaseError(
                    "unsupported job store schema version "
                    f"{rows.get('schema_version')!r} (this build reads "
                    f"version {_SCHEMA_VERSION})")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS jobs ("
                "  job_id TEXT PRIMARY KEY,"
                "  job_number INTEGER NOT NULL,"
                "  backend TEXT NOT NULL,"
                "  status TEXT NOT NULL,"
                "  attempts INTEGER NOT NULL DEFAULT 0,"
                "  error TEXT,"
                "  spec BLOB,"
                "  result TEXT,"
                "  submitted REAL NOT NULL,"
                "  updated REAL NOT NULL)")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS transitions ("
                "  seq INTEGER PRIMARY KEY AUTOINCREMENT,"
                "  job_id TEXT NOT NULL,"
                "  status TEXT NOT NULL,"
                "  attempt INTEGER NOT NULL,"
                "  error TEXT,"
                "  time REAL NOT NULL)")
            conn.execute(
                "CREATE INDEX IF NOT EXISTS transitions_job "
                "ON transitions (job_id, seq)")
            self._conn = conn
            self._load()
        except (sqlite3.Error, OSError, ValueError) as exc:
            self._disable(exc)

    # ------------------------------------------------------------------
    def _disable(self, exc: BaseException) -> None:
        """Degrade to memory-only: warn once, keep serving.

        An unusable store must never take the provider down — jobs
        keep running, they just stop being durable.
        """
        self.errors += 1
        if not self.disabled:
            self.disabled = True
            warnings.warn(
                f"job store {self.path!r} is unusable ({exc}); "
                "continuing in-memory — jobs will not survive a restart",
                RuntimeWarning, stacklevel=3)
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - already broken
                pass

    def _load(self) -> None:
        """Hydrate memory from the mirror (called once, at open)."""
        assert self._conn is not None
        for row in self._conn.execute(
                "SELECT job_id, job_number, backend, status, attempts, "
                "error, spec, result, submitted, updated FROM jobs "
                "ORDER BY job_number"):
            (job_id, number, backend, status, attempts, error, spec,
             result, submitted, updated) = row
            self._records[job_id] = StoredJob(
                job_id=job_id,
                job_number=int(number),
                backend_name=str(backend),
                status=str(status),
                attempts=int(attempts),
                error=None if error is None else str(error),
                spec=None if spec is None else bytes(spec),
                result=None if result is None else json.loads(result),
                submitted=float(submitted),
                updated=float(updated),
            )
            self.loaded += 1
        for row in self._conn.execute(
                "SELECT job_id, status, attempt, error, time "
                "FROM transitions ORDER BY seq"):
            job_id, status, attempt, error, when = row
            self._transitions.append(StoredTransition(
                job_id=str(job_id), status=str(status),
                attempt=int(attempt),
                error=None if error is None else str(error),
                time=float(when)))

    def _mirror(self, statement: str, params: tuple) -> None:
        """Write-through one statement; degrade the mirror on error."""
        if self._conn is None:
            return
        try:
            self._conn.execute(statement, params)
        except sqlite3.Error as exc:
            self._disable(exc)
            return
        self.writes += 1

    # ------------------------------------------------------------------
    def record_submission(self, job_id: str, job_number: int,
                          backend_name: str,
                          spec: Optional[bytes] = None) -> None:
        """Persist a new submission (status ``queued``, attempt 0)."""
        now = time.time()
        record = StoredJob(
            job_id=job_id, job_number=int(job_number),
            backend_name=backend_name, status="queued",
            attempts=0, spec=spec, submitted=now, updated=now)
        with self._lock:
            self._records[job_id] = record
            self._transitions.append(StoredTransition(
                job_id=job_id, status="queued", attempt=0,
                error=None, time=now))
            self._mirror(
                "INSERT OR REPLACE INTO jobs (job_id, job_number, "
                "backend, status, attempts, error, spec, result, "
                "submitted, updated) VALUES (?, ?, ?, ?, 0, NULL, ?, "
                "NULL, ?, ?)",
                (job_id, int(job_number), backend_name, "queued",
                 spec, now, now))
            self._mirror(
                "INSERT INTO transitions (job_id, status, attempt, "
                "error, time) VALUES (?, ?, 0, NULL, ?)",
                (job_id, "queued", now))

    def record_refusal(self, job_id: str, job_number: int,
                       backend_name: str,
                       status: Union[str, "JobStatus"],
                       reason: Optional[str] = None) -> None:
        """Persist an admission refusal: a submission born terminal.

        The record lands directly in ``shed`` or ``rejected`` (never
        ``queued``), so resume-on-restart skips it — the accept/refuse
        partition of a replayed overload scenario is part of the
        durable history, not something a restart re-litigates.
        """
        value = _status_value(status)
        if value not in _REFUSAL_STATUSES:
            raise ValueError(
                f"refusal status must be one of "
                f"{sorted(_REFUSAL_STATUSES)}, not {value!r}")
        now = time.time()
        record = StoredJob(
            job_id=job_id, job_number=int(job_number),
            backend_name=backend_name, status=value,
            attempts=0, error=reason, submitted=now, updated=now)
        with self._lock:
            self._records[job_id] = record
            self._transitions.append(StoredTransition(
                job_id=job_id, status=value, attempt=0,
                error=reason, time=now))
            self._mirror(
                "INSERT OR REPLACE INTO jobs (job_id, job_number, "
                "backend, status, attempts, error, spec, result, "
                "submitted, updated) VALUES (?, ?, ?, ?, 0, ?, NULL, "
                "NULL, ?, ?)",
                (job_id, int(job_number), backend_name, value,
                 reason, now, now))
            self._mirror(
                "INSERT INTO transitions (job_id, status, attempt, "
                "error, time) VALUES (?, ?, 0, ?, ?)",
                (job_id, value, reason, now))

    def record_transition(self, job_id: str,
                          status: Union[str, "JobStatus"],
                          attempt: Optional[int] = None,
                          error: Optional[str] = None) -> None:
        """Persist a status change (and optionally a new attempt count)."""
        value = _status_value(status)
        now = time.time()
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                return
            attempts = record.attempts if attempt is None else int(attempt)
            self._records[job_id] = replace(
                record, status=value, attempts=attempts,
                error=error if error is not None else (
                    record.error if value == "error" else None),
                updated=now)
            self._transitions.append(StoredTransition(
                job_id=job_id, status=value, attempt=attempts,
                error=error, time=now))
            self._mirror(
                "UPDATE jobs SET status = ?, attempts = ?, error = ?, "
                "updated = ? WHERE job_id = ?",
                (value, attempts, self._records[job_id].error, now,
                 job_id))
            self._mirror(
                "INSERT INTO transitions (job_id, status, attempt, "
                "error, time) VALUES (?, ?, ?, ?, ?)",
                (job_id, value, attempts, error, now))

    def record_result(self, job_id: str,
                      payload: Dict[str, object]) -> None:
        """Persist a completed job's ``Result.to_dict()`` payload."""
        now = time.time()
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                return
            self._records[job_id] = replace(record, result=payload,
                                            updated=now)
            self._mirror(
                "UPDATE jobs SET result = ?, updated = ? "
                "WHERE job_id = ?",
                (json.dumps(payload), now, job_id))

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[StoredJob]:
        """One job's record, or ``None``."""
        with self._lock:
            return self._records.get(job_id)

    def jobs(self) -> List[StoredJob]:
        """Every record, in submission (``job_number``) order."""
        with self._lock:
            return sorted(self._records.values(),
                          key=lambda r: r.job_number)

    def pending(self) -> List[StoredJob]:
        """Jobs a restart should re-run (QUEUED/RUNNING/RETRYING at
        crash time), in submission order."""
        return [r for r in self.jobs() if r.is_pending]

    def transitions(self, job_id: str) -> List[StoredTransition]:
        """One job's status history, oldest first."""
        with self._lock:
            return [t for t in self._transitions if t.job_id == job_id]

    def max_job_number(self) -> int:
        """Highest persisted ordinal (0 for an empty store); the
        provider continues its ``job-NNNNNN`` sequence from here."""
        with self._lock:
            if not self._records:
                return 0
            return max(r.job_number for r in self._records.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def stats(self) -> Dict[str, int]:
        """Counter snapshot."""
        return {
            "jobs": len(self),
            "loaded": self.loaded,
            "writes": self.writes,
            "errors": self.errors,
            "disabled": int(self.disabled),
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the mirror connection (the store file stays valid)."""
        with self._lock:
            conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - best-effort
                pass

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "memory-only" if self.disabled else "durable"
        return f"<JobStore {self.path!r} ({len(self)} jobs, {state})>"

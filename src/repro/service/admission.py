"""Multi-tenant admission control: quotas, backpressure, load shedding.

The scheduler (:class:`~repro.core.CloudScheduler`) is closed-loop: it
serves whatever it is given, however overloaded.  This module is the
open-loop guard in front of it — the component that decides, *per
submission*, whether work enters the system at all:

- **Per-user token buckets** (:class:`UserQuota`): each user gets a
  sustained rate plus a burst allowance; exceeding it raises
  :class:`QuotaExceededError` (``REJECTED`` — the caller's fault, with
  a retry-after hint telling it exactly when the bucket refills).
- **Priority classes**: ``interactive`` / ``batch`` / ``best_effort``
  map onto the scheduler's integer per-user priorities; combined with
  the scheduler's ``priority_aging_ns`` a sustained interactive flood
  cannot starve best-effort work.
- **Backpressure + deadline shedding**: the controller tracks a
  *virtual* copy of the fleet queue (d servers, per-program service
  times from the measured calibration cost table) and sheds work —
  :class:`OverloadedError`, ``SHED`` — when the estimated backlog
  crosses the policy's depth/wait thresholds or when a submission's
  estimated wait already exceeds its deadline.  Shedding up front is
  the whole point: a deadline the queue cannot meet should cost the
  caller a structured refusal now, not a timeout later.

Everything is clocked by the submission's **virtual arrival time**
(the same nanoseconds the event queue runs on), never the wall clock:
admission is a pure function of the arrival stream, so replaying a
committed traffic trace reproduces the identical accept/shed/reject
partition bit for bit.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..core.scheduler import json_safe_num
from ..hardware.fleet import DeviceFleet
from ..sim.executor import program_duration
from .job import JobError

__all__ = [
    "PRIORITY_CLASSES",
    "AdmissionError",
    "QuotaExceededError",
    "OverloadedError",
    "UserQuota",
    "TokenBucket",
    "CostModel",
    "AdmissionPolicy",
    "AdmissionDecision",
    "AdmissionController",
]

#: Priority classes and the scheduler per-user priorities they map to.
#: The gaps are deliberately wide so waiting-time aging (one level per
#: ``priority_aging_ns``) takes several intervals — not one tick — to
#: promote best-effort work past interactive work.
PRIORITY_CLASSES: Mapping[str, int] = {
    "interactive": 20,
    "batch": 10,
    "best_effort": 0,
}


class AdmissionError(JobError):
    """A submission refused at the door, with structured context.

    Subclasses :class:`~repro.service.JobError`, so it is deterministic
    and non-retryable under the default retry policy — resubmitting the
    identical request at the identical virtual time refuses again.
    ``retry_after_ns`` (``None`` when retrying cannot help, e.g. no
    quota configured) tells the caller when the refusing condition is
    expected to clear, in virtual nanoseconds.
    """

    #: Terminal store status this refusal maps to.
    status = "rejected"

    def __init__(self, message: str, user: str = "",
                 retry_after_ns: Optional[float] = None,
                 details: Optional[Mapping[str, object]] = None) -> None:
        super().__init__(message)
        self.user = user
        self.retry_after_ns = retry_after_ns
        self.details = dict(details or {})

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe payload (what the gateway returns to the caller)."""
        return {
            "error": type(self).__name__,
            "status": self.status,
            "message": str(self),
            "user": self.user,
            "retry_after_ns": json_safe_num(self.retry_after_ns),
            "details": dict(self.details),
        }


class QuotaExceededError(AdmissionError):
    """The user's token bucket is empty (or the user has no quota).

    A per-caller refusal — the system has capacity, *this user* asked
    for more than their share.  Stored as ``REJECTED``.
    """

    status = "rejected"


class OverloadedError(AdmissionError):
    """The service shed the submission to protect itself.

    A system-level refusal: backlog past the backpressure thresholds,
    or an estimated wait the submission's deadline cannot absorb.
    Stored as ``SHED``.
    """

    status = "shed"


@dataclass(frozen=True)
class UserQuota:
    """One user's admission contract.

    ``rate_per_s`` is a sustained budget in *programs* per virtual
    second; ``burst`` is the bucket depth (how far above the sustained
    rate a quiet user may spike).  ``priority_class`` names the service
    tier every admitted program is tagged with.
    """

    rate_per_s: float
    burst: int
    priority_class: str = "batch"

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("quota rate must be positive")
        if self.burst < 1:
            raise ValueError("quota burst must be at least 1 program")
        if self.priority_class not in PRIORITY_CLASSES:
            raise ValueError(
                f"unknown priority class {self.priority_class!r}; "
                f"expected one of {sorted(PRIORITY_CLASSES)}")

    @property
    def priority(self) -> int:
        """The scheduler per-user priority for this tier."""
        return PRIORITY_CLASSES[self.priority_class]


class TokenBucket:
    """Deterministic token bucket on the virtual clock.

    Refill is computed lazily from the elapsed virtual time between
    observations — no timers, no wall clock — so a replayed arrival
    stream drains and refills the bucket identically.  Time moving
    backwards (out-of-order probes) contributes zero refill rather
    than raising: the bucket is monotone in the arrival stream.
    """

    def __init__(self, rate_per_s: float, burst: int) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate_per_s = float(rate_per_s)
        self.burst = int(burst)
        self.tokens = float(burst)
        self._last_ns: Optional[float] = None

    def _refill(self, now_ns: float) -> None:
        if self._last_ns is not None and now_ns > self._last_ns:
            gained = (now_ns - self._last_ns) * self.rate_per_s / 1e9
            self.tokens = min(float(self.burst), self.tokens + gained)
        if self._last_ns is None or now_ns > self._last_ns:
            self._last_ns = now_ns

    def try_take(self, now_ns: float, amount: int = 1
                 ) -> Tuple[bool, Optional[float]]:
        """Take *amount* tokens at virtual time *now_ns*.

        Returns ``(True, None)`` on success, else ``(False,
        retry_after_ns)`` — the virtual delay after which the bucket
        will hold *amount* tokens (``None`` when *amount* exceeds the
        bucket depth and no amount of waiting helps).
        """
        if amount < 1:
            raise ValueError("must take at least one token")
        self._refill(now_ns)
        if amount > self.burst:
            return False, None
        if self.tokens + 1e-9 >= amount:
            self.tokens -= amount
            return True, None
        deficit = amount - self.tokens
        return False, deficit / self.rate_per_s * 1e9


class CostModel:
    """Estimated per-program service time from the measured cost table.

    Uses the same calibration ``gate_duration`` tables and
    :func:`~repro.sim.executor.program_duration` the scheduler prices
    dispatches with, averaged across the fleet — an *estimate* (the
    real batch may co-schedule, and runs on one concrete device), but
    a deterministic one, which is what admission needs.
    """

    def __init__(self, fleet: DeviceFleet,
                 job_overhead_ns: float = 1e6) -> None:
        if not isinstance(fleet, DeviceFleet):
            fleet = DeviceFleet(fleet)
        self.fleet = fleet
        self.job_overhead_ns = float(job_overhead_ns)
        self._durations = [dev.calibration.gate_duration for dev in fleet]
        self._memo: Dict[int, float] = {}

    def program_ns(self, circuit: QuantumCircuit) -> float:
        """Mean over the fleet of the circuit's measured duration."""
        key = id(circuit)
        hit = self._memo.get(key)
        if hit is None:
            hit = sum(program_duration(circuit, d)
                      for d in self._durations) / len(self._durations)
            self._memo[key] = hit
        return hit

    def job_ns(self, circuits: Sequence[QuantumCircuit]) -> float:
        """Estimated service time of the circuits as one hardware job:
        the fixed per-job overhead plus the longest member."""
        if not circuits:
            raise ValueError("a job has at least one circuit")
        return self.job_overhead_ns + max(self.program_ns(c)
                                          for c in circuits)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Tenant quotas plus the thresholds that trigger shedding.

    *quotas* maps user name to :class:`UserQuota`; *default_quota*
    covers users not listed (``None`` = unknown users are rejected —
    the closed-gateway posture).  ``max_queue_depth`` bounds the
    estimated number of admitted-but-unfinished programs;
    ``max_est_wait_ns`` bounds the estimated queueing delay a new
    submission would see.  Crossing either sheds (``None`` disables
    that threshold).
    """

    quotas: Mapping[str, UserQuota] = field(default_factory=dict)
    default_quota: Optional[UserQuota] = None
    max_queue_depth: Optional[int] = None
    max_est_wait_ns: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "quotas", dict(self.quotas))
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if self.max_est_wait_ns is not None and self.max_est_wait_ns <= 0:
            raise ValueError("max_est_wait_ns must be positive")

    def quota_for(self, user: str) -> Optional[UserQuota]:
        return self.quotas.get(user, self.default_quota)


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict on one submission."""

    user: str
    admitted: bool
    #: ``accepted`` | ``shed`` | ``rejected`` — the JobStore status.
    status: str
    reason: str
    priority_class: Optional[str] = None
    #: Scheduler per-user priority (admitted submissions only).
    priority: Optional[int] = None
    #: Estimated queueing delay the submission faces (admitted) or
    #: would have faced (refused).
    est_wait_ns: float = 0.0
    retry_after_ns: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "user": self.user,
            "admitted": bool(self.admitted),
            "status": self.status,
            "reason": self.reason,
            "priority_class": self.priority_class,
            "priority": (None if self.priority is None
                         else int(self.priority)),
            "est_wait_ns": float(self.est_wait_ns),
            "retry_after_ns": json_safe_num(self.retry_after_ns),
        }

    def error(self) -> Optional[AdmissionError]:
        """The typed error this refusal raises (``None`` if admitted)."""
        if self.admitted:
            return None
        cls = OverloadedError if self.status == "shed" else QuotaExceededError
        return cls(self.reason, user=self.user,
                   retry_after_ns=self.retry_after_ns,
                   details={"est_wait_ns": float(self.est_wait_ns),
                            "priority_class": self.priority_class})


class AdmissionController:
    """Stateful admission gate over one fleet.

    Holds the per-user token buckets and a virtual d-server mirror of
    the fleet queue (a heap of device-available times, advanced by the
    cost model's service estimates).  All state changes happen in
    :meth:`decide`, keyed only by the submission stream — replaying a
    trace replays the decisions.
    """

    def __init__(self, policy: AdmissionPolicy, cost_model: CostModel
                 ) -> None:
        self.policy = policy
        self.cost = cost_model
        self._buckets: Dict[str, TokenBucket] = {}
        # Virtual servers: one entry per fleet device, holding the
        # time it is estimated to free up.
        self._avail: List[float] = [0.0] * len(cost_model.fleet)
        heapq.heapify(self._avail)
        # Estimated completion times of admitted programs (pruned
        # lazily) — the backpressure queue-depth signal.
        self._backlog: List[float] = []
        self.counters: Dict[str, Dict[str, int]] = {
            cls: {"accepted": 0, "shed": 0, "rejected": 0}
            for cls in PRIORITY_CLASSES}

    # ------------------------------------------------------------------
    def _bucket(self, user: str, quota: UserQuota) -> TokenBucket:
        bucket = self._buckets.get(user)
        if bucket is None:
            bucket = TokenBucket(quota.rate_per_s, quota.burst)
            self._buckets[user] = bucket
        return bucket

    def _queue_depth(self, now_ns: float) -> int:
        self._backlog = [t for t in self._backlog if t > now_ns]
        return len(self._backlog)

    def est_wait_ns(self, now_ns: float) -> float:
        """Estimated delay before a new submission starts service."""
        return max(0.0, self._avail[0] - now_ns)

    def _count(self, priority_class: Optional[str], status: str) -> None:
        if priority_class is not None:
            self.counters[priority_class][status] += 1

    # ------------------------------------------------------------------
    def decide(self, user: str, circuits: Sequence[QuantumCircuit],
               arrival_ns: float,
               deadline_ns: Optional[float] = None) -> AdmissionDecision:
        """Admit or refuse one submission at virtual time *arrival_ns*.

        *deadline_ns* is relative to arrival: the caller's bound on
        queueing delay + service time.  Never raises — the gateway
        turns refusals into the typed errors via
        :meth:`AdmissionDecision.error`.
        """
        if not circuits:
            raise ValueError("a submission has at least one circuit")
        if arrival_ns < 0:
            raise ValueError("arrival time must be non-negative")
        quota = self.policy.quota_for(user)
        if quota is None:
            decision = AdmissionDecision(
                user=user, admitted=False, status="rejected",
                reason=f"no quota configured for user {user!r}",
                est_wait_ns=self.est_wait_ns(arrival_ns))
            return decision  # unknown tier: not counted per class
        cls = quota.priority_class

        ok, retry_after = self._bucket(user, quota).try_take(
            arrival_ns, amount=len(circuits))
        if not ok:
            self._count(cls, "rejected")
            return AdmissionDecision(
                user=user, admitted=False, status="rejected",
                reason=(f"quota exceeded: {len(circuits)} program(s) "
                        f"over {user!r}'s rate "
                        f"{quota.rate_per_s:g}/s burst {quota.burst}"
                        if retry_after is not None else
                        f"burst {quota.burst} cannot ever admit "
                        f"{len(circuits)} programs in one submission"),
                priority_class=cls,
                est_wait_ns=self.est_wait_ns(arrival_ns),
                retry_after_ns=retry_after)

        est_wait = self.est_wait_ns(arrival_ns)
        service = self.cost.job_ns(circuits)
        depth = self._queue_depth(arrival_ns)
        limit = self.policy.max_queue_depth
        if limit is not None and depth + len(circuits) > limit:
            self._count(cls, "shed")
            return AdmissionDecision(
                user=user, admitted=False, status="shed",
                reason=(f"backpressure: estimated backlog "
                        f"{depth}+{len(circuits)} programs over the "
                        f"depth limit {limit}"),
                priority_class=cls, est_wait_ns=est_wait,
                retry_after_ns=est_wait + service)
        max_wait = self.policy.max_est_wait_ns
        if max_wait is not None and est_wait > max_wait:
            self._count(cls, "shed")
            return AdmissionDecision(
                user=user, admitted=False, status="shed",
                reason=(f"backpressure: estimated wait "
                        f"{est_wait:.0f} ns over the limit "
                        f"{max_wait:.0f} ns"),
                priority_class=cls, est_wait_ns=est_wait,
                retry_after_ns=max(0.0, est_wait - max_wait))
        if deadline_ns is not None and est_wait + service > deadline_ns:
            self._count(cls, "shed")
            return AdmissionDecision(
                user=user, admitted=False, status="shed",
                reason=(f"deadline unmeetable: estimated "
                        f"wait+service {est_wait + service:.0f} ns "
                        f"exceeds deadline {deadline_ns:.0f} ns"),
                priority_class=cls, est_wait_ns=est_wait,
                retry_after_ns=est_wait)

        # Admit: advance the virtual queue the way the fleet would.
        start = max(arrival_ns, heapq.heappop(self._avail))
        end = start + service
        heapq.heappush(self._avail, end)
        self._backlog.extend([end] * len(circuits))
        self._count(cls, "accepted")
        return AdmissionDecision(
            user=user, admitted=True, status="accepted",
            reason="ok", priority_class=cls, priority=quota.priority,
            est_wait_ns=est_wait)

    def admit(self, user: str, circuits: Sequence[QuantumCircuit],
              arrival_ns: float,
              deadline_ns: Optional[float] = None) -> AdmissionDecision:
        """Like :meth:`decide`, but refusals raise their typed error."""
        decision = self.decide(user, circuits, arrival_ns, deadline_ns)
        error = decision.error()
        if error is not None:
            raise error
        return decision

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """JSON-safe per-class accept/shed/reject counters."""
        total = {"accepted": 0, "shed": 0, "rejected": 0}
        for counts in self.counters.values():
            for k, v in counts.items():
                total[k] += v
        return {
            "per_class": {cls: dict(counts)
                          for cls, counts in sorted(self.counters.items())},
            "total": total,
        }

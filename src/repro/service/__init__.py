"""The service facade — the repo's primary public API.

One object model over the whole execution stack (allocators, the
discrete-event cloud scheduler, the parallel compile service, the noisy
simulators), shaped like a cloud provider SDK::

    import repro

    provider = repro.provider()
    backend = provider.backend("ibm_toronto", fidelity_threshold=0.3)
    job = backend.run(circuits, shots=4096, seed=7)     # returns now
    result = job.result()                               # blocks
    print(result.counts(0), result.program(0).pst)

- :class:`QuantumProvider` — discovers devices/fleets; owns the shared
  :class:`~repro.core.ExecutionCache`, the
  :class:`~repro.core.CompileService`, and the asynchronous job pool.
- :class:`CloudBackend` / :class:`SimulatorBackend` — per-target
  configuration (allocator, fidelity threshold, batching window,
  shots) behind one ``run`` surface.
- :class:`Job` / :class:`JobSet` — async handles with ``status()`` /
  ``result()`` / ``cancel()`` and stable ids.
- :class:`Session` — pins a backend and warms its caches for iterative
  workloads (VQE/QAOA loops).
- :class:`Result` / :class:`RunMetadata` / :class:`ProgramResult` —
  typed, JSON-serializable results with allocation + compile
  provenance and queue timings (``from_dict`` inverses for store
  rehydration).
- :class:`JobStore` / :class:`RetryPolicy` — the durability layer:
  crash-recoverable job persistence (``store_path=`` /
  ``REPRO_JOB_STORE``) with resume-on-restart, and deterministic
  retry/backoff/timeout handling for every submission.
- :class:`Gateway` / :class:`AdmissionController` — the multi-tenant
  front door: per-user token-bucket quotas, priority classes,
  backpressure and deadline shedding (typed
  :class:`QuotaExceededError` / :class:`OverloadedError` refusals with
  retry-after hints), persisted terminally as ``SHED``/``REJECTED``.

The free functions this facade fronts —
:func:`repro.core.execute_allocation`, :func:`repro.core.run_batch`,
:class:`repro.core.CloudScheduler` — remain available as the engine
layer; scheduler-backed jobs reproduce ``CloudScheduler.schedule``
bit-identically (test-enforced).
"""

from .admission import (
    PRIORITY_CLASSES,
    AdmissionController,
    AdmissionDecision,
    AdmissionError,
    AdmissionPolicy,
    CostModel,
    OverloadedError,
    QuotaExceededError,
    TokenBucket,
    UserQuota,
)
from .backend import (
    BackendConfiguration,
    BaseBackend,
    CloudBackend,
    SimulatorBackend,
)
from .gateway import Gateway, GatewayTicket
from .job import Job, JobError, JobSet, JobStatus
from .provider import QuantumProvider, UnknownDeviceError, provider
from .result import ProgramResult, Result, RunMetadata, ScheduleRecord
from .retry import JobTimeoutError, RetryPolicy
from .session import Session
from .store import JobStore, StoredJob, StoredTransition

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionError",
    "AdmissionPolicy",
    "BackendConfiguration",
    "BaseBackend",
    "CloudBackend",
    "CostModel",
    "Gateway",
    "GatewayTicket",
    "Job",
    "JobError",
    "JobSet",
    "JobStatus",
    "JobStore",
    "JobTimeoutError",
    "OverloadedError",
    "PRIORITY_CLASSES",
    "ProgramResult",
    "QuantumProvider",
    "QuotaExceededError",
    "Result",
    "RetryPolicy",
    "RunMetadata",
    "ScheduleRecord",
    "Session",
    "SimulatorBackend",
    "StoredJob",
    "StoredTransition",
    "TokenBucket",
    "UnknownDeviceError",
    "UserQuota",
    "provider",
]

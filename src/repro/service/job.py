"""Asynchronous job handles over the provider's execution pool.

A :class:`Job` is the facade's unit of work: a stable id, a lifecycle
(:class:`JobStatus`), and a blocking :meth:`Job.result` — the same shape
cloud provider SDKs expose, so code written against this API ports to a
real service by swapping the provider.  Jobs are created by backends
(never directly) and run on the owning provider's thread pool, so
``backend.run(...)`` returns immediately and the caller overlaps its own
work — or more submissions — with execution.

A :class:`JobSet` aggregates handles from iterative workloads (a VQE
scan's per-point jobs, a sweep's per-configuration jobs) behind the
same status/result/cancel surface.
"""

from __future__ import annotations

import enum
import time
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .backend import BaseBackend
    from .result import Result

__all__ = ["JobStatus", "Job", "JobSet"]


class JobStatus(enum.Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"
    ERROR = "error"

    @property
    def is_final(self) -> bool:
        """Whether the job can no longer change state."""
        return self in (JobStatus.DONE, JobStatus.CANCELLED,
                        JobStatus.ERROR)


class Job:
    """Handle of one asynchronous submission.

    Created by a backend's ``run`` method; the underlying work executes
    on the provider's job pool.  ``job_id`` is stable for the provider's
    lifetime and resolvable back through
    :meth:`~repro.service.QuantumProvider.job`.
    """

    def __init__(self, job_id: str, backend: "BaseBackend",
                 future: "Future[Result]") -> None:
        self._job_id = job_id
        self._backend = backend
        self._future = future

    # ------------------------------------------------------------------
    @property
    def job_id(self) -> str:
        """Stable provider-scoped identifier."""
        return self._job_id

    @property
    def backend(self) -> "BaseBackend":
        """The backend this job was submitted to."""
        return self._backend

    # ------------------------------------------------------------------
    def status(self) -> JobStatus:
        """Current lifecycle state (non-blocking)."""
        fut = self._future
        if fut.cancelled():
            return JobStatus.CANCELLED
        if fut.running():
            return JobStatus.RUNNING
        if fut.done():
            return (JobStatus.ERROR if fut.exception() is not None
                    else JobStatus.DONE)
        return JobStatus.QUEUED

    def done(self) -> bool:
        """Whether the job reached a final state."""
        return self.status().is_final

    def cancel(self) -> bool:
        """Cancel if still queued; returns whether it worked.

        A job already running on the pool cannot be interrupted (the
        simulation kernels hold no cancellation points); it runs to
        completion and reports DONE.
        """
        return self._future.cancel()

    def result(self, timeout: Optional[float] = None) -> "Result":
        """Block until the job finishes and return its :class:`Result`.

        Re-raises the job's error if it failed, :class:`concurrent.
        futures.CancelledError` if it was cancelled, and
        :class:`TimeoutError` if *timeout* (seconds) elapses first.
        """
        return self._future.result(timeout)

    def exception(self, timeout: Optional[float] = None
                  ) -> Optional[BaseException]:
        """The job's error, or ``None`` once it succeeded (blocking)."""
        return self._future.exception(timeout)

    def wait(self, timeout: Optional[float] = None) -> JobStatus:
        """Block until the job is final (or *timeout* elapses); returns
        the current status either way — never raises."""
        try:
            self._future.exception(timeout)
        except (CancelledError, FuturesTimeoutError, TimeoutError):
            pass
        return self.status()

    def __repr__(self) -> str:
        return (f"<Job {self._job_id} on {self._backend.name!r}: "
                f"{self.status().value}>")


class JobSet:
    """An ordered group of jobs addressed as one unit.

    Used for sweeps and sessions: ``results()`` blocks for everything,
    ``statuses()`` polls everything, ``cancel()`` cancels whatever has
    not started.  Indexing and iteration yield the member jobs in
    submission order.
    """

    def __init__(self, jobs: Sequence[Job] = ()) -> None:
        self._jobs: List[Job] = list(jobs)

    def add(self, job: Job) -> None:
        """Append one more handle (sessions grow their set per run)."""
        self._jobs.append(job)

    @property
    def jobs(self) -> List[Job]:
        """The member handles, in submission order."""
        return list(self._jobs)

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __getitem__(self, index: int) -> Job:
        return self._jobs[index]

    # ------------------------------------------------------------------
    def statuses(self) -> List[JobStatus]:
        """Current state of every member (non-blocking)."""
        return [job.status() for job in self._jobs]

    def done(self) -> bool:
        """Whether every member reached a final state."""
        return all(job.done() for job in self._jobs)

    def cancel(self) -> List[bool]:
        """Try to cancel every member; per-job success flags."""
        return [job.cancel() for job in self._jobs]

    @staticmethod
    def _deadline_steps(timeout: Optional[float]):
        """Per-member timeouts sharing one overall deadline.

        *timeout* bounds the whole call, not each member — a set of 20
        queued jobs with ``timeout=10`` blocks ~10 s total, not 200.
        """
        if timeout is None:
            while True:
                yield None
        deadline = time.monotonic() + timeout
        while True:
            yield max(0.0, deadline - time.monotonic())

    def results(self, timeout: Optional[float] = None) -> "List[Result]":
        """Block for every member's result, in submission order.

        *timeout* (seconds) bounds the whole call; ``TimeoutError`` if
        it elapses before every member finished.
        """
        steps = self._deadline_steps(timeout)
        return [job.result(step) for job, step in zip(self._jobs, steps)]

    def wait(self, timeout: Optional[float] = None) -> List[JobStatus]:
        """Block until every member is final (or the overall *timeout*
        elapses); returns the states."""
        steps = self._deadline_steps(timeout)
        return [job.wait(step) for job, step in zip(self._jobs, steps)]

    def __repr__(self) -> str:
        states = ", ".join(s.value for s in self.statuses())
        return f"<JobSet of {len(self._jobs)}: [{states}]>"

"""Asynchronous job handles over the provider's execution pool.

A :class:`Job` is the facade's unit of work: a stable id, a lifecycle
(:class:`JobStatus`), and a blocking :meth:`Job.result` — the same shape
cloud provider SDKs expose, so code written against this API ports to a
real service by swapping the provider.  Jobs are created by backends
(never directly) and run on the owning provider's thread pool, so
``backend.run(...)`` returns immediately and the caller overlaps its own
work — or more submissions — with execution.

A :class:`JobSet` aggregates handles from iterative workloads (a VQE
scan's per-point jobs, a sweep's per-configuration jobs) behind the
same status/result/cancel surface.
"""

from __future__ import annotations

import enum
import time
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import (TYPE_CHECKING, Callable, Iterator, List, Mapping,
                    Optional, Sequence, Union)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .backend import BaseBackend
    from .result import Result

__all__ = ["JobStatus", "JobError", "Job", "JobSet"]


class JobStatus(enum.Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    #: Between attempts under a :class:`~repro.service.RetryPolicy`:
    #: the last attempt failed and the job is backing off before the
    #: next one.  Not final — the job returns to RUNNING.
    RETRYING = "retrying"
    DONE = "done"
    CANCELLED = "cancelled"
    ERROR = "error"
    #: Refused by admission control to protect an overloaded service
    #: (backpressure or an unmeetable deadline).  Terminal: the work
    #: never entered the queue, and a restart must not re-queue it.
    SHED = "shed"
    #: Refused by admission control as the caller's fault (no quota, or
    #: the user's token bucket was empty).  Terminal, like SHED.
    REJECTED = "rejected"

    @property
    def is_final(self) -> bool:
        """Whether the job can no longer change state."""
        return self in (JobStatus.DONE, JobStatus.CANCELLED,
                        JobStatus.ERROR, JobStatus.SHED,
                        JobStatus.REJECTED)


class JobError(RuntimeError):
    """Structured job failure: what failed, and why, per program.

    Raised (and surfaced through :meth:`Job.result`) when a job cannot
    produce any result — most prominently when the scheduler rejected
    *every* submission.  ``reasons`` maps submission index to the
    rejection reason; partial rejections do **not** raise (the job
    completes and lists them in ``Result.metadata.rejected`` /
    ``rejection_reasons``).

    Deterministic by construction, so it is non-retryable under the
    default :class:`~repro.service.RetryPolicy`.
    """

    def __init__(self, message: str, job_id: str = "",
                 reasons: Optional[Mapping[int, str]] = None) -> None:
        super().__init__(message)
        self.job_id = job_id
        self.reasons = dict(reasons or {})

    def __str__(self) -> str:
        base = super().__str__()
        if not self.reasons:
            return base
        detail = "; ".join(f"program {i}: {reason}" for i, reason
                           in sorted(self.reasons.items()))
        return f"{base} ({detail})"


class _JobState:
    """Mutable run state shared between a job handle and the pool task.

    The retry wrapper updates it from inside the worker; the handle's
    :meth:`Job.status` reads it without locking (single-writer,
    monotonic fields — a torn read returns an adjacent state, never an
    invalid one).
    """

    __slots__ = ("attempts", "retrying", "last_error")

    def __init__(self) -> None:
        self.attempts = 0
        self.retrying = False
        self.last_error: Optional[BaseException] = None


class Job:
    """Handle of one asynchronous submission.

    Created by a backend's ``run`` method; the underlying work executes
    on the provider's job pool.  ``job_id`` is stable for the provider's
    lifetime and resolvable back through
    :meth:`~repro.service.QuantumProvider.job`.
    """

    def __init__(self, job_id: str, backend: "Union[BaseBackend, str]",
                 future: "Future[Result]",
                 state: Optional[_JobState] = None,
                 on_cancel: Optional[Callable[[], None]] = None,
                 final_status: Optional[JobStatus] = None) -> None:
        self._job_id = job_id
        self._backend = backend
        self._future = future
        self._state = state or _JobState()
        self._on_cancel = on_cancel
        # Terminal-state refinement for rehydrated handles: a stored
        # SHED/REJECTED job resolves to an exception future, but its
        # reported status should stay the stored refusal, not ERROR.
        self._final_status = final_status

    # ------------------------------------------------------------------
    @property
    def job_id(self) -> str:
        """Stable provider-scoped identifier."""
        return self._job_id

    @property
    def backend(self) -> "Union[BaseBackend, str]":
        """The backend this job was submitted to (its name, for jobs
        rehydrated from a store after a restart)."""
        return self._backend

    @property
    def attempts(self) -> int:
        """Attempts started so far (1 for a job that never retried)."""
        return max(1, self._state.attempts)

    # ------------------------------------------------------------------
    def status(self) -> JobStatus:
        """Current lifecycle state (non-blocking)."""
        fut = self._future
        if fut.cancelled():
            return JobStatus.CANCELLED
        if fut.done():
            if self._final_status is not None:
                return self._final_status
            return (JobStatus.ERROR if fut.exception() is not None
                    else JobStatus.DONE)
        # The retry wrapper runs *inside* the pool task, so the future
        # stays RUNNING through backoff sleeps — the shared state is
        # what distinguishes an attempt from the gap between attempts.
        if self._state.retrying:
            return JobStatus.RETRYING
        if fut.running():
            return JobStatus.RUNNING
        return JobStatus.QUEUED

    def done(self) -> bool:
        """Whether the job reached a final state."""
        return self.status().is_final

    def cancel(self) -> bool:
        """Cancel if still queued; returns whether it worked.

        A job already running on the pool cannot be interrupted (the
        simulation kernels hold no cancellation points); it runs to
        completion and reports DONE.
        """
        cancelled = self._future.cancel()
        if cancelled and self._on_cancel is not None:
            self._on_cancel()
        return cancelled

    def result(self, timeout: Optional[float] = None) -> "Result":
        """Block until the job finishes and return its :class:`Result`.

        Re-raises the job's error if it failed, :class:`concurrent.
        futures.CancelledError` if it was cancelled, and
        :class:`TimeoutError` if *timeout* (seconds) elapses first.
        """
        return self._future.result(timeout)

    def exception(self, timeout: Optional[float] = None
                  ) -> Optional[BaseException]:
        """The job's error, or ``None`` once it succeeded (blocking)."""
        return self._future.exception(timeout)

    def wait(self, timeout: Optional[float] = None) -> JobStatus:
        """Block until the job is final (or *timeout* elapses); returns
        the current status either way — never raises."""
        try:
            self._future.exception(timeout)
        except (CancelledError, FuturesTimeoutError, TimeoutError):
            pass
        return self.status()

    def __repr__(self) -> str:
        name = getattr(self._backend, "name", self._backend)
        return (f"<Job {self._job_id} on {name!r}: "
                f"{self.status().value}>")


class JobSet:
    """An ordered group of jobs addressed as one unit.

    Used for sweeps and sessions: ``results()`` blocks for everything,
    ``statuses()`` polls everything, ``cancel()`` cancels whatever has
    not started.  Indexing and iteration yield the member jobs in
    submission order.
    """

    def __init__(self, jobs: Sequence[Job] = ()) -> None:
        self._jobs: List[Job] = list(jobs)

    def add(self, job: Job) -> None:
        """Append one more handle (sessions grow their set per run)."""
        self._jobs.append(job)

    @property
    def jobs(self) -> List[Job]:
        """The member handles, in submission order."""
        return list(self._jobs)

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __getitem__(self, index: int) -> Job:
        return self._jobs[index]

    # ------------------------------------------------------------------
    def statuses(self) -> List[JobStatus]:
        """Current state of every member (non-blocking)."""
        return [job.status() for job in self._jobs]

    def done(self) -> bool:
        """Whether every member reached a final state."""
        return all(job.done() for job in self._jobs)

    def cancel(self) -> List[bool]:
        """Try to cancel every member; per-job success flags."""
        return [job.cancel() for job in self._jobs]

    @staticmethod
    def _deadline_steps(timeout: Optional[float]):
        """Per-member timeouts sharing one overall deadline.

        *timeout* bounds the whole call, not each member — a set of 20
        queued jobs with ``timeout=10`` blocks ~10 s total, not 200.
        """
        if timeout is None:
            while True:
                yield None
        deadline = time.monotonic() + timeout
        while True:
            yield max(0.0, deadline - time.monotonic())

    def results(self, timeout: Optional[float] = None,
                return_exceptions: bool = False
                ) -> "List[Union[Result, BaseException]]":
        """Block for every member's result, in submission order.

        *timeout* (seconds) bounds the whole call; ``TimeoutError`` if
        it elapses before every member finished.

        With ``return_exceptions=True`` a failed (or cancelled, or
        timed-out) member contributes its exception at its position
        instead of aborting the whole call — one ERROR member no longer
        forfeits the results of the ones after it.
        """
        steps = self._deadline_steps(timeout)
        if not return_exceptions:
            return [job.result(step)
                    for job, step in zip(self._jobs, steps)]
        collected: "List[Union[Result, BaseException]]" = []
        for job, step in zip(self._jobs, steps):
            try:
                collected.append(job.result(step))
            except (CancelledError, Exception) as exc:  # noqa: B014
                collected.append(exc)
        return collected

    def wait(self, timeout: Optional[float] = None) -> List[JobStatus]:
        """Block until every member is final (or the overall *timeout*
        elapses); returns the states."""
        steps = self._deadline_steps(timeout)
        return [job.wait(step) for job, step in zip(self._jobs, steps)]

    def __repr__(self) -> str:
        states = ", ".join(s.value for s in self.statuses())
        return f"<JobSet of {len(self._jobs)}: [{states}]>"

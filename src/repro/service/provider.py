"""The provider: device discovery, shared caches, and the job pool.

:class:`QuantumProvider` is the facade's root object.  It

- discovers execution targets (the built-in synthetic IBM devices plus
  anything registered with :meth:`~QuantumProvider.add_device`), handing
  out *one shared instance per name* so every backend built on a device
  shares its :class:`~repro.core.AllocationEngine` memos and
  :class:`~repro.transpiler.context.DeviceContext` tables;
- owns the shared :class:`~repro.core.ExecutionCache` and the
  :class:`~repro.core.CompileService` publishing into it, so compiles
  dedup across jobs, backends, and sessions;
- owns the job pool: every ``backend.run(...)`` returns an asynchronous
  :class:`~repro.service.Job` executing here, with stable provider-
  scoped ids resolvable through :meth:`~QuantumProvider.job`.

Most callers want the module-level :func:`provider` accessor::

    import repro

    backend = repro.provider().backend("ibm_toronto")
    job = backend.run(circuits, shots=4096, seed=7)
    result = job.result()
"""

from __future__ import annotations

import difflib
import os
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.compile_service import CompileService
from ..core.execution_service import ExecutionService
from ..core.executor import _UNSET, ExecutionCache
from ..hardware.devices import (
    Device,
    ibm_manhattan,
    ibm_melbourne,
    ibm_toronto,
)
from ..hardware.fleet import DeviceFleet
from .backend import (
    BackendConfiguration,
    BaseBackend,
    CloudBackend,
    SimulatorBackend,
)
from .job import Job
from .result import Result
from .session import Session

__all__ = ["QuantumProvider", "UnknownDeviceError", "provider"]


class UnknownDeviceError(KeyError):
    """A device name that matches nothing the provider can resolve.

    Same contract as :class:`repro.core.UnknownAllocatorError`: a
    :class:`KeyError` subclass whose ``__str__`` is the plain message
    (not the repr-quoted default), naming the resolvable devices with a
    close-match suggestion for typos.
    """

    def __init__(self, name: str, known: Sequence[str]) -> None:
        hint = ""
        close = difflib.get_close_matches(name, known, n=1)
        if close:
            hint = f" — did you mean {close[0]!r}?"
        super().__init__(
            f"unknown device {name!r}; available: "
            f"{', '.join(repr(k) for k in known)}{hint}")
        self.name = name
        self.known = tuple(known)

    def __str__(self) -> str:
        return self.args[0]

#: Built-in synthetic devices, constructed lazily on first lookup.
_BUILTIN_DEVICES: Dict[str, Callable[[], Device]] = {
    "ibm_melbourne": ibm_melbourne,
    "ibm_toronto": ibm_toronto,
    "ibm_manhattan": ibm_manhattan,
}

#: Anything a backend target may be specified as.
DeviceLike = Union[str, Device]

#: Environment variable supplying the default persistent-store path.
_CACHE_PATH_ENV = "REPRO_CACHE_PATH"


class QuantumProvider:
    """Entry point of the service facade.

    Parameters
    ----------
    devices:
        Extra devices to register at construction (on top of the
        built-ins), addressable by their ``Device.name``.
    compile_mode:
        Worker routing of the shared :class:`CompileService` —
        ``"auto"`` (default; per-batch serial/thread/process choice),
        or an explicit route.
    compile_workers:
        Compile pool size (``None`` = executor default).
    cache_entries:
        LRU bound on the shared :class:`ExecutionCache`'s in-memory
        tables.  When omitted, a generous default cap applies (4096,
        overridable via ``REPRO_CACHE_MAX_ENTRIES``); an explicit
        ``None`` is unbounded.
    cache_path:
        Location of a persistent on-disk compile-artifact store (SQLite
        WAL, shared across processes): compiled equivalence classes
        survive provider restarts and dedup across concurrent
        providers.  When omitted, the ``REPRO_CACHE_PATH`` environment
        variable is consulted; unset means in-memory caching only.
    execution_mode:
        Worker routing of the shared
        :class:`~repro.core.ExecutionService` that every backend's
        simulations run through — ``"auto"`` (default; per-batch
        serial/thread/process choice from the measured crossover
        table), or an explicit route.  Sharded execution is
        bit-identical to the serial path regardless of the route.
    execution_workers:
        Execution pool size (``None`` = executor default).
    job_workers:
        Job pool width.  Defaults to 1, which keeps shared-cache
        statistics and engine memo growth deterministic.  With the
        execution service routing simulations to a *process* pool the
        GIL no longer serializes jobs, so raising this makes concurrent
        jobs genuinely overlap — speculative duplicate submissions
        (hedged racing at the job level) need it.
    job_history:
        Bound on the job registry.  Finished jobs beyond it (oldest
        first) are evicted so their Results can be reclaimed —
        ``provider.job(old_id)`` then raises KeyError.  ``None``
        (default) keeps every handle, which is fine interactively but
        grows without bound in a long-lived service; set it (like
        *cache_entries*) for service deployments.
    """

    def __init__(
        self,
        devices: Sequence[Device] = (),
        compile_mode: str = "auto",
        compile_workers: Optional[int] = None,
        cache_entries=_UNSET,
        cache_path: Optional[str] = None,
        execution_mode: str = "auto",
        execution_workers: Optional[int] = None,
        job_workers: int = 1,
        job_history: Optional[int] = None,
    ) -> None:
        if job_workers < 1:
            raise ValueError("job_workers must be at least 1")
        if job_history is not None and job_history < 1:
            raise ValueError("job_history must be at least 1")
        self.job_history = job_history
        # The lock guards device registration and the job registry; it
        # must exist before the first add_device call below.
        self._lock = threading.Lock()
        self._devices: "OrderedDict[str, Device]" = OrderedDict()
        for device in devices:
            self.add_device(device)
        if cache_path is None:
            cache_path = os.environ.get(_CACHE_PATH_ENV) or None
        self.cache = ExecutionCache(max_entries=cache_entries,
                                    store_path=cache_path)
        self.compile_service = CompileService(
            max_workers=compile_workers, mode=compile_mode,
            cache=self.cache)
        self.execution_service = ExecutionService(
            max_workers=execution_workers, mode=execution_mode)
        self._pool = ThreadPoolExecutor(
            max_workers=job_workers, thread_name_prefix="repro-job")
        self._job_counter = 0
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._closed = False

    # ------------------------------------------------------------------
    # device discovery
    # ------------------------------------------------------------------
    def available_devices(self) -> List[str]:
        """Names resolvable by :meth:`device` (built-ins + registered)."""
        with self._lock:
            names = set(_BUILTIN_DEVICES) | set(self._devices)
        return sorted(names)

    def device(self, name: str) -> Device:
        """The shared instance registered under *name*.

        Built-in devices are constructed once on first lookup and then
        reused, so every backend on ``"ibm_toronto"`` shares one
        instance — and with it the allocation-engine memos and
        compilation context.  Thread-safe: concurrent first lookups
        resolve to one instance.
        """
        with self._lock:
            found = self._devices.get(name)
            if found is not None:
                return found
            factory = _BUILTIN_DEVICES.get(name)
            if factory is None:
                names = sorted(set(_BUILTIN_DEVICES) | set(self._devices))
                raise UnknownDeviceError(name, names)
            device = factory()
            self._devices[name] = device
            return device

    def add_device(self, device: Device, name: Optional[str] = None
                   ) -> str:
        """Register *device* (under *name* or ``device.name``)."""
        key = name or device.name
        with self._lock:
            existing = self._devices.get(key)
            if existing is not None and existing is not device:
                raise ValueError(f"device {key!r} is already registered")
            self._devices[key] = device
        return key

    def _resolve_device(self, target: DeviceLike) -> Device:
        """Name -> registered instance; Device -> used as-is.

        A passed instance is opportunistically registered, but only if
        its name is still free: twin devices sharing one name (e.g. two
        differently-seeded Torontos in a benchmark fleet) stay usable
        without colliding — the explicitly passed instance always wins
        for *this* backend, and :meth:`device` keeps resolving the name
        to whichever instance claimed it first.
        """
        if isinstance(target, Device):
            with self._lock:
                self._devices.setdefault(target.name, target)
            return target
        return self.device(target)

    # ------------------------------------------------------------------
    # backends
    # ------------------------------------------------------------------
    def backends(self) -> List[str]:
        """Names :meth:`backend` / :meth:`simulator` accept."""
        return self.available_devices()

    def backend(self, target: DeviceLike = "ibm_toronto",
                **config) -> CloudBackend:
        """A cloud (scheduler-backed) backend on one device.

        Keyword arguments configure the target
        (:class:`~repro.service.BackendConfiguration` fields:
        ``allocator``, ``fidelity_threshold``, ``batch_window_ns``,
        ``shots``, ...).
        """
        device = self._resolve_device(target)
        return CloudBackend(device.name, self, DeviceFleet(device),
                            BackendConfiguration(**config))

    def simulator(self, target: DeviceLike = "ibm_toronto",
                  **config) -> SimulatorBackend:
        """A direct-execution backend on one device (no queue model)."""
        device = self._resolve_device(target)
        return SimulatorBackend(f"{device.name}-simulator", self, device,
                                BackendConfiguration(**config))

    def fleet_backend(self, targets: Sequence[DeviceLike],
                      policy: str = "least_loaded",
                      name: Optional[str] = None,
                      **config) -> CloudBackend:
        """A cloud backend over a multi-device fleet.

        *policy* is the fleet placement policy (``round_robin`` /
        ``least_loaded`` / ``best_fidelity``).
        """
        devices = [self._resolve_device(t) for t in targets]
        fleet = DeviceFleet(devices, policy=policy)
        label = name or "fleet[" + ",".join(d.name for d in devices) + "]"
        return CloudBackend(label, self, fleet,
                            BackendConfiguration(**config))

    def session(self, backend: Union[BaseBackend, DeviceLike,
                                     None] = None,
                **kwargs) -> Session:
        """Open a :class:`Session` pinned to *backend*.

        *backend* may be an existing backend object or a device name
        (wrapped as a cloud backend); extra keyword arguments go to the
        :class:`Session` constructor (``shots``, ``seed``, ``warm``).
        """
        if backend is None or isinstance(backend, (str, Device)):
            backend = self.backend(backend or "ibm_toronto")
        return Session(backend, **kwargs)

    # ------------------------------------------------------------------
    # the job pool
    # ------------------------------------------------------------------
    def _submit_job(self, backend: BaseBackend,
                    fn: Callable[[str], Result]) -> Job:
        """Allocate an id, queue *fn* on the pool, return the handle."""
        with self._lock:
            if self._closed:
                raise RuntimeError("provider is shut down")
            self._job_counter += 1
            job_id = f"job-{self._job_counter:06d}"
        future = self._pool.submit(fn, job_id)
        job = Job(job_id, backend, future)
        with self._lock:
            self._jobs[job_id] = job
            if self.job_history is not None:
                # Evict oldest *finished* handles past the bound; live
                # jobs are never dropped, so the registry can exceed
                # the bound only by the number of in-flight jobs.
                excess = len(self._jobs) - self.job_history
                if excess > 0:
                    for jid in [jid for jid, j in self._jobs.items()
                                if j.done()][:excess]:
                        del self._jobs[jid]
        return job

    def job(self, job_id: str) -> Job:
        """Resolve a handle by its stable id."""
        with self._lock:
            found = self._jobs.get(job_id)
        if found is None:
            raise KeyError(f"unknown job id {job_id!r}")
        return found

    def jobs(self) -> List[Job]:
        """Every retained handle, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    def retire_finished(self) -> int:
        """Drop every finished handle from the registry (freeing their
        Results for reclamation); returns how many were dropped."""
        with self._lock:
            done = [jid for jid, job in self._jobs.items() if job.done()]
            for jid in done:
                del self._jobs[jid]
        return len(done)

    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, int]:
        """Snapshot of the shared compile-cache/service counters.

        Request accounting (submitted/coalesced/short-circuits) merged
        with the cache tiers' hit/miss/eviction/promotion counters —
        see :attr:`repro.core.CompileService.stats`.
        """
        return dict(self.compile_service.stats)

    @property
    def cache_path(self) -> Optional[str]:
        """Path of the attached persistent store, or ``None``."""
        return self.cache.store_path

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the job pool, the compile and execution services.

        With ``wait=True`` queued jobs finish first; the caches stay
        readable either way.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=wait)
        self.compile_service.shutdown(wait=wait)
        self.execution_service.shutdown(wait=wait)

    def __enter__(self) -> "QuantumProvider":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (f"<QuantumProvider devices={self.available_devices()} "
                f"jobs={self._job_counter}>")


_DEFAULT_PROVIDER: Optional[QuantumProvider] = None
_DEFAULT_LOCK = threading.Lock()


def provider(**options) -> QuantumProvider:
    """The process-wide default :class:`QuantumProvider`.

    With no arguments, returns one shared instance (created on first
    call) — the idiomatic entry point, so separate modules draw on the
    same caches and job registry.  Any keyword argument constructs a
    *fresh*, independent provider configured with it instead.
    """
    if options:
        return QuantumProvider(**options)
    global _DEFAULT_PROVIDER
    with _DEFAULT_LOCK:
        if _DEFAULT_PROVIDER is None:
            _DEFAULT_PROVIDER = QuantumProvider()
        return _DEFAULT_PROVIDER

"""The provider: device discovery, shared caches, and the job pool.

:class:`QuantumProvider` is the facade's root object.  It

- discovers execution targets (the built-in synthetic IBM devices plus
  anything registered with :meth:`~QuantumProvider.add_device`), handing
  out *one shared instance per name* so every backend built on a device
  shares its :class:`~repro.core.AllocationEngine` memos and
  :class:`~repro.transpiler.context.DeviceContext` tables;
- owns the shared :class:`~repro.core.ExecutionCache` and the
  :class:`~repro.core.CompileService` publishing into it, so compiles
  dedup across jobs, backends, and sessions;
- owns the job pool: every ``backend.run(...)`` returns an asynchronous
  :class:`~repro.service.Job` executing here, with stable provider-
  scoped ids resolvable through :meth:`~QuantumProvider.job`.

Most callers want the module-level :func:`provider` accessor::

    import repro

    backend = repro.provider().backend("ibm_toronto")
    job = backend.run(circuits, shots=4096, seed=7)
    result = job.result()
"""

from __future__ import annotations

import dataclasses
import difflib
import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.allocators import AllocationResult
from ..core.compile_service import CompileService
from ..core.execution_service import ExecutionService
from ..core.executor import _UNSET, ExecutionCache
from ..hardware.devices import (
    Device,
    ibm_manhattan,
    ibm_melbourne,
    ibm_toronto,
)
from ..hardware.fleet import DeviceFleet
from .backend import (
    BackendConfiguration,
    BaseBackend,
    CloudBackend,
    SimulatorBackend,
)
from .job import Job, JobStatus, _JobState
from .result import Result
from .retry import RetryPolicy, publication_allowed
from .session import Session
from .store import JobStore, StoredJob

__all__ = ["QuantumProvider", "UnknownDeviceError", "provider"]


class UnknownDeviceError(KeyError):
    """A device name that matches nothing the provider can resolve.

    Same contract as :class:`repro.core.UnknownAllocatorError`: a
    :class:`KeyError` subclass whose ``__str__`` is the plain message
    (not the repr-quoted default), naming the resolvable devices with a
    close-match suggestion for typos.
    """

    def __init__(self, name: str, known: Sequence[str]) -> None:
        hint = ""
        close = difflib.get_close_matches(name, known, n=1)
        if close:
            hint = f" — did you mean {close[0]!r}?"
        super().__init__(
            f"unknown device {name!r}; available: "
            f"{', '.join(repr(k) for k in known)}{hint}")
        self.name = name
        self.known = tuple(known)

    def __str__(self) -> str:
        return self.args[0]

#: Built-in synthetic devices, constructed lazily on first lookup.
_BUILTIN_DEVICES: Dict[str, Callable[[], Device]] = {
    "ibm_melbourne": ibm_melbourne,
    "ibm_toronto": ibm_toronto,
    "ibm_manhattan": ibm_manhattan,
}

#: Anything a backend target may be specified as.
DeviceLike = Union[str, Device]

#: Environment variable supplying the default persistent-store path.
_CACHE_PATH_ENV = "REPRO_CACHE_PATH"

#: Environment variable supplying the default durable job-store path.
_JOB_STORE_ENV = "REPRO_JOB_STORE"


class QuantumProvider:
    """Entry point of the service facade.

    Parameters
    ----------
    devices:
        Extra devices to register at construction (on top of the
        built-ins), addressable by their ``Device.name``.
    compile_mode:
        Worker routing of the shared :class:`CompileService` —
        ``"auto"`` (default; per-batch serial/thread/process choice),
        or an explicit route.
    compile_workers:
        Compile pool size (``None`` = executor default).
    cache_entries:
        LRU bound on the shared :class:`ExecutionCache`'s in-memory
        tables.  When omitted, a generous default cap applies (4096,
        overridable via ``REPRO_CACHE_MAX_ENTRIES``); an explicit
        ``None`` is unbounded.
    cache_path:
        Location of a persistent on-disk compile-artifact store (SQLite
        WAL, shared across processes): compiled equivalence classes
        survive provider restarts and dedup across concurrent
        providers.  When omitted, the ``REPRO_CACHE_PATH`` environment
        variable is consulted; unset means in-memory caching only.
    execution_mode:
        Worker routing of the shared
        :class:`~repro.core.ExecutionService` that every backend's
        simulations run through — ``"auto"`` (default; per-batch
        serial/thread/process choice from the measured crossover
        table), or an explicit route.  Sharded execution is
        bit-identical to the serial path regardless of the route.
    execution_workers:
        Execution pool size (``None`` = executor default).
    job_workers:
        Job pool width.  Defaults to 1, which keeps shared-cache
        statistics and engine memo growth deterministic.  With the
        execution service routing simulations to a *process* pool the
        GIL no longer serializes jobs, so raising this makes concurrent
        jobs genuinely overlap — speculative duplicate submissions
        (hedged racing at the job level) need it.
    job_history:
        Bound on the job registry.  Finished jobs beyond it (oldest
        first) are evicted so their Results can be reclaimed —
        ``provider.job(old_id)`` then raises KeyError (unless a durable
        store still holds the result, which :meth:`job` falls back to).
        ``None`` (default) keeps every handle, which is fine
        interactively but grows without bound in a long-lived service;
        set it (like *cache_entries*) for service deployments.
    store_path:
        Location of a durable :class:`~repro.service.JobStore` (SQLite
        WAL).  Every submission, status transition, and completed
        ``Result`` payload is persisted there, and a fresh provider
        opened on the same store **resumes**: completed results are
        re-served bit-identically, and jobs that were QUEUED/RUNNING
        at crash time are re-queued from their stored replay specs.
        When omitted, the ``REPRO_JOB_STORE`` environment variable is
        consulted; unset means in-memory jobs only.
    retry_policy:
        A :class:`~repro.service.RetryPolicy` applied to every job:
        failed attempts retry with deterministic exponential backoff,
        optionally bounded by a per-attempt timeout.  ``None``
        (default) runs each job exactly once.
    """

    def __init__(
        self,
        devices: Sequence[Device] = (),
        compile_mode: str = "auto",
        compile_workers: Optional[int] = None,
        cache_entries=_UNSET,
        cache_path: Optional[str] = None,
        execution_mode: str = "auto",
        execution_workers: Optional[int] = None,
        job_workers: int = 1,
        job_history: Optional[int] = None,
        store_path: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if job_workers < 1:
            raise ValueError("job_workers must be at least 1")
        if job_history is not None and job_history < 1:
            raise ValueError("job_history must be at least 1")
        self.job_history = job_history
        self.retry_policy = retry_policy
        # The lock guards device registration and the job registry; it
        # must exist before the first add_device call below.
        self._lock = threading.Lock()
        self._devices: "OrderedDict[str, Device]" = OrderedDict()
        for device in devices:
            self.add_device(device)
        if cache_path is None:
            cache_path = os.environ.get(_CACHE_PATH_ENV) or None
        self.cache = ExecutionCache(max_entries=cache_entries,
                                    store_path=cache_path)
        # Attempts abandoned by a retry timeout keep running on their
        # daemon threads; the fence gate stops them from publishing
        # stale artifacts into the shared cache (no-op for unfenced
        # threads, so this costs nothing without a retry policy).
        self.cache.write_gate = publication_allowed
        self.compile_service = CompileService(
            max_workers=compile_workers, mode=compile_mode,
            cache=self.cache)
        self.execution_service = ExecutionService(
            max_workers=execution_workers, mode=execution_mode)
        self._pool = ThreadPoolExecutor(
            max_workers=job_workers, thread_name_prefix="repro-job")
        self._job_counter = 0
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._closed = False
        # Resume bookkeeping: while _resume_id is set, _submit_job
        # reuses that id instead of allocating a fresh one (only ever
        # set from __init__, before any concurrent submission exists).
        self._resume_id: Optional[str] = None
        self._resume_number = 0
        self._store: Optional[JobStore] = None
        if store_path is None:
            store_path = os.environ.get(_JOB_STORE_ENV) or None
        if store_path is not None:
            self._store = JobStore(store_path)
            self._job_counter = self._store.max_job_number()
            self._recover()

    # ------------------------------------------------------------------
    # device discovery
    # ------------------------------------------------------------------
    def available_devices(self) -> List[str]:
        """Names resolvable by :meth:`device` (built-ins + registered)."""
        with self._lock:
            names = set(_BUILTIN_DEVICES) | set(self._devices)
        return sorted(names)

    def device(self, name: str) -> Device:
        """The shared instance registered under *name*.

        Built-in devices are constructed once on first lookup and then
        reused, so every backend on ``"ibm_toronto"`` shares one
        instance — and with it the allocation-engine memos and
        compilation context.  Thread-safe: concurrent first lookups
        resolve to one instance.
        """
        with self._lock:
            found = self._devices.get(name)
            if found is not None:
                return found
            factory = _BUILTIN_DEVICES.get(name)
            if factory is None:
                names = sorted(set(_BUILTIN_DEVICES) | set(self._devices))
                raise UnknownDeviceError(name, names)
            device = factory()
            self._devices[name] = device
            return device

    def add_device(self, device: Device, name: Optional[str] = None
                   ) -> str:
        """Register *device* (under *name* or ``device.name``)."""
        key = name or device.name
        with self._lock:
            existing = self._devices.get(key)
            if existing is not None and existing is not device:
                raise ValueError(f"device {key!r} is already registered")
            self._devices[key] = device
        return key

    def _resolve_device(self, target: DeviceLike) -> Device:
        """Name -> registered instance; Device -> used as-is.

        A passed instance is opportunistically registered, but only if
        its name is still free: twin devices sharing one name (e.g. two
        differently-seeded Torontos in a benchmark fleet) stay usable
        without colliding — the explicitly passed instance always wins
        for *this* backend, and :meth:`device` keeps resolving the name
        to whichever instance claimed it first.
        """
        if isinstance(target, Device):
            with self._lock:
                self._devices.setdefault(target.name, target)
            return target
        return self.device(target)

    # ------------------------------------------------------------------
    # backends
    # ------------------------------------------------------------------
    def backends(self) -> List[str]:
        """Names :meth:`backend` / :meth:`simulator` accept."""
        return self.available_devices()

    def backend(self, target: DeviceLike = "ibm_toronto",
                **config) -> CloudBackend:
        """A cloud (scheduler-backed) backend on one device.

        Keyword arguments configure the target
        (:class:`~repro.service.BackendConfiguration` fields:
        ``allocator``, ``fidelity_threshold``, ``batch_window_ns``,
        ``shots``, ...).
        """
        device = self._resolve_device(target)
        return CloudBackend(device.name, self, DeviceFleet(device),
                            BackendConfiguration(**config))

    def get_backend(self, target: DeviceLike = "ibm_toronto",
                    **config) -> CloudBackend:
        """Alias of :meth:`backend` (the Qiskit-style accessor name)."""
        return self.backend(target, **config)

    def simulator(self, target: DeviceLike = "ibm_toronto",
                  **config) -> SimulatorBackend:
        """A direct-execution backend on one device (no queue model)."""
        device = self._resolve_device(target)
        return SimulatorBackend(f"{device.name}-simulator", self, device,
                                BackendConfiguration(**config))

    def fleet_backend(self, targets: Sequence[DeviceLike],
                      policy: str = "least_loaded",
                      name: Optional[str] = None,
                      **config) -> CloudBackend:
        """A cloud backend over a multi-device fleet.

        *policy* is the fleet placement policy (``round_robin`` /
        ``least_loaded`` / ``best_fidelity``).
        """
        devices = [self._resolve_device(t) for t in targets]
        fleet = DeviceFleet(devices, policy=policy)
        label = name or "fleet[" + ",".join(d.name for d in devices) + "]"
        return CloudBackend(label, self, fleet,
                            BackendConfiguration(**config))

    def session(self, backend: Union[BaseBackend, DeviceLike,
                                     None] = None,
                **kwargs) -> Session:
        """Open a :class:`Session` pinned to *backend*.

        *backend* may be an existing backend object or a device name
        (wrapped as a cloud backend); extra keyword arguments go to the
        :class:`Session` constructor (``shots``, ``seed``, ``warm``).
        """
        if backend is None or isinstance(backend, (str, Device)):
            backend = self.backend(backend or "ibm_toronto")
        return Session(backend, **kwargs)

    # ------------------------------------------------------------------
    # resume-on-restart
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild the job registry from the durable store.

        Finished jobs come back as resolved handles (completed results
        re-served **bit-identically** from their stored payloads);
        QUEUED/RUNNING/RETRYING jobs — interrupted by whatever killed
        the previous provider — are re-queued from their replay specs
        under their original ids.
        """
        assert self._store is not None
        for record in self._store.jobs():
            if record.is_pending:
                self._resume_record(record)
            else:
                self._jobs[record.job_id] = self._rehydrated_handle(
                    record)

    @staticmethod
    def _rehydrated_handle(record: StoredJob) -> Job:
        """A resolved job handle for a stored final-state record."""
        # Local import: admission sits above the job/store primitives
        # this module already uses, and importing it at module scope
        # would cycle through the service package init.
        from .admission import OverloadedError, QuotaExceededError

        future: "Future[Result]" = Future()
        state = _JobState()
        state.attempts = record.attempts
        if record.status == "done" and record.result is not None:
            future.set_result(Result.from_dict(record.result))
        elif record.status == "cancelled":
            future.cancel()
        elif record.status in ("shed", "rejected"):
            # Admission refusals rehydrate as their typed errors, so a
            # restarted gateway reports the same refusal the original
            # caller saw — and never re-queues the work.
            cls = (OverloadedError if record.status == "shed"
                   else QuotaExceededError)
            future.set_exception(cls(
                record.error
                or f"job {record.job_id} was {record.status} "
                   "by admission control"))
            return Job(record.job_id, record.backend_name, future,
                       state=state,
                       final_status=JobStatus(record.status))
        else:
            future.set_exception(RuntimeError(
                record.error
                or f"job {record.job_id} failed before restart"))
        return Job(record.job_id, record.backend_name, future,
                   state=state)

    def _resume_record(self, record: StoredJob) -> None:
        """Re-queue one interrupted job from its stored replay spec."""
        spec = None
        if record.spec is not None:
            try:
                spec = pickle.loads(record.spec)
            except Exception:  # noqa: BLE001 - damaged spec = no replay
                spec = None
        if spec is None:
            assert self._store is not None
            error = ("interrupted before completion and not "
                     "replayable (no usable replay spec)")
            self._store.record_transition(record.job_id, "error",
                                          error=error)
            future: "Future[Result]" = Future()
            future.set_exception(RuntimeError(
                f"job {record.job_id} was {error}"))
            self._jobs[record.job_id] = Job(
                record.job_id, record.backend_name, future)
            return
        self._resume_id = record.job_id
        self._resume_number = record.job_number
        try:
            cfg = spec["configuration"]
            if spec["kind"] == "simulator":
                backend: BaseBackend = SimulatorBackend(
                    spec["backend_name"], self, spec["device"], cfg)
                payload = spec["payload"]
                if isinstance(payload, AllocationResult):
                    # The backend wraps the unpickled allocation's own
                    # device instance, satisfying run()'s identity check.
                    backend.run(payload, seed=spec["seed"])
                else:
                    backend.run(payload, seed=spec["seed"],
                                allocator=spec["allocator"])
            else:
                backend = CloudBackend(
                    spec["backend_name"], self, spec["fleet"], cfg)
                backend.run(spec["submissions"], seed=spec["seed"],
                            allocator=spec["allocator"],
                            execute=spec["execute"])
        finally:
            self._resume_id = None
            self._resume_number = 0

    # ------------------------------------------------------------------
    # the job pool
    # ------------------------------------------------------------------
    def reserve_job_id(self) -> "tuple[str, int]":
        """Allocate the next ``(job_id, job_number)`` without queueing.

        The gateway uses this for submissions refused at admission: the
        refusal gets a real provider-sequence id (recorded terminally in
        the store via :meth:`JobStore.record_refusal`), so accepted and
        refused work share one id space and the durable history orders
        them exactly as they arrived.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("provider is shut down")
            self._job_counter += 1
            number = self._job_counter
            return f"job-{number:06d}", number

    def _submit_job(self, backend: BaseBackend,
                    fn: Callable[[str], Result],
                    spec: Optional[dict] = None) -> Job:
        """Allocate an id, queue *fn* on the pool, return the handle.

        *spec* is the submission's replay recipe — pickled into the
        durable store (when one is attached) so a restarted provider
        can re-run the job; ``None`` marks it non-replayable.
        """
        store = self._store
        with self._lock:
            if self._closed:
                raise RuntimeError("provider is shut down")
            if self._resume_id is not None:
                job_id, number = self._resume_id, self._resume_number
            else:
                self._job_counter += 1
                number = self._job_counter
                job_id = f"job-{number:06d}"
        if store is not None:
            blob = None
            if spec is not None:
                try:
                    blob = pickle.dumps(spec)
                except Exception:  # noqa: BLE001 - best-effort durability
                    blob = None
            store.record_submission(job_id, number, backend.name, blob)
        state = _JobState()
        future = self._pool.submit(self._run_job, fn, job_id, state)
        on_cancel = None
        if store is not None:
            def on_cancel(job_id=job_id):  # noqa: E731 - closure per job
                store.record_transition(job_id, "cancelled")
        job = Job(job_id, backend, future, state=state,
                  on_cancel=on_cancel)
        with self._lock:
            self._jobs[job_id] = job
            if self.job_history is not None:
                # Evict oldest *finished* handles past the bound; live
                # jobs are never dropped, so the registry can exceed
                # the bound only by the number of in-flight jobs.
                excess = len(self._jobs) - self.job_history
                if excess > 0:
                    for jid in [jid for jid, j in self._jobs.items()
                                if j.done()][:excess]:
                        del self._jobs[jid]
        return job

    def _run_job(self, fn: Callable[[str], Result], job_id: str,
                 state: _JobState) -> Result:
        """Pool-side wrapper: retry policy + durable transitions."""
        policy = self.retry_policy
        store = self._store
        max_attempts = policy.max_attempts if policy is not None else 1
        for attempt in range(1, max_attempts + 1):
            state.attempts = attempt
            state.retrying = False
            if store is not None:
                store.record_transition(job_id, "running",
                                        attempt=attempt)
            try:
                if policy is not None:
                    result = policy.run_attempt(
                        lambda: fn(job_id), job_id, attempt)
                else:
                    result = fn(job_id)
            except BaseException as exc:
                state.last_error = exc
                if (policy is None or attempt >= max_attempts
                        or not policy.retries(exc)):
                    if store is not None:
                        store.record_transition(job_id, "error",
                                                attempt=attempt,
                                                error=str(exc))
                    raise
                state.retrying = True
                if store is not None:
                    store.record_transition(job_id, "retrying",
                                            attempt=attempt,
                                            error=str(exc))
                time.sleep(policy.delay_s(job_id, attempt))
                continue
            if attempt > 1 and isinstance(result, Result):
                result.metadata = dataclasses.replace(
                    result.metadata, attempts=attempt)
            if store is not None:
                store.record_transition(job_id, "done", attempt=attempt)
                if isinstance(result, Result):
                    store.record_result(job_id, result.to_dict())
            return result
        raise AssertionError("unreachable")  # pragma: no cover

    def job(self, job_id: str) -> Job:
        """Resolve a handle by its stable id.

        Handles evicted from the registry (``job_history``) are
        transparently rebuilt from the durable store when one is
        attached and still holds the job.
        """
        with self._lock:
            found = self._jobs.get(job_id)
        if found is None and self._store is not None:
            record = self._store.get(job_id)
            if record is not None and not record.is_pending:
                return self._rehydrated_handle(record)
        if found is None:
            raise KeyError(f"unknown job id {job_id!r}")
        return found

    def jobs(self) -> List[Job]:
        """Every retained handle, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    def retire_finished(self) -> int:
        """Drop every finished handle from the registry (freeing their
        Results for reclamation); returns how many were dropped."""
        with self._lock:
            done = [jid for jid, job in self._jobs.items() if job.done()]
            for jid in done:
                del self._jobs[jid]
        return len(done)

    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, int]:
        """Snapshot of the shared compile-cache/service counters.

        Request accounting (submitted/coalesced/short-circuits) merged
        with the cache tiers' hit/miss/eviction/promotion counters —
        see :attr:`repro.core.CompileService.stats`.
        """
        return dict(self.compile_service.stats)

    @property
    def cache_path(self) -> Optional[str]:
        """Path of the attached persistent store, or ``None``."""
        return self.cache.store_path

    @property
    def store(self) -> Optional[JobStore]:
        """The attached durable job store, or ``None``."""
        return self._store

    @property
    def store_path(self) -> Optional[str]:
        """Path of the attached durable job store, or ``None``."""
        return None if self._store is None else self._store.path

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the job pool, the compile and execution services.

        With ``wait=True`` queued jobs drain: everything already
        submitted finishes (and lands in the store) first.  With
        ``wait=False`` queued-but-unstarted jobs are **cancelled
        deterministically**, in submission order, and recorded as
        CANCELLED in the durable store — never left QUEUED to be
        silently re-run by the next resume.  Running jobs cannot be
        interrupted either way (the kernels hold no cancellation
        points); ``wait=False`` simply stops waiting for them.  The
        caches stay readable either way.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            jobs = list(self._jobs.values())
        if not wait:
            # Cancel in submission order so the store's transition
            # history — and therefore what a resume sees — does not
            # depend on pool-thread timing.
            for job in jobs:
                job.cancel()
            self._pool.shutdown(wait=False, cancel_futures=True)
        else:
            self._pool.shutdown(wait=True)
        self.compile_service.shutdown(wait=wait)
        self.execution_service.shutdown(wait=wait)
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "QuantumProvider":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (f"<QuantumProvider devices={self.available_devices()} "
                f"jobs={self._job_counter}>")


_DEFAULT_PROVIDER: Optional[QuantumProvider] = None
_DEFAULT_LOCK = threading.Lock()


def provider(**options) -> QuantumProvider:
    """The process-wide default :class:`QuantumProvider`.

    With no arguments, returns one shared instance (created on first
    call) — the idiomatic entry point, so separate modules draw on the
    same caches and job registry.  Any keyword argument constructs a
    *fresh*, independent provider configured with it instead.
    """
    if options:
        return QuantumProvider(**options)
    global _DEFAULT_PROVIDER
    with _DEFAULT_LOCK:
        if _DEFAULT_PROVIDER is None:
            _DEFAULT_PROVIDER = QuantumProvider()
        return _DEFAULT_PROVIDER

"""Sessions: a pinned backend plus warm caches for iterative workloads.

Variational loops (VQE, QAOA) submit near-identical programs hundreds
of times.  A :class:`Session` pins one backend, pre-builds its devices'
compilation tables up front (instead of on the first run's critical
path), carries per-session defaults (shots, a base seed spawned into
independent per-run streams), and collects every handle it submitted in
a :class:`~repro.service.JobSet`::

    with provider.session("ibm_manhattan", shots=4096, seed=7) as sess:
        for theta in thetas:
            sess.run(ansatz_circuits(theta))
        energies = [estimate(r) for r in sess.results()]

Closing the session waits for its jobs; the backend and the provider's
caches — now warm with every transpiled circuit — stay usable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from ..sim.readout import SeedLike
from .job import Job, JobSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .backend import BaseBackend
    from .result import Result

__all__ = ["Session"]


class Session:
    """Iterative-workload context over one backend.

    Parameters
    ----------
    backend:
        The pinned backend; every :meth:`run` goes to it.
    shots:
        Session-wide default shot count (falls back to the backend's
        configuration when ``None``).
    seed:
        Base seed for runs that don't pass their own: each such run
        gets an independent child stream (spawned in submission order,
        so a re-run of the same session is bit-reproducible).  ``None``
        leaves unseeded runs unseeded.
    warm:
        Pre-build the backend devices' compilation tables now (default)
        instead of on the first run.
    """

    def __init__(self, backend: "BaseBackend",
                 shots: Optional[int] = None,
                 seed: SeedLike = None,
                 warm: bool = True) -> None:
        self._backend = backend
        self._shots = shots
        self._seed_seq: Optional[np.random.SeedSequence] = None
        if seed is not None:
            self._seed_seq = (seed if isinstance(seed,
                                                 np.random.SeedSequence)
                              else np.random.SeedSequence(seed))
        self._spawned = 0
        self._jobs = JobSet()
        self._closed = False
        if warm:
            backend.warm()

    # ------------------------------------------------------------------
    @property
    def backend(self) -> "BaseBackend":
        """The pinned backend."""
        return self._backend

    @property
    def jobs(self) -> JobSet:
        """Every job submitted through this session, in order."""
        return self._jobs

    #: Session-private spawn-key namespace ("SESS").  Distinct from both
    #: SeedSequence.spawn's keys (plain counters) and spawn_seeds' batch
    #: namespace (0x9E3779B9), so session run streams can never collide
    #: with a caller spawning on the same SeedSequence object or with
    #: the per-job children run_batch derives further down.
    _SPAWN_NAMESPACE = 0x53455353

    def _next_seed(self) -> SeedLike:
        if self._seed_seq is None:
            return None
        # Children come from the session's private namespace: run i
        # always gets the same stream, independent of anything else
        # derived from the same base SeedSequence.
        child = np.random.SeedSequence(
            entropy=self._seed_seq.entropy,
            spawn_key=(tuple(self._seed_seq.spawn_key)
                       + (self._SPAWN_NAMESPACE, self._spawned)))
        self._spawned += 1
        return child

    # ------------------------------------------------------------------
    def run(self, circuits, shots: Optional[int] = None,
            seed: SeedLike = None, **kwargs) -> Job:
        """Submit through the pinned backend with session defaults.

        *shots* falls back to the session default, *seed* to the next
        child of the session seed; everything else is forwarded to the
        backend's ``run``.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        job = self._backend.run(
            circuits,
            shots=self._shots if shots is None else shots,
            seed=self._next_seed() if seed is None else seed,
            **kwargs)
        self._jobs.add(job)
        return job

    def results(self, timeout: Optional[float] = None) -> "List[Result]":
        """Block for every session job's result, in submission order."""
        return self._jobs.results(timeout)

    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """End the session; with ``wait=True`` block for its jobs.

        The backend and provider outlive the session — only further
        :meth:`run` calls through *this* session are refused.
        """
        if self._closed:
            return
        self._closed = True
        if wait:
            self._jobs.wait()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"<Session on {self._backend.name!r}: "
                f"{len(self._jobs)} jobs, {state}>")

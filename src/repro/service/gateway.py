"""The multi-tenant gateway: a JSON shim where quotas get enforced.

:class:`Gateway` is the service's front door — a thin, dependency-free
adapter between JSON-shaped requests and the provider stack.  It is a
*plain callable app*: every operation takes and returns JSON-safe
dicts, and :meth:`Gateway.handle` dispatches ``{"op": ...}`` envelopes,
so the same object backs an in-process client, a test harness, or a
trivial ``http.server`` loop without new dependencies.

What the gateway adds over calling ``backend.run`` directly:

- **Authentication**: every request carries a bearer *token*; tokens
  map to user names, and a ticket can only be queried or cancelled by
  the user who submitted it.
- **Admission** (:class:`~repro.service.AdmissionController`): each
  submission is admitted or refused *at the door*, on the virtual
  clock of its declared ``arrival_ns``.  Refusals come back as
  structured JSON (error type, reason, ``retry_after_ns`` hint) and
  are persisted terminally in the :class:`~repro.service.JobStore` as
  ``SHED``/``REJECTED`` — a restart never re-queues refused work.
- **Batched service**: accepted submissions buffer as *tickets* and
  :meth:`Gateway.flush` submits them as **one** carrier job through
  :meth:`CloudBackend.run`, so the discrete-event scheduler sees the
  whole accepted stream contending — same admission, batching, and
  dispatch physics as a direct scheduler call, and the carrier's
  replay spec makes the accepted work durable.

Determinism: admission decisions depend only on (policy, cost model,
arrival stream).  Replaying the same submissions through a fresh
gateway reproduces the identical accept/shed/reject partition, ticket
ids included — the property the overload CI job asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..circuits.circuit import QuantumCircuit
from ..core.scheduler import SubmittedProgram, json_safe_num
from ..sim.readout import SeedLike
from .admission import AdmissionController, AdmissionDecision, \
    AdmissionPolicy, CostModel
from .backend import CloudBackend
from .job import Job

__all__ = ["Gateway", "GatewayTicket"]


@dataclass
class GatewayTicket:
    """One gateway submission: identity, verdict, and (if accepted)
    where its programs landed in the carrier job."""

    job_id: str
    user: str
    circuits: List[QuantumCircuit]
    arrival_ns: float
    deadline_ns: Optional[float]
    decision: AdmissionDecision
    #: Set by :meth:`Gateway.flush` for accepted tickets.
    carrier: Optional[Job] = None
    #: ``[start, stop)`` program indices inside the carrier job.
    span: Optional[Tuple[int, int]] = None
    cancelled: bool = False
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def accepted(self) -> bool:
        return self.decision.admitted


def _as_circuits(circuits: Union[QuantumCircuit, Sequence[QuantumCircuit]]
                 ) -> List[QuantumCircuit]:
    if isinstance(circuits, QuantumCircuit):
        return [circuits]
    out = list(circuits)
    if not all(isinstance(c, QuantumCircuit) for c in out):
        raise TypeError("submission circuits must be QuantumCircuits")
    return out


class Gateway:
    """Submit/status/result/cancel over one :class:`CloudBackend`.

    *tokens* maps bearer token -> user name (the enforcement boundary:
    a caller can only spend the quota of the user its token names).
    *policy* configures quotas and shedding thresholds; the cost model
    is built from the backend's fleet and configured job overhead, so
    admission prices work with the same measured tables the scheduler
    dispatches with.
    """

    def __init__(self, backend: CloudBackend, policy: AdmissionPolicy,
                 tokens: Mapping[str, str],
                 shots: Optional[int] = None,
                 execute: bool = True) -> None:
        if not tokens:
            raise ValueError("the gateway needs at least one auth token")
        self.backend = backend
        self.provider = backend.provider
        self.controller = AdmissionController(
            policy,
            CostModel(backend.fleet,
                      backend.configuration.job_overhead_ns))
        self._tokens = dict(tokens)
        self._shots = shots
        self._execute = execute
        self._tickets: Dict[str, GatewayTicket] = {}
        self._pending: List[str] = []
        self._carriers: List[Job] = []
        self.counts: Dict[str, int] = {
            "submitted": 0, "accepted": 0, "shed": 0,
            "rejected": 0, "auth_failed": 0}

    # ------------------------------------------------------------------
    # auth
    # ------------------------------------------------------------------
    def _authenticate(self, token: Optional[str]) -> Optional[str]:
        """The user a token names, or ``None`` (counted) if invalid."""
        user = self._tokens.get(token) if token else None
        if user is None:
            self.counts["auth_failed"] += 1
        return user

    @staticmethod
    def _auth_error() -> Dict[str, object]:
        return {"ok": False, "error": "AuthError",
                "reason": "unknown or missing auth token"}

    def _owned(self, user: str, job_id: str
               ) -> Union[GatewayTicket, Dict[str, object]]:
        ticket = self._tickets.get(job_id)
        if ticket is None:
            return {"ok": False, "error": "UnknownJobError",
                    "reason": f"no such job {job_id!r}"}
        if ticket.user != user:
            # Deliberately the same shape as an unknown id: a foreign
            # token cannot probe which job ids exist.
            return {"ok": False, "error": "UnknownJobError",
                    "reason": f"no such job {job_id!r}"}
        return ticket

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def submit(self, token: str,
               circuits: Union[QuantumCircuit, Sequence[QuantumCircuit]],
               arrival_ns: float,
               deadline_ns: Optional[float] = None) -> Dict[str, object]:
        """Admit or refuse one submission at virtual time *arrival_ns*.

        Accepted submissions return ``{"ok": True, "job_id", "status":
        "queued", ...}`` and buffer until :meth:`flush`.  Refused ones
        return ``{"ok": False, ...}`` with the typed error name,
        reason, and ``retry_after_ns`` hint, and are persisted
        terminally in the job store under the same id space as real
        jobs.
        """
        user = self._authenticate(token)
        if user is None:
            return self._auth_error()
        batch = _as_circuits(circuits)
        decision = self.controller.decide(user, batch, arrival_ns,
                                          deadline_ns)
        job_id, number = self.provider.reserve_job_id()
        ticket = GatewayTicket(
            job_id=job_id, user=user, circuits=batch,
            arrival_ns=float(arrival_ns), deadline_ns=deadline_ns,
            decision=decision)
        self._tickets[job_id] = ticket
        self.counts["submitted"] += 1
        if not decision.admitted:
            self.counts[decision.status] += 1
            store = self.provider.store
            if store is not None:
                store.record_refusal(job_id, number, self.backend.name,
                                     decision.status, decision.reason)
            error = decision.error()
            payload = error.to_dict() if error is not None else {}
            payload.update({"ok": False, "job_id": job_id,
                            "decision": decision.to_dict()})
            return payload
        self.counts["accepted"] += 1
        self._pending.append(job_id)
        return {
            "ok": True,
            "job_id": job_id,
            "status": "queued",
            "user": user,
            "priority_class": decision.priority_class,
            "priority": decision.priority,
            "est_wait_ns": float(decision.est_wait_ns),
            "num_programs": len(batch),
        }

    def flush(self, seed: SeedLike = None) -> Dict[str, object]:
        """Submit every buffered accepted ticket as one carrier job.

        The scheduler sees the whole accepted stream at once — real
        arrival times, users, and priority-class priorities — so
        contention, batching, and breaker behaviour match a direct
        :meth:`CloudScheduler.schedule` call on the accepted traffic.
        No-op (``carrier_job_id: None``) when nothing is buffered.
        """
        if not self._pending:
            return {"ok": True, "carrier_job_id": None, "programs": 0}
        subs: List[SubmittedProgram] = []
        spans: List[Tuple[str, int, int]] = []
        for job_id in self._pending:
            ticket = self._tickets[job_id]
            start = len(subs)
            for circuit in ticket.circuits:
                subs.append(SubmittedProgram(
                    circuit=circuit,
                    arrival_ns=ticket.arrival_ns,
                    user=ticket.user,
                    priority=int(ticket.decision.priority or 0),
                ))
            spans.append((job_id, start, len(subs)))
        carrier = self.backend.run(subs, shots=self._shots, seed=seed,
                                   execute=self._execute)
        for job_id, start, stop in spans:
            ticket = self._tickets[job_id]
            ticket.carrier = carrier
            ticket.span = (start, stop)
        self._carriers.append(carrier)
        self._pending.clear()
        return {"ok": True, "carrier_job_id": carrier.job_id,
                "programs": len(subs), "tickets": len(spans)}

    def status(self, token: str, job_id: str) -> Dict[str, object]:
        """Lifecycle state of one ticket (non-blocking)."""
        user = self._authenticate(token)
        if user is None:
            return self._auth_error()
        ticket = self._owned(user, job_id)
        if isinstance(ticket, dict):
            return ticket
        return {"ok": True, "job_id": job_id,
                "status": self._ticket_status(ticket),
                "priority_class": ticket.decision.priority_class}

    def result(self, token: str, job_id: str,
               timeout: Optional[float] = None) -> Dict[str, object]:
        """Block for one ticket's result (its slice of the carrier).

        Refused tickets return their stored refusal (with the
        retry-after hint); accepted-but-unflushed tickets report
        ``not ready``; carrier failures surface the carrier's error.
        """
        user = self._authenticate(token)
        if user is None:
            return self._auth_error()
        ticket = self._owned(user, job_id)
        if isinstance(ticket, dict):
            return ticket
        decision = ticket.decision
        if not decision.admitted:
            error = decision.error()
            payload = error.to_dict() if error is not None else {}
            payload.update({"ok": False, "job_id": job_id,
                            "status": decision.status})
            return payload
        if ticket.cancelled:
            return {"ok": False, "job_id": job_id, "status": "cancelled",
                    "error": "CancelledError",
                    "reason": "ticket was cancelled before service"}
        if ticket.carrier is None:
            return {"ok": False, "job_id": job_id, "status": "queued",
                    "error": "NotReadyError",
                    "reason": "accepted but not yet flushed to the "
                              "scheduler; call flush first"}
        try:
            result = ticket.carrier.result(timeout)
        except Exception as exc:  # noqa: BLE001 - serialized to JSON
            return {"ok": False, "job_id": job_id, "status": "error",
                    "error": type(exc).__name__, "reason": str(exc)}
        start, stop = ticket.span or (0, 0)
        programs = [p.to_dict() for p in result.programs[start:stop]]
        if programs:
            turnarounds = [json_safe_num(p.get("turnaround_ns"))
                           for p in programs]
        else:
            # Schedule-only carriers (execute=False) have no program
            # results; queue timings still exist in the schedule.
            completion = getattr(result.schedule, "completion_ns", {})
            turnarounds = [
                (None if completion.get(i) is None
                 else float(completion[i]) - ticket.arrival_ns)
                for i in range(start, stop)]
        return {
            "ok": True,
            "job_id": job_id,
            "status": "done",
            "carrier_job_id": ticket.carrier.job_id,
            "programs": programs,
            "turnaround_ns": turnarounds,
        }

    def cancel(self, token: str, job_id: str) -> Dict[str, object]:
        """Cancel an accepted ticket that has not been flushed yet.

        Tickets already handed to the scheduler (or already refused)
        cannot be cancelled; the response says which.
        """
        user = self._authenticate(token)
        if user is None:
            return self._auth_error()
        ticket = self._owned(user, job_id)
        if isinstance(ticket, dict):
            return ticket
        if not ticket.decision.admitted:
            return {"ok": False, "job_id": job_id,
                    "status": ticket.decision.status,
                    "reason": "already terminal (refused at admission)"}
        if ticket.cancelled:
            return {"ok": True, "job_id": job_id, "status": "cancelled"}
        if ticket.carrier is not None:
            return {"ok": False, "job_id": job_id,
                    "status": self._ticket_status(ticket),
                    "reason": "already flushed to the scheduler; the "
                              "carrier job cannot drop one program"}
        ticket.cancelled = True
        self._pending.remove(job_id)
        return {"ok": True, "job_id": job_id, "status": "cancelled"}

    def summary(self) -> Dict[str, object]:
        """Gateway counters + the admission controller's breakdown.

        ``counts`` satisfies the shed-accounting invariant:
        ``accepted + shed + rejected == submitted`` (auth failures are
        turned away before counting as submissions).
        """
        return {
            "ok": True,
            "counts": dict(self.counts),
            "admission": self.controller.summary(),
            "pending": len(self._pending),
            "carriers": [job.job_id for job in self._carriers],
        }

    # ------------------------------------------------------------------
    def _ticket_status(self, ticket: GatewayTicket) -> str:
        if not ticket.decision.admitted:
            return ticket.decision.status
        if ticket.cancelled:
            return "cancelled"
        if ticket.carrier is None:
            return "queued"
        return ticket.carrier.status().value

    def ticket(self, job_id: str) -> GatewayTicket:
        """Internal/testing access to a ticket (no auth)."""
        return self._tickets[job_id]

    @property
    def carriers(self) -> List[Job]:
        """Carrier jobs flushed so far, in flush order."""
        return list(self._carriers)

    # ------------------------------------------------------------------
    # the JSON envelope app
    # ------------------------------------------------------------------
    def handle(self, request: Mapping[str, object]) -> Dict[str, object]:
        """Dispatch one ``{"op": ...}`` envelope — the callable app.

        Ops: ``submit`` (token, circuits, arrival_ns, [deadline_ns]),
        ``status``/``result``/``cancel`` (token, job_id), ``flush``
        ([seed]), ``summary``.  Unknown ops and bad payloads come back
        as structured errors, never exceptions — the shim's contract
        with a transport loop.
        """
        op = request.get("op")
        try:
            if op == "submit":
                return self.submit(
                    request.get("token"),  # type: ignore[arg-type]
                    request["circuits"],   # type: ignore[arg-type]
                    float(request["arrival_ns"]),  # type: ignore[arg-type]
                    request.get("deadline_ns"))    # type: ignore[arg-type]
            if op == "status":
                return self.status(request.get("token"),  # type: ignore[arg-type]
                                   str(request.get("job_id")))
            if op == "result":
                return self.result(request.get("token"),  # type: ignore[arg-type]
                                   str(request.get("job_id")),
                                   request.get("timeout"))  # type: ignore[arg-type]
            if op == "cancel":
                return self.cancel(request.get("token"),  # type: ignore[arg-type]
                                   str(request.get("job_id")))
            if op == "flush":
                return self.flush(request.get("seed"))  # type: ignore[arg-type]
            if op == "summary":
                return self.summary()
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": type(exc).__name__,
                    "reason": str(exc)}
        return {"ok": False, "error": "UnknownOpError",
                "reason": f"unknown op {op!r}; expected one of "
                          "submit/status/result/cancel/flush/summary"}

"""SWAP-insertion routing.

Processes instructions in order, tracking the live logical->physical
layout.  When a 2q gate lands on non-adjacent physical qubits, SWAPs are
inserted along the most *reliable* shortest path (error-weighted Dijkstra
over the calibration data), moving one operand next to the other.

The emitted circuit is expressed over physical qubit indices; measurements
are remapped through the live layout at the point they occur.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..circuits.circuit import Instruction, QuantumCircuit
from ..circuits.gates import Gate, gate
from ..hardware.calibration import Calibration
from ..hardware.topology import CouplingMap
from .context import DeviceContext, device_context
from .layout import Layout

__all__ = ["RoutedCircuit", "route_circuit"]


@dataclass
class RoutedCircuit:
    """Routing output: the physical circuit plus both layouts."""

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    num_swaps: int


def route_circuit(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Layout,
    calibration: Optional[Calibration] = None,
    context: Optional[DeviceContext] = None,
) -> RoutedCircuit:
    """Make *circuit* executable on *coupling* starting from a layout.

    *context* supplies the cached reliability graph; when omitted it is
    fetched from the shared context registry.
    """
    if context is None:
        context = device_context(coupling, calibration)
    rel = context.reliability_graph
    layout = initial_layout.copy()
    out = QuantumCircuit(coupling.num_qubits, circuit.num_clbits,
                         circuit.name)
    num_swaps = 0

    def emit_swap(p1: int, p2: int) -> None:
        nonlocal num_swaps
        out.cx(p1, p2)
        out.cx(p2, p1)
        out.cx(p1, p2)
        layout.swap_physical(p1, p2)
        num_swaps += 1

    for inst in circuit:
        if inst.name == "barrier":
            phys = tuple(layout.physical(q) for q in inst.qubits)
            out.barrier(*phys)
            continue
        if inst.name == "measure":
            out.measure(layout.physical(inst.qubits[0]), inst.clbits[0])
            continue
        if inst.name in ("reset", "delay"):
            phys = (layout.physical(inst.qubits[0]),)
            out._instructions.append(  # noqa: SLF001
                Instruction(inst.gate, phys, inst.clbits))
            continue
        if len(inst.qubits) == 1:
            out.append(inst.gate, (layout.physical(inst.qubits[0]),))
            continue
        if len(inst.qubits) != 2:
            raise ValueError(
                f"route requires <=2q gates, got {inst.name!r}; decompose "
                "first")
        pa, pb = (layout.physical(q) for q in inst.qubits)
        if not coupling.is_edge(pa, pb):
            path = nx.shortest_path(rel, pa, pb, weight="weight")
            # Walk the first operand down the path until adjacent.
            for hop in path[1:-1]:
                emit_swap(path[0], hop)
                path[0] = hop
            pa, pb = (layout.physical(q) for q in inst.qubits)
            assert coupling.is_edge(pa, pb), "routing failed to converge"
        out.append(inst.gate, (pa, pb))
    return RoutedCircuit(out, initial_layout.copy(), layout, num_swaps)

"""Dynamical decoupling pass (paper ref. [23], Souza et al.).

Long idle windows accumulate coherent phase drift from residual qubit
detuning.  The XX decoupling sequence splits an idle window into

    delay(t/4)  X  delay(t/2)  X  delay(t/4)

whose net unitary is the identity while the detuning phase acquired in the
middle segment is *echoed* against the outer segments
(``X RZ(theta) X = RZ(-theta)``: t/4 - t/2 + t/4 = 0).  T1 relaxation is
not cancelled (it cannot be), and each inserted X costs its own gate
error — so DD pays off only on windows long enough that drift dominates.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..circuits.circuit import Instruction, QuantumCircuit
from ..circuits.gates import Gate

__all__ = ["insert_dd_sequences"]

#: Idle windows shorter than this many X-gate durations are left alone —
#: the two inserted gates would cost more error than the echo saves.
_MIN_WINDOW_X_DURATIONS = 8.0


def insert_dd_sequences(
    circuit: QuantumCircuit,
    gate_duration: Optional[Dict[str, float]] = None,
    min_window: Optional[float] = None,
) -> QuantumCircuit:
    """Replace long ``delay`` instructions with XX decoupling sequences.

    *min_window* (ns) overrides the default threshold of
    ``8 x duration(x)``.  The emitted sequence conserves total duration:
    the two X gates are carved out of the idle time.
    """
    gate_duration = gate_duration or {}
    x_duration = gate_duration.get("x", 35.0)
    threshold = min_window if min_window is not None \
        else _MIN_WINDOW_X_DURATIONS * x_duration

    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                         circuit.name)
    for inst in circuit:
        if inst.name != "delay":
            out._instructions.append(inst)  # noqa: SLF001
            continue
        total = float(inst.params[0])
        q = inst.qubits[0]
        idle = total - 2.0 * x_duration
        if total < threshold or idle <= 0:
            out._instructions.append(inst)  # noqa: SLF001
            continue
        out.delay(q, idle / 4.0)
        out.x(q)
        out.delay(q, idle / 2.0)
        out.x(q)
        out.delay(q, idle / 4.0)
    return out

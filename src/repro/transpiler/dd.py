"""Dynamical decoupling pass (paper ref. [23], Souza et al.).

Long idle windows accumulate coherent phase drift from residual qubit
detuning.  The XX decoupling sequence splits an idle window into

    delay(t/4)  X  delay(t/2)  X  delay(t/4)

whose net unitary is the identity while the detuning phase acquired in the
middle segment is *echoed* against the outer segments
(``X RZ(theta) X = RZ(-theta)``: t/4 - t/2 + t/4 = 0).  T1 relaxation is
not cancelled (it cannot be), and each inserted X costs its own gate
error — so DD pays off only on windows long enough that drift dominates.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Union

from ..circuits.circuit import Instruction, QuantumCircuit
from ..circuits.gates import Gate
from ..hardware.topology import CouplingMap

__all__ = ["insert_dd_sequences", "insert_dd_sequences_multi",
           "stagger_offsets", "DD_STRATEGIES"]

#: Idle windows shorter than this many X-gate durations are left alone —
#: the two inserted gates would cost more error than the echo saves.
_MIN_WINDOW_X_DURATIONS = 8.0


def insert_dd_sequences(
    circuit: QuantumCircuit,
    gate_duration: Optional[Dict[str, float]] = None,
    min_window: Optional[float] = None,
) -> QuantumCircuit:
    """Replace long ``delay`` instructions with XX decoupling sequences.

    *min_window* (ns) overrides the default threshold of
    ``8 x duration(x)``.  The emitted sequence conserves total duration:
    the two X gates are carved out of the idle time.
    """
    gate_duration = gate_duration or {}
    x_duration = gate_duration.get("x", 35.0)
    threshold = min_window if min_window is not None \
        else _MIN_WINDOW_X_DURATIONS * x_duration

    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                         circuit.name)
    for inst in circuit:
        if inst.name != "delay":
            out._instructions.append(inst)  # noqa: SLF001
            continue
        total = float(inst.params[0])
        q = inst.qubits[0]
        idle = total - 2.0 * x_duration
        if total < threshold or idle <= 0:
            out._instructions.append(inst)  # noqa: SLF001
            continue
        out.delay(q, idle / 4.0)
        out.x(q)
        out.delay(q, idle / 2.0)
        out.x(q)
        out.delay(q, idle / 4.0)
    return out


# ----------------------------------------------------------------------
# multi-strategy staggered DD
# ----------------------------------------------------------------------
#: Supported pulse trains.  ``xx``/``cpmg`` are the 2-pulse echo (CPMG
#: spacing tau/4, tau/2, tau/4); ``xy4`` alternates X and Y pulses, which
#: additionally refocuses pulse-axis errors (XYXY = -I, a global phase).
DD_STRATEGIES = ("xx", "cpmg", "xy4")

_PULSES: Dict[str, Sequence[str]] = {
    "xx": ("x", "x"),
    "cpmg": ("x", "x"),
    "xy4": ("x", "y", "x", "y"),
}

#: Idle-time fractions of the delay segments between (and around) the
#: pulses.  Alternating-sign sums are zero, so the detuning echo survives
#: shifting the whole train by ``s`` (first segment +s, last -s):
#: xx/cpmg: +1/4+s - 1/2 + 1/4-s = 0;  xy4: +1/8+s -1/4 +1/4 -1/4 +1/8-s = 0.
_SEGMENTS: Dict[str, Sequence[float]] = {
    "xx": (0.25, 0.5, 0.25),
    "cpmg": (0.25, 0.5, 0.25),
    "xy4": (0.125, 0.25, 0.25, 0.25, 0.125),
}


def stagger_offsets(coupling: Optional[CouplingMap],
                    num_qubits: int) -> Dict[int, int]:
    """Greedy coupling-graph coloring: per-qubit stagger slot.

    Coupled qubits get different colors, so their DD pulses — shifted by
    ``color x pulse-duration`` — never fire simultaneously and cannot
    add coherent crosstalk kicks on the shared link.  Without a coupling
    map every qubit sits in slot 0 (no stagger).
    """
    if coupling is None:
        return {q: 0 for q in range(num_qubits)}
    colors: Dict[int, int] = {}
    for q in range(num_qubits):
        taken = {colors[nbr] for nbr in coupling.neighbors(q)
                 if nbr in colors}
        color = 0
        while color in taken:
            color += 1
        colors[q] = color
    return colors


def insert_dd_sequences_multi(
    circuit: QuantumCircuit,
    gate_duration: Optional[Dict[str, float]] = None,
    strategy: Union[str, Mapping[int, str]] = "xy4",
    coupling: Optional[CouplingMap] = None,
    min_window: Optional[float] = None,
    stagger_unit: Optional[float] = None,
) -> QuantumCircuit:
    """Replace long delays with per-qubit, stagger-offset DD trains.

    *strategy* is a single name from :data:`DD_STRATEGIES` or a mapping
    ``qubit -> name`` (unlisted qubits default to ``"xy4"``).  When
    *coupling* is given, each qubit's pulse train is shifted later by
    ``color x stagger_unit`` (graph-coloring slot x one pulse duration by
    default) so pulses on coupled qubits don't collide; the shift moves
    idle time from the trailing segment to the leading one, which keeps
    both the total duration and the echo cancellation exact.  Delays
    inside control-flow bodies are untouched (their windows are
    data-dependent).
    """
    gate_duration = gate_duration or {}
    x_duration = gate_duration.get("x", 35.0)
    threshold = min_window if min_window is not None \
        else _MIN_WINDOW_X_DURATIONS * x_duration
    unit = stagger_unit if stagger_unit is not None else x_duration
    offsets = stagger_offsets(coupling, circuit.num_qubits)

    def strategy_for(q: int) -> str:
        name = strategy if isinstance(strategy, str) \
            else strategy.get(q, "xy4")
        if name not in DD_STRATEGIES:
            raise ValueError(
                f"unknown DD strategy {name!r}; choose from "
                f"{DD_STRATEGIES}")
        return name

    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                         circuit.name)
    for inst in circuit:
        if inst.name != "delay":
            out._instructions.append(inst)  # noqa: SLF001
            continue
        total = float(inst.params[0])
        q = inst.qubits[0]
        name = strategy_for(q)
        pulses = _PULSES[name]
        pulse_time = sum(gate_duration.get(p, 35.0) for p in pulses)
        idle = total - pulse_time
        if total < threshold or idle <= 0:
            out._instructions.append(inst)  # noqa: SLF001
            continue
        segments = [frac * idle for frac in _SEGMENTS[name]]
        shift = min(offsets.get(q, 0) * unit, max(segments[-1], 0.0))
        segments[0] += shift
        segments[-1] -= shift
        for k, pulse in enumerate(pulses):
            if segments[k] > 1e-12:
                out.delay(q, segments[k])
            out._add(pulse, [q])
        if segments[-1] > 1e-12:
            out.delay(q, segments[-1])
    return out

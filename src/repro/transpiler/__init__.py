"""Noise-aware transpiler: basis decomposition, HA-style initial mapping,
reliability-weighted routing, gate optimization, ALAP scheduling."""

from .dd import (DD_STRATEGIES, insert_dd_sequences,
                 insert_dd_sequences_multi, stagger_offsets)
from .basis import decompose_oneq_gate, decompose_to_basis, zyz_angles
from .controlflow import (expand_control_flow, is_statically_resolvable,
                          transpile_dynamic)
from .context import (
    DeviceContext,
    context_cache_stats,
    device_context,
    edge_reliability_weight,
    reset_context_cache,
)
from .layout import Layout
from .mapping import interaction_counts, layout_cost, noise_aware_layout
from .optimize import (cancel_adjacent_pairs, combine_adjacent_delays,
                       fuse_oneq_runs, optimize_circuit)
from .routing import RoutedCircuit, route_circuit
from .sabre import sabre_route
from .schedule import circuit_duration, schedule_alap
from .transpile import (
    TranspileResult,
    partition_calibration,
    partition_coupling,
    transpile,
    transpile_for_partition,
)

__all__ = [
    "DD_STRATEGIES",
    "DeviceContext",
    "Layout",
    "RoutedCircuit",
    "TranspileResult",
    "cancel_adjacent_pairs",
    "circuit_duration",
    "combine_adjacent_delays",
    "context_cache_stats",
    "decompose_oneq_gate",
    "decompose_to_basis",
    "device_context",
    "edge_reliability_weight",
    "expand_control_flow",
    "fuse_oneq_runs",
    "insert_dd_sequences",
    "insert_dd_sequences_multi",
    "is_statically_resolvable",
    "interaction_counts",
    "layout_cost",
    "noise_aware_layout",
    "optimize_circuit",
    "partition_calibration",
    "partition_coupling",
    "reset_context_cache",
    "route_circuit",
    "sabre_route",
    "schedule_alap",
    "stagger_offsets",
    "transpile",
    "transpile_dynamic",
    "transpile_for_partition",
]

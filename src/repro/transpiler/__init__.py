"""Noise-aware transpiler: basis decomposition, HA-style initial mapping,
reliability-weighted routing, gate optimization, ALAP scheduling."""

from .dd import insert_dd_sequences
from .basis import decompose_oneq_gate, decompose_to_basis, zyz_angles
from .context import (
    DeviceContext,
    context_cache_stats,
    device_context,
    edge_reliability_weight,
    reset_context_cache,
)
from .layout import Layout
from .mapping import interaction_counts, layout_cost, noise_aware_layout
from .optimize import cancel_adjacent_pairs, fuse_oneq_runs, optimize_circuit
from .routing import RoutedCircuit, route_circuit
from .sabre import sabre_route
from .schedule import circuit_duration, schedule_alap
from .transpile import (
    TranspileResult,
    partition_calibration,
    partition_coupling,
    transpile,
    transpile_for_partition,
)

__all__ = [
    "DeviceContext",
    "Layout",
    "RoutedCircuit",
    "TranspileResult",
    "cancel_adjacent_pairs",
    "circuit_duration",
    "context_cache_stats",
    "decompose_oneq_gate",
    "decompose_to_basis",
    "device_context",
    "edge_reliability_weight",
    "fuse_oneq_runs",
    "insert_dd_sequences",
    "interaction_counts",
    "layout_cost",
    "noise_aware_layout",
    "optimize_circuit",
    "partition_calibration",
    "partition_coupling",
    "reset_context_cache",
    "route_circuit",
    "sabre_route",
    "schedule_alap",
    "transpile",
    "transpile_for_partition",
]

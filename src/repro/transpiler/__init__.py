"""Noise-aware transpiler: basis decomposition, HA-style initial mapping,
reliability-weighted routing, gate optimization, ALAP scheduling."""

from .dd import insert_dd_sequences
from .basis import decompose_oneq_gate, decompose_to_basis, zyz_angles
from .layout import Layout
from .mapping import interaction_counts, layout_cost, noise_aware_layout
from .optimize import cancel_adjacent_pairs, fuse_oneq_runs, optimize_circuit
from .routing import RoutedCircuit, route_circuit
from .sabre import sabre_route
from .schedule import circuit_duration, schedule_alap
from .transpile import (
    TranspileResult,
    partition_calibration,
    partition_coupling,
    transpile,
    transpile_for_partition,
)

__all__ = [
    "Layout",
    "RoutedCircuit",
    "TranspileResult",
    "cancel_adjacent_pairs",
    "circuit_duration",
    "decompose_oneq_gate",
    "decompose_to_basis",
    "fuse_oneq_runs",
    "insert_dd_sequences",
    "interaction_counts",
    "layout_cost",
    "noise_aware_layout",
    "optimize_circuit",
    "partition_calibration",
    "partition_coupling",
    "route_circuit",
    "sabre_route",
    "schedule_alap",
    "transpile",
    "transpile_for_partition",
]

"""ALAP scheduling with explicit idle delays.

As-Late-As-Possible scheduling keeps qubits in the ground state as long as
possible (the discipline all the parallel-execution papers adopt).  This
pass materializes the schedule by inserting ``delay`` instructions into
the gaps between a qubit's consecutive operations, so the noisy simulator
charges T1/T2 decoherence exactly where a real device would.

Leading idle time (before a qubit's first gate) gets no delay: a qubit in
|0> is unaffected by amplitude or phase damping — which is precisely the
reason ALAP is preferred.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..circuits.circuit import Instruction, QuantumCircuit
from ..circuits.gates import Gate
from ..sim.executor import timed_intervals

__all__ = ["schedule_alap", "circuit_duration"]


def circuit_duration(circuit: QuantumCircuit,
                     gate_duration: Dict[str, float]) -> float:
    """Makespan of the circuit in nanoseconds."""
    intervals = timed_intervals(circuit, gate_duration, mode="asap")
    return max((end for _, end in intervals), default=0.0)


def schedule_alap(circuit: QuantumCircuit,
                  gate_duration: Dict[str, float]) -> QuantumCircuit:
    """Insert idle ``delay`` instructions according to an ALAP schedule."""
    # timed_intervals in alap mode gives (start, end) counted from the
    # job end; convert to forward times.
    rev_intervals = timed_intervals(circuit, gate_duration, mode="alap")
    makespan = max((e for _, e in rev_intervals), default=0.0)
    forward: List[Tuple[float, float]] = [
        (makespan - e, makespan - s) for s, e in rev_intervals
    ]

    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                         circuit.name)
    last_end: Dict[int, float] = {}
    started: Dict[int, bool] = {}
    for inst, (start, end) in zip(circuit.instructions, forward):
        for q in inst.qubits:
            if started.get(q):
                gap = start - last_end.get(q, 0.0)
                if gap > 1e-9:
                    out.delay(q, gap)
            last_end[q] = end
            if not inst.gate.is_directive or inst.name in ("measure",
                                                           "reset"):
                started[q] = True
            elif inst.name != "barrier":
                started[q] = True
        out._instructions.append(inst)  # noqa: SLF001
    return out

"""Logical-to-physical qubit layout."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Layout"]


class Layout:
    """A bijection between logical circuit qubits and physical qubits."""

    def __init__(self, logical_to_physical: Dict[int, int]) -> None:
        self._l2p = dict(logical_to_physical)
        self._p2l = {p: l for l, p in self._l2p.items()}
        if len(self._p2l) != len(self._l2p):
            raise ValueError("layout is not injective")

    @classmethod
    def trivial(cls, num_qubits: int) -> "Layout":
        """Identity layout on *num_qubits* qubits."""
        return cls({q: q for q in range(num_qubits)})

    @classmethod
    def from_sequence(cls, physical: Sequence[int]) -> "Layout":
        """Layout mapping logical ``i`` to ``physical[i]``."""
        return cls({i: p for i, p in enumerate(physical)})

    def physical(self, logical: int) -> int:
        """Physical qubit hosting *logical*."""
        return self._l2p[logical]

    def logical(self, physical: int) -> Optional[int]:
        """Logical qubit on *physical* (None if unoccupied)."""
        return self._p2l.get(physical)

    def swap_physical(self, p1: int, p2: int) -> None:
        """Exchange whatever logical qubits sit on *p1* and *p2*."""
        l1, l2 = self._p2l.get(p1), self._p2l.get(p2)
        if l1 is not None:
            self._l2p[l1] = p2
        if l2 is not None:
            self._l2p[l2] = p1
        self._p2l = {p: l for l, p in self._l2p.items()}

    def copy(self) -> "Layout":
        """Independent copy."""
        return Layout(dict(self._l2p))

    def as_dict(self) -> Dict[int, int]:
        """Logical -> physical mapping as a plain dict."""
        return dict(self._l2p)

    def physical_qubits(self) -> Tuple[int, ...]:
        """Physical qubits in logical order."""
        return tuple(self._l2p[l] for l in sorted(self._l2p))

    def __len__(self) -> int:
        return len(self._l2p)

    def __contains__(self, logical: int) -> bool:
        """True when *logical* is placed by this layout."""
        return logical in self._l2p

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self._l2p == other._l2p

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(f"{l}->{p}" for l, p in sorted(self._l2p.items()))
        return f"Layout({pairs})"

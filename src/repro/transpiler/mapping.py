"""Noise-aware initial mapping (the HA-style heuristic of ref. [18]).

Scores candidate layouts with the calibration data: CX-error-weighted
distance between interacting logical qubits plus the readout error of the
chosen physical qubits.  Partitions in parallel circuit execution are
small (3–7 qubits), so an exhaustive permutation search is affordable
there; larger circuits fall back to a greedy interaction-driven placement.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..hardware.calibration import Calibration
from ..hardware.topology import CouplingMap
from .context import DeviceContext, device_context
from .layout import Layout

__all__ = ["interaction_counts", "layout_cost", "noise_aware_layout"]

#: Above this many qubits the exhaustive permutation search is skipped.
_EXHAUSTIVE_LIMIT = 6


def interaction_counts(circuit: QuantumCircuit) -> Dict[Tuple[int, int], int]:
    """Number of 2q gates per (sorted) logical qubit pair."""
    counts: Dict[Tuple[int, int], int] = {}
    for inst in circuit:
        if inst.gate.is_directive or len(inst.qubits) != 2:
            continue
        a, b = sorted(inst.qubits)
        counts[(a, b)] = counts.get((a, b), 0) + 1
    return counts


def layout_cost(
    layout: Layout,
    interactions: Dict[Tuple[int, int], int],
    rel_dist: Dict[int, Dict[int, float]],
    calibration: Optional[Calibration],
    measured_logicals: Sequence[int] = (),
) -> float:
    """Estimated error cost of a layout (lower is better)."""
    cost = 0.0
    for (a, b), count in interactions.items():
        pa, pb = layout.physical(a), layout.physical(b)
        cost += count * rel_dist[pa].get(pb, 1e9)
    if calibration is not None:
        for logical in measured_logicals:
            p01, p10 = calibration.readout_error[layout.physical(logical)]
            cost += 0.5 * (p01 + p10)
    return cost


def noise_aware_layout(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
    context: Optional[DeviceContext] = None,
) -> Layout:
    """Pick an initial layout minimizing :func:`layout_cost`.

    Exhaustive over physical-qubit permutations when the device is small
    (partition transpilation), greedy interaction-first placement
    otherwise.  *context* supplies the cached reliability-distance table;
    when omitted it is fetched from the shared context registry.
    """
    n_logical = circuit.num_qubits
    n_physical = coupling.num_qubits
    if n_logical > n_physical:
        raise ValueError(
            f"circuit needs {n_logical} qubits, device has {n_physical}")
    interactions = interaction_counts(circuit)
    measured = sorted({
        inst.qubits[0] for inst in circuit if inst.name == "measure"})
    if context is None:
        context = device_context(coupling, calibration)
    rel_dist = context.reliability_distance

    if n_physical <= _EXHAUSTIVE_LIMIT:
        best_layout: Optional[Layout] = None
        best_cost = math.inf
        for perm in itertools.permutations(range(n_physical), n_logical):
            layout = Layout.from_sequence(perm)
            cost = layout_cost(layout, interactions, rel_dist,
                               calibration, measured)
            if cost < best_cost:
                best_cost = cost
                best_layout = layout
        assert best_layout is not None
        return best_layout

    return _greedy_layout(circuit, coupling, calibration, interactions,
                          rel_dist, seed)


def _greedy_layout(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    calibration: Optional[Calibration],
    interactions: Dict[Tuple[int, int], int],
    rel_dist: Dict[int, Dict[int, float]],
    seed: int,
) -> Layout:
    """Interaction-degree-first greedy placement."""
    n_logical = circuit.num_qubits
    degree: Dict[int, int] = {q: 0 for q in range(n_logical)}
    for (a, b), count in interactions.items():
        degree[a] += count
        degree[b] += count
    order = sorted(range(n_logical), key=lambda q: -degree[q])

    def qubit_quality(p: int) -> float:
        if calibration is None:
            return coupling.degree(p)
        readout = calibration.readout_error_avg(p)
        link_err = [
            calibration.cx_error(p, nb) for nb in coupling.neighbors(p)
        ]
        return -(readout + (min(link_err) if link_err else 0.5))

    placed: Dict[int, int] = {}
    used: set = set()
    rng = np.random.default_rng(seed)
    for logical in order:
        partners = [
            (other, count) for (a, b), count in interactions.items()
            for other in ((b,) if a == logical else (a,) if b == logical
                          else ())
            if other in placed
        ]
        candidates = [p for p in range(coupling.num_qubits) if p not in used]
        if not partners:
            candidates.sort(key=lambda p: -qubit_quality(p))
            placed[logical] = candidates[0]
        else:
            def cost_of(p: int) -> float:
                c = sum(
                    count * rel_dist[p].get(placed[other], 1e9)
                    for other, count in partners
                )
                return c - 0.001 * qubit_quality(p)

            placed[logical] = min(candidates, key=cost_of)
        used.add(placed[logical])
    return Layout(placed)

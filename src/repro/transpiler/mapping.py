"""Noise-aware initial mapping (the HA-style heuristic of ref. [18]).

Scores candidate layouts with the calibration data: CX-error-weighted
distance between interacting logical qubits plus the readout error of the
chosen physical qubits.  Partitions in parallel circuit execution are
small (3–7 qubits), so an exhaustive permutation search is affordable
there; larger circuits fall back to a greedy interaction-driven placement.

The exhaustive search is vectorized: all ``P(n_physical, n_logical)``
placements are materialized once per shape (memoized) as one integer
array and scored in a handful of numpy gathers over the
:class:`~repro.transpiler.context.DeviceContext`'s cached
reliability-distance matrix and readout-error vector.  The permutation
space is pruned with the circuit interaction graph: placements are
admitted in escalating hop-budget rounds (only those whose interacting
pairs all land within the budget), and the search stops as soon as the
running best is certified optimal against an admissible lower bound on
every not-yet-scored placement.  The historical scalar loop survives as
``search_mode="reference"`` — the oracle of the randomized
argmin-equivalence suite.
"""

from __future__ import annotations

import itertools
import math
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..hardware.calibration import Calibration
from ..hardware.topology import CouplingMap
from .context import DeviceContext, device_context
from .layout import Layout

__all__ = ["interaction_counts", "layout_cost", "noise_aware_layout"]

#: Above this many qubits the exhaustive permutation search is skipped.
#: Raised from 6 to 7: the vectorized search scores all P(7, k) <= 5040
#: placements faster than the old scalar loop handled P(6, k).
_EXHAUSTIVE_LIMIT = 7

_SEARCH_MODES = ("auto", "vectorized", "reference")


def interaction_counts(circuit: QuantumCircuit) -> Dict[Tuple[int, int], int]:
    """Number of 2q gates per (sorted) logical qubit pair."""
    counts: Dict[Tuple[int, int], int] = {}
    for inst in circuit:
        if inst.gate.is_directive or len(inst.qubits) != 2:
            continue
        a, b = sorted(inst.qubits)
        counts[(a, b)] = counts.get((a, b), 0) + 1
    return counts


def layout_cost(
    layout: Layout,
    interactions: Dict[Tuple[int, int], int],
    rel_dist: Dict[int, Dict[int, float]],
    calibration: Optional[Calibration],
    measured_logicals: Sequence[int] = (),
) -> float:
    """Estimated error cost of a layout (lower is better).

    Measured logicals absent from *layout* (a measure-only qubit beyond
    the placed set) contribute nothing instead of raising.
    """
    cost = 0.0
    for (a, b), count in interactions.items():
        pa, pb = layout.physical(a), layout.physical(b)
        cost += count * rel_dist[pa].get(pb, 1e9)
    if calibration is not None:
        for logical in measured_logicals:
            if logical not in layout:
                continue
            p01, p10 = calibration.readout_error[layout.physical(logical)]
            cost += 0.5 * (p01 + p10)
    return cost


@lru_cache(maxsize=64)
def _permutation_table(n_physical: int, n_logical: int) -> np.ndarray:
    """All ``P(n_physical, n_logical)`` placements as one readonly int
    array, row ``m`` being the ``m``-th ``itertools.permutations`` tuple
    (the exact order the scalar reference loop visits)."""
    table = np.fromiter(
        itertools.chain.from_iterable(
            itertools.permutations(range(n_physical), n_logical)),
        dtype=np.intp,
    ).reshape(-1, n_logical)
    table.setflags(write=False)
    return table


def _vectorized_exhaustive(
    interactions: Dict[Tuple[int, int], int],
    measured: Sequence[int],
    context: DeviceContext,
    n_logical: int,
) -> Layout:
    """Argmin of :func:`layout_cost` over every placement, vectorized.

    Scoring is one gather per interaction pair over the cached
    reliability matrix plus a matmul with the interaction counts, and a
    readout gather over the measured columns.  Placements are admitted
    in rounds of increasing interaction hop budget; each round either
    improves the incumbent or certifies it against the admissible bound
    ``w_min * (sum_counts + min_count * budget) + readout_lb``, which
    lower-bounds every placement still outside the budget (some pair
    sits at ``> budget`` hops, every pair at ``>= 1`` hop, and
    ``reliability >= hops * min_edge_weight``).
    """
    n_physical = context.coupling.num_qubits
    perms = _permutation_table(n_physical, n_logical)
    readout = context.readout_vector
    measured_cols = [l for l in measured if l < n_logical]
    if measured_cols:
        readout_cost = readout[perms[:, measured_cols]].sum(axis=1)
    else:
        readout_cost = np.zeros(len(perms), dtype=np.float64)

    if not interactions:
        best = int(np.argmin(readout_cost))
        return Layout.from_sequence(tuple(int(p) for p in perms[best]))

    pairs = np.array(sorted(interactions), dtype=np.intp)
    counts = np.array([interactions[(a, b)] for a, b in pairs],
                      dtype=np.float64)
    phys_a = perms[:, pairs[:, 0]]
    phys_b = perms[:, pairs[:, 1]]
    # The cheap hop gather drives pruning; the reliability gather (plus
    # the count matmul) only ever runs on admitted rows.
    pair_hops = context.hop_matrix[phys_a, phys_b].max(axis=1)
    rel = context.reliability_matrix

    w_min = context.min_edge_weight
    total_count = float(counts.sum())
    min_count = float(counts.min())
    readout_lb = float(readout.min()) * len(measured_cols)

    best_cost = math.inf
    best_index = -1
    for budget in np.unique(pair_hops):
        admitted = np.flatnonzero(pair_hops == budget)
        if admitted.size:
            cost = rel[phys_a[admitted], phys_b[admitted]] @ counts
            cost += readout_cost[admitted]
            round_best = int(np.argmin(cost))
            if cost[round_best] < best_cost:
                best_cost = float(cost[round_best])
                best_index = int(admitted[round_best])
        bound = w_min * (total_count + min_count * float(budget)) \
            + readout_lb
        if best_index >= 0 and best_cost <= bound:
            break
    assert best_index >= 0
    return Layout.from_sequence(tuple(int(p) for p in perms[best_index]))


def _reference_exhaustive(
    interactions: Dict[Tuple[int, int], int],
    measured: Sequence[int],
    rel_dist: Dict[int, Dict[int, float]],
    calibration: Optional[Calibration],
    n_physical: int,
    n_logical: int,
) -> Layout:
    """The historical scalar permutation loop (equivalence oracle)."""
    best_layout: Optional[Layout] = None
    best_cost = math.inf
    for perm in itertools.permutations(range(n_physical), n_logical):
        layout = Layout.from_sequence(perm)
        cost = layout_cost(layout, interactions, rel_dist,
                           calibration, measured)
        if cost < best_cost:
            best_cost = cost
            best_layout = layout
    assert best_layout is not None
    return best_layout


def noise_aware_layout(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
    context: Optional[DeviceContext] = None,
    search_mode: str = "auto",
) -> Layout:
    """Pick an initial layout minimizing :func:`layout_cost`.

    Exhaustive over physical-qubit permutations when the device is small
    (partition transpilation), greedy interaction-first placement
    otherwise.  *context* supplies the cached reliability-distance table;
    when omitted it is fetched from the shared context registry.

    *search_mode* selects the exhaustive engine: ``"auto"`` /
    ``"vectorized"`` run the pruned numpy search, ``"reference"`` the
    scalar seed loop (kept as the equivalence oracle — both return a
    cost-minimal layout, though FP-tie winners may differ).
    """
    if search_mode not in _SEARCH_MODES:
        raise ValueError(
            f"unknown search_mode {search_mode!r}; "
            f"choose from {_SEARCH_MODES}")
    n_logical = circuit.num_qubits
    n_physical = coupling.num_qubits
    if n_logical > n_physical:
        raise ValueError(
            f"circuit needs {n_logical} qubits, device has {n_physical}")
    if n_logical == 0:
        # The empty placement, exactly what the scalar loop returned for
        # the single empty permutation (np.fromiter cannot build the
        # 1x0 table).
        return Layout({})
    interactions = interaction_counts(circuit)
    measured = sorted({
        inst.qubits[0] for inst in circuit if inst.name == "measure"})
    if context is None:
        context = device_context(coupling, calibration)

    if n_physical <= _EXHAUSTIVE_LIMIT:
        if search_mode == "reference":
            return _reference_exhaustive(
                interactions, measured, context.reliability_distance,
                calibration, n_physical, n_logical)
        return _vectorized_exhaustive(interactions, measured, context,
                                      n_logical)

    return _greedy_layout(circuit, coupling, calibration, interactions,
                          context.reliability_distance, seed)


def _greedy_layout(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    calibration: Optional[Calibration],
    interactions: Dict[Tuple[int, int], int],
    rel_dist: Dict[int, Dict[int, float]],
    seed: int,
) -> Layout:
    """Interaction-degree-first greedy placement.

    Equal-cost candidate sets are broken by the seeded stream (not
    silently by index order), so distinct seeds explore distinct
    tie-break choices while each seed stays fully deterministic.
    """
    n_logical = circuit.num_qubits
    degree: Dict[int, int] = {q: 0 for q in range(n_logical)}
    for (a, b), count in interactions.items():
        degree[a] += count
        degree[b] += count
    order = sorted(range(n_logical), key=lambda q: -degree[q])

    quality: Dict[int, float] = {}

    def qubit_quality(p: int) -> float:
        found = quality.get(p)
        if found is None:
            if calibration is None:
                found = float(coupling.degree(p))
            else:
                readout = calibration.readout_error_avg(p)
                link_err = [
                    calibration.cx_error(p, nb)
                    for nb in coupling.neighbors(p)
                ]
                found = -(readout + (min(link_err) if link_err else 0.5))
            quality[p] = found
        return found

    placed: Dict[int, int] = {}
    used: set = set()
    rng = np.random.default_rng(seed)
    for logical in order:
        partners = [
            (other, count) for (a, b), count in interactions.items()
            for other in ((b,) if a == logical else (a,) if b == logical
                          else ())
            if other in placed
        ]
        candidates = [p for p in range(coupling.num_qubits) if p not in used]
        if not partners:
            score = {p: -qubit_quality(p) for p in candidates}
        else:
            def cost_of(p: int) -> float:
                c = sum(
                    count * rel_dist[p].get(placed[other], 1e9)
                    for other, count in partners
                )
                return c - 0.001 * qubit_quality(p)

            score = {p: cost_of(p) for p in candidates}
        best = min(score.values())
        ties = [p for p in candidates if score[p] == best]
        placed[logical] = (
            ties[0] if len(ties) == 1
            else int(ties[int(rng.integers(len(ties)))]))
        used.add(placed[logical])
    return Layout(placed)

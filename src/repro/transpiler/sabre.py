"""SABRE-style lookahead routing.

The basic router (:mod:`repro.transpiler.routing`) walks each blocked 2q
gate along a shortest reliability path.  SABRE (Li, Ding, Xie; ASPLOS'19)
instead considers every SWAP adjacent to the blocked *front layer* and
scores it against both the front layer and a lookahead window of upcoming
2q gates, usually saving SWAPs on congested circuits.

This implementation keeps SABRE's decay-weighted two-window cost and adds
the calibration-aware edge weights used elsewhere in this transpiler.
Swap-candidate scoring is table-driven, exactly as the algorithm was
designed: distances come from the :class:`~.context.DeviceContext`'s
cached all-pairs matrix and all candidates are scored as numpy array
operations in one shot.  Per-pair accumulation runs column-wise so the
float additions happen in the same order as the historical scalar loop —
the routed circuits are bit-identical to it (``score_mode="reference"``
keeps the scalar loop alive for the equivalence suite).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..circuits.circuit import Instruction, QuantumCircuit
from ..hardware.calibration import Calibration
from ..hardware.topology import CouplingMap
from .context import DeviceContext, device_context
from .layout import Layout
from .routing import RoutedCircuit

__all__ = ["sabre_route"]

#: Weight of the lookahead window relative to the front layer.
_LOOKAHEAD_WEIGHT = 0.5
#: Lookahead window size (upcoming 2q gates considered).
_LOOKAHEAD_SIZE = 20
#: Per-use decay applied to recently swapped qubits (avoids ping-pong).
_DECAY_STEP = 0.001
_DECAY_RESET_INTERVAL = 5


def _select_swap_vectorized(
    candidates: Sequence[Tuple[int, int]],
    dist_matrix: np.ndarray,
    layout: Layout,
    front: Sequence[Tuple[int, int]],
    future: Sequence[Tuple[int, int]],
    decay: Dict[int, float],
) -> Tuple[int, int]:
    """Best swap candidate, scored as array ops over the distance matrix.

    Column-wise accumulation keeps every floating-point addition in the
    scalar loop's order, so ties and minima resolve identically; argmin
    returns the first minimum in candidate-iteration order, matching
    ``min()`` over the same sequence.
    """
    p1s = np.fromiter((c[0] for c in candidates), dtype=np.intp)[:, None]
    p2s = np.fromiter((c[1] for c in candidates), dtype=np.intp)[:, None]

    def swapped_positions(pairs: Sequence[Tuple[int, int]]
                          ) -> Tuple[np.ndarray, np.ndarray]:
        pa = np.fromiter((layout.physical(a) for a, _ in pairs),
                         dtype=np.intp)[None, :]
        pb = np.fromiter((layout.physical(b) for _, b in pairs),
                         dtype=np.intp)[None, :]
        swap = lambda pos: np.where(  # noqa: E731
            pos == p1s, p2s, np.where(pos == p2s, p1s, pos))
        return swap(pa), swap(pb)

    def window_cost(pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        pa, pb = swapped_positions(pairs)
        vals = dist_matrix[pa, pb]
        total = np.zeros(len(candidates), dtype=np.float64)
        for j in range(vals.shape[1]):  # scalar-loop addition order
            total = total + vals[:, j]
        return total / max(len(pairs), 1)

    score = window_cost(front)
    if future:
        score = score + _LOOKAHEAD_WEIGHT * window_cost(future)
    factors = np.fromiter(
        (1.0 + decay.get(int(p1), 0.0) + decay.get(int(p2), 0.0)
         for p1, p2 in candidates),
        dtype=np.float64)
    score = score * factors
    best = candidates[int(np.argmin(score))]
    return int(best[0]), int(best[1])


def _select_swap_reference(
    candidates: Sequence[Tuple[int, int]],
    dist: Dict[int, Dict[int, float]],
    layout: Layout,
    front: Sequence[Tuple[int, int]],
    future: Sequence[Tuple[int, int]],
    decay: Dict[int, float],
) -> Tuple[int, int]:
    """The seed scalar scoring loop, kept for the equivalence suite."""

    def swap_score(p1: int, p2: int) -> float:
        trial = layout.copy()
        trial.swap_physical(p1, p2)

        def cost(pairs: Sequence[Tuple[int, int]]) -> float:
            total = 0.0
            for a, b in pairs:
                pa, pb = trial.physical(a), trial.physical(b)
                total += dist[pa].get(pb, 1e9)
            return total / max(len(pairs), 1)

        score = cost(front)
        if future:
            score += _LOOKAHEAD_WEIGHT * cost(future)
        score *= (1.0 + decay.get(p1, 0.0) + decay.get(p2, 0.0))
        return score

    return min(candidates, key=lambda e: swap_score(e[0], e[1]))


def sabre_route(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Layout,
    calibration: Optional[Calibration] = None,
    context: Optional[DeviceContext] = None,
    score_mode: str = "vectorized",
) -> RoutedCircuit:
    """Route *circuit* with lookahead SWAP selection.

    Semantics identical to :func:`repro.transpiler.routing.route_circuit`
    (physical-index output, measures remapped through the live layout).
    *context* supplies the cached distance tables; *score_mode* selects
    the numpy candidate scoring (default) or the scalar ``"reference"``
    loop — both produce bit-identical circuits.
    """
    if score_mode not in ("vectorized", "reference"):
        raise ValueError(f"unknown score_mode {score_mode!r}")
    if context is None:
        context = device_context(coupling, calibration)
    dist = context.reliability_distance
    dist_matrix = context.reliability_matrix
    layout = initial_layout.copy()
    out = QuantumCircuit(coupling.num_qubits, circuit.num_clbits,
                         circuit.name)
    num_swaps = 0
    decay: Dict[int, float] = {}
    steps_since_reset = 0

    # Pending instruction list; index of the next instruction per qubit
    # is implicit in order — we process sequentially but buffer blocked
    # 2q gates through the SABRE loop.
    instructions = list(circuit.instructions)
    position = 0

    def emit_simple(inst: Instruction) -> bool:
        """Emit non-2q instructions; returns True when handled."""
        if inst.name == "barrier":
            out.barrier(*(layout.physical(q) for q in inst.qubits))
            return True
        if inst.name == "measure":
            out.measure(layout.physical(inst.qubits[0]), inst.clbits[0])
            return True
        if inst.name in ("reset", "delay"):
            out._instructions.append(  # noqa: SLF001
                Instruction(inst.gate,
                            (layout.physical(inst.qubits[0]),),
                            inst.clbits))
            return True
        if len(inst.qubits) == 1:
            out.append(inst.gate, (layout.physical(inst.qubits[0]),))
            return True
        if len(inst.qubits) != 2:
            raise ValueError(
                f"sabre_route requires <=2q gates, got {inst.name!r}")
        return False

    def upcoming_twoq(start: int, limit: int) -> List[Tuple[int, int]]:
        window = []
        for inst in instructions[start:]:
            if not inst.gate.is_directive and len(inst.qubits) == 2:
                window.append(inst.qubits)
                if len(window) >= limit:
                    break
        return window

    while position < len(instructions):
        inst = instructions[position]
        if emit_simple(inst):
            position += 1
            continue
        a, b = inst.qubits
        pa, pb = layout.physical(a), layout.physical(b)
        if coupling.is_edge(pa, pb):
            out.append(inst.gate, (pa, pb))
            position += 1
            continue
        # Blocked: pick the best SWAP adjacent to the gate's qubits.
        front = [inst.qubits]
        future = upcoming_twoq(position + 1, _LOOKAHEAD_SIZE)
        candidates: Set[Tuple[int, int]] = set()
        for phys in (pa, pb):
            for nb in coupling.neighbors(phys):
                candidates.add((min(phys, nb), max(phys, nb)))
        # list() preserves the set's iteration order, so the first
        # minimum lands on the same candidate the historical
        # min()-over-set selection picked.
        cand_list = list(candidates)
        if score_mode == "vectorized":
            p1, p2 = _select_swap_vectorized(
                cand_list, dist_matrix, layout, front, future, decay)
        else:
            p1, p2 = _select_swap_reference(
                cand_list, dist, layout, front, future, decay)
        out.cx(p1, p2)
        out.cx(p2, p1)
        out.cx(p1, p2)
        layout.swap_physical(p1, p2)
        num_swaps += 1
        decay[p1] = decay.get(p1, 0.0) + _DECAY_STEP
        decay[p2] = decay.get(p2, 0.0) + _DECAY_STEP
        steps_since_reset += 1
        if steps_since_reset >= _DECAY_RESET_INTERVAL:
            decay.clear()
            steps_since_reset = 0

    return RoutedCircuit(out, initial_layout.copy(), layout, num_swaps)

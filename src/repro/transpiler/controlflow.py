"""Control-flow transpilation: static unrolling + the dynamic pipeline.

Two jobs live here:

1. :func:`expand_control_flow` — statically unroll every control-flow op
   whose outcome is decidable at compile time.  Clbits start at 0 and
   are only ever written by ``measure``, so a condition is *resolvable*
   exactly when none of its clbits has a preceding measurement.  Bounded
   ``for`` loops always unroll (the indexset is static); resolvable
   branches splice the taken body; a ``while`` whose condition starts
   false disappears.  The result is a flat circuit the existing
   transpile/allocate/schedule path handles unchanged — and on fully
   resolvable circuits the flat circuit is *the* execution semantics the
   feed-forward simulator must reproduce bit-for-bit (see
   ``tests/test_controlflow_equivalence.py``).

2. :func:`transpile_dynamic` — the compile pipeline for circuits that
   keep data-dependent ops after expansion.  Control-flow bodies cannot
   be SWAP-routed (a router would have to commit to a branch), so the
   dynamic pipeline decomposes outer code *and* bodies to the device
   basis, picks a noise-aware layout from a static interaction profile
   (every branch counted once), and then requires the chosen layout to
   be *routing-free*: every 2q interaction, inside or outside a body,
   must land on a coupling edge.  When the noise-aware choice fails, a
   small exhaustive search over placements runs; if no routing-free
   placement exists the circuit is rejected with a typed error telling
   the caller to simplify bodies (feed-forward corrections are 1q in
   every workload this repo ships).
"""

from __future__ import annotations

from itertools import permutations
from typing import TYPE_CHECKING, Optional, Set, Tuple

from ..circuits.circuit import CircuitError, QuantumCircuit
from ..circuits.controlflow import (ControlFlowOp, ForLoopOp, IfElseOp,
                                    WhileLoopOp, has_control_flow,
                                    written_clbits_of)
from ..hardware.calibration import Calibration
from ..hardware.topology import CouplingMap
from .basis import decompose_to_basis
from .context import DeviceContext, device_context
from .layout import Layout
from .mapping import noise_aware_layout
from .optimize import combine_adjacent_delays, optimize_circuit
from .schedule import schedule_alap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .transpile import TranspileResult

__all__ = ["expand_control_flow", "is_statically_resolvable",
           "transpile_dynamic"]

#: Exhaustive placement search bounds for the routing-free fallback.
_EXHAUSTIVE_MAX_LOGICAL = 5
_EXHAUSTIVE_MAX_PHYSICAL = 9


# ----------------------------------------------------------------------
# static unrolling
# ----------------------------------------------------------------------
def expand_control_flow(circuit: QuantumCircuit,
                        strict: bool = False) -> QuantumCircuit:
    """Unroll every compile-time-resolvable control-flow op.

    With ``strict=True`` any op that survives (a condition fed by a
    preceding measurement) raises :class:`CircuitError` instead of being
    kept.  A ``while`` whose condition starts true but whose body never
    writes the condition's clbits is statically infinite and always
    raises.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                         circuit.name)
    written: Set[int] = set()
    _expand_into(out, circuit.instructions, written, strict)
    return out


def _keep_op(out: QuantumCircuit, inst, written: Set[int],
             strict: bool) -> None:
    if strict:
        raise CircuitError(
            f"control-flow op {inst.name!r} is not statically "
            "resolvable: its condition reads clbits "
            f"{inst.gate.condition.clbits} written by a preceding "
            "measurement")
    out._instructions.append(inst)  # noqa: SLF001 - revalidated at build
    for body in inst.gate.bodies:
        written.update(written_clbits_of(body))


def _expand_into(out: QuantumCircuit, instructions, written: Set[int],
                 strict: bool) -> None:
    for inst in instructions:
        op = inst.gate
        if not isinstance(op, ControlFlowOp):
            if inst.name == "measure":
                written.update(inst.clbits)
            out._instructions.append(inst)  # noqa: SLF001
            continue
        if isinstance(op, ForLoopOp):
            # The indexset is static: always unrollable, even when the
            # body itself contains data-dependent ops (those recurse).
            for value in op.indexset:
                _expand_into(out, op.iteration_body(value).instructions,
                             written, strict)
            continue
        condition = op.condition
        resolvable = not (set(condition.clbits) & written)
        if isinstance(op, IfElseOp):
            if not resolvable:
                _keep_op(out, inst, written, strict)
                continue
            body = op.body_for(condition.evaluate({}))
            if body is not None:
                _expand_into(out, body.instructions, written, strict)
            continue
        if isinstance(op, WhileLoopOp):
            if not resolvable:
                _keep_op(out, inst, written, strict)
                continue
            if not condition.evaluate({}):
                continue  # never entered
            body_writes = set(written_clbits_of(op.body))
            if not body_writes & set(condition.clbits):
                raise CircuitError(
                    "while_loop condition "
                    f"{condition!r} starts true and the body never "
                    "writes its clbits: the loop is statically infinite")
            _keep_op(out, inst, written, strict)
            continue
        raise CircuitError(  # pragma: no cover - future op kinds
            f"unknown control-flow op {inst.name!r}")


def is_statically_resolvable(circuit: QuantumCircuit) -> bool:
    """True when :func:`expand_control_flow` flattens *circuit* fully."""
    if not has_control_flow(circuit):
        return True
    try:
        return not has_control_flow(expand_control_flow(circuit))
    except CircuitError:
        return False


# ----------------------------------------------------------------------
# dynamic transpile pipeline
# ----------------------------------------------------------------------
def _decompose_dynamic(circuit: QuantumCircuit) -> QuantumCircuit:
    """Basis-decompose a circuit, recursing through control-flow bodies.

    Static instruction runs between control-flow ops go through the
    ordinary :func:`decompose_to_basis`; bodies are decomposed
    recursively and the op rebuilt around them.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                         circuit.name)
    segment = QuantumCircuit(circuit.num_qubits, circuit.num_clbits)

    def flush_segment() -> None:
        if not len(segment):
            return
        for inst in decompose_to_basis(segment):
            out._instructions.append(inst)  # noqa: SLF001
        segment._instructions.clear()  # noqa: SLF001

    for inst in circuit:
        if isinstance(inst.gate, ControlFlowOp):
            flush_segment()
            op = inst.gate.with_bodies(
                tuple(_decompose_dynamic(body)
                      for body in inst.gate.bodies))
            out._append_control_flow(op)
            continue
        segment._instructions.append(inst)  # noqa: SLF001
    flush_segment()
    return out


def _static_profile(circuit: QuantumCircuit) -> QuantumCircuit:
    """Flatten every branch once — the layout pass's interaction view."""
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                         f"{circuit.name}__profile")

    def splice(instructions) -> None:
        for inst in instructions:
            if isinstance(inst.gate, ControlFlowOp):
                for body in inst.gate.bodies:
                    splice(body.instructions)
            else:
                out._instructions.append(inst)  # noqa: SLF001

    splice(circuit.instructions)
    return out


def _interaction_pairs(circuit: QuantumCircuit) -> Set[Tuple[int, int]]:
    """Every 2q interaction, bodies included (post-decomposition)."""
    pairs: Set[Tuple[int, int]] = set()

    def visit(instructions) -> None:
        for inst in instructions:
            if isinstance(inst.gate, ControlFlowOp):
                for body in inst.gate.bodies:
                    visit(body.instructions)
                continue
            if inst.gate.is_directive or len(inst.qubits) < 2:
                continue
            a, b = inst.qubits[0], inst.qubits[1]
            pairs.add((a, b) if a <= b else (b, a))

    visit(circuit.instructions)
    return pairs


def _layout_feasible(layout: Layout, pairs, coupling: CouplingMap) -> bool:
    for a, b in pairs:
        if a not in layout or b not in layout:
            return False
        if not coupling.is_edge(layout.physical(a), layout.physical(b)):
            return False
    return True


def _routing_free_layout(circuit: QuantumCircuit, coupling: CouplingMap,
                         calibration: Optional[Calibration],
                         seed: int, context: DeviceContext) -> Layout:
    pairs = _interaction_pairs(circuit)
    profile = _static_profile(circuit)
    layout = noise_aware_layout(profile, coupling, calibration, seed=seed,
                                context=context)
    # noise_aware_layout only places *used* qubits; extend to all logical
    # qubits so body instructions on rarely-touched qubits still map.
    free = [p for p in range(coupling.num_qubits)
            if layout.logical(p) is None]
    mapping = layout.as_dict()
    for q in range(circuit.num_qubits):
        if q not in mapping:
            mapping[q] = free.pop(0)
    layout = Layout(mapping)
    if _layout_feasible(layout, pairs, coupling):
        return layout
    n_logical = circuit.num_qubits
    n_physical = coupling.num_qubits
    if (n_logical <= _EXHAUSTIVE_MAX_LOGICAL
            and n_physical <= _EXHAUSTIVE_MAX_PHYSICAL):
        for placement in permutations(range(n_physical), n_logical):
            candidate = Layout.from_sequence(placement)
            if _layout_feasible(candidate, pairs, coupling):
                return candidate
    raise CircuitError(
        "dynamic circuit cannot be placed without SWAP routing on this "
        f"coupling map (interactions: {sorted(pairs)}); control-flow "
        "bodies cannot be routed — keep in-body gates single-qubit or "
        "simplify the circuit with expand_control_flow")


def _optimize_dynamic(circuit: QuantumCircuit,
                      optimization_level: int) -> QuantumCircuit:
    out = optimize_circuit(circuit, optimization_level)
    rebuilt = QuantumCircuit(out.num_qubits, out.num_clbits, out.name)
    for inst in out:
        if isinstance(inst.gate, ControlFlowOp):
            op = inst.gate.with_bodies(
                tuple(optimize_circuit(body, optimization_level)
                      for body in inst.gate.bodies))
            rebuilt._append_control_flow(op)
        else:
            rebuilt._instructions.append(inst)  # noqa: SLF001
    return rebuilt


def transpile_dynamic(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    calibration: Optional[Calibration] = None,
    optimization_level: int = 3,
    schedule: bool = False,
    seed: int = 0,
    context: Optional[DeviceContext] = None,
) -> "TranspileResult":
    """Compile a circuit that keeps data-dependent control flow.

    The caller (``transpile``) has already expanded what was statically
    resolvable.  The output circuit is expressed over physical indices
    like every other transpile result; ``num_swaps`` is always 0 because
    the pipeline rejects placements that would need routing.
    """
    from .transpile import TranspileResult

    if context is None:
        context = device_context(coupling, calibration)
    basis = _decompose_dynamic(circuit)
    layout = _routing_free_layout(basis, coupling, calibration, seed,
                                  context)
    qubit_map = {q: layout.physical(q) for q in range(basis.num_qubits)}
    physical = basis.remapped(qubit_map, num_qubits=coupling.num_qubits)
    physical = _optimize_dynamic(physical, optimization_level)
    if schedule and calibration is not None:
        physical = schedule_alap(physical, calibration.gate_duration)
        if optimization_level >= 1:
            physical = combine_adjacent_delays(physical)
    return TranspileResult(
        circuit=physical,
        initial_layout=layout,
        final_layout=layout.copy(),
        num_swaps=0,
    )

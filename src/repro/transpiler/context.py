"""Compilation-context layer: device-invariant structures, computed once.

Every ``transpile()`` call needs the same (device, calibration)-derived
structures — the reliability-weighted edge graph, all-pairs Dijkstra
tables for mapping and SABRE, and (for partitioned execution) the induced
coupling map and restricted calibration of each partition.  The seed
implementation rebuilt all of them per call; at fleet scale that is the
dominant compile cost.

:class:`DeviceContext` computes each structure lazily, caches it, and
memoizes partition-induced sub-contexts.  :func:`device_context` is a
fingerprint-keyed registry: two calls with equal coupling/calibration
*values* share one context, and mutating a calibration in place changes
its fingerprint, so the next lookup builds a fresh context instead of
serving stale tables (see the invalidation tests).

The reliability edge weight ``-log(1 - cx_error) + 0.01`` used by the
initial mapper, both routers, and SABRE's distance tables lives here as
:func:`edge_reliability_weight` — the single source of truth that
``mapping.py`` and ``routing.py`` previously copy-pasted.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..hardware.calibration import Calibration
from ..hardware.topology import CouplingMap, Edge

__all__ = [
    "DeviceContext",
    "device_context",
    "edge_reliability_weight",
    "coupling_fingerprint",
    "calibration_fingerprint",
    "context_cache_stats",
    "induced_calibration",
    "induced_coupling",
    "reset_context_cache",
]

#: Distance reported for disconnected qubit pairs (matches the historical
#: ``rel_dist[pa].get(pb, 1e9)`` fallback).
UNREACHABLE = 1e9

#: Additive constant in the reliability weight: favours few hops among
#: equally reliable paths.
_HOP_PENALTY = 0.01


def edge_reliability_weight(cx_error: Optional[float]) -> float:
    """Reliability cost of one link: ``-log(1 - cx_error) + 0.01``.

    ``None`` (no calibration) degrades to unit weight, i.e. plain hop
    counting.  The error is clamped below 1 so the log stays finite.
    """
    if cx_error is None:
        return 1.0
    return -math.log(1.0 - min(cx_error, 0.999)) + _HOP_PENALTY


def coupling_fingerprint(coupling: CouplingMap) -> Hashable:
    """Value fingerprint of a coupling map (size + sorted edge tuple)."""
    return (coupling.num_qubits, coupling.edges)


def _snapshot_calibration(calibration: Optional[Calibration]
                          ) -> Optional[Calibration]:
    """Value copy of a calibration (entries are immutable scalars/tuples).

    Registered contexts build their tables lazily; snapshotting at
    registration pins them to the fingerprinted values, so a later
    in-place mutation of the caller's calibration can never leak into
    tables served under the original fingerprint.
    """
    if calibration is None:
        return None
    return Calibration(
        oneq_error=dict(calibration.oneq_error),
        twoq_error=dict(calibration.twoq_error),
        readout_error=dict(calibration.readout_error),
        t1=dict(calibration.t1),
        t2=dict(calibration.t2),
        detuning=dict(calibration.detuning),
        gate_duration=dict(calibration.gate_duration),
    )


def calibration_fingerprint(calibration: Optional[Calibration]) -> Hashable:
    """Value fingerprint of a calibration snapshot (``None`` -> ``None``).

    Covers every field the transpiler can observe, so in-place mutation
    of any table produces a different fingerprint.
    """
    if calibration is None:
        return None
    return (
        tuple(sorted(calibration.oneq_error.items())),
        tuple(sorted(calibration.twoq_error.items())),
        tuple(sorted(calibration.readout_error.items())),
        tuple(sorted(calibration.t1.items())),
        tuple(sorted(calibration.t2.items())),
        tuple(sorted(calibration.detuning.items())),
        tuple(sorted(calibration.gate_duration.items())),
    )


def induced_coupling(coupling: CouplingMap,
                     partition: Sequence[int]) -> CouplingMap:
    """Induced coupling map of *partition* over local indices.

    Local index ``i`` corresponds to physical qubit ``partition[i]``.
    """
    partition = tuple(int(q) for q in partition)
    index_of = {p: i for i, p in enumerate(partition)}
    local_edges = [
        (index_of[a], index_of[b])
        for a, b in coupling.subgraph_edges(partition)
    ]
    return CouplingMap(len(partition), local_edges)


def induced_calibration(coupling: CouplingMap,
                        calibration: Optional[Calibration],
                        partition: Sequence[int]) -> Optional[Calibration]:
    """Calibration restricted to *partition* (local indices)."""
    if calibration is None:
        return None
    partition = tuple(int(q) for q in partition)
    index_of = {p: i for i, p in enumerate(partition)}
    cal = Calibration(gate_duration=dict(calibration.gate_duration))
    for p, i in index_of.items():
        cal.oneq_error[i] = calibration.oneq_error[p]
        cal.readout_error[i] = calibration.readout_error[p]
        cal.t1[i] = calibration.t1[p]
        cal.t2[i] = calibration.t2[p]
        cal.detuning[i] = calibration.detuning.get(p, 0.0)
    for (a, b) in coupling.subgraph_edges(partition):
        la, lb = sorted((index_of[a], index_of[b]))
        cal.twoq_error[(la, lb)] = calibration.cx_error(a, b)
    return cal


class DeviceContext:
    """Lazily computed, cached compilation context for one device view.

    All tables derive purely from ``(coupling, calibration)`` and are
    built on first use:

    - :attr:`reliability_graph` — the weighted graph the basic router
      walks shortest paths on;
    - :attr:`reliability_distance` — all-pairs Dijkstra over that graph,
      as the dict-of-dicts the mapper consumes (bit-identical to the
      historical per-call computation);
    - :attr:`reliability_matrix` / :attr:`hop_matrix` — the same
      distances as dense numpy arrays (SABRE's vectorized hot path and
      the mapper's vectorized permutation search);
    - :attr:`readout_vector` — per-physical-qubit symmetrized readout
      error as a dense vector (the mapper's measurement term);
    - :attr:`edge_weights` — per-link reliability weights, with
      :attr:`min_edge_weight` as the admissible lower bound the pruned
      layout search uses to certify optimality;
    - :meth:`partition_context` — memoized induced sub-contexts
      (induced :class:`CouplingMap` + restricted :class:`Calibration`).

    Contexts treat their calibration as frozen: mutate a calibration and
    fetch a fresh context through :func:`device_context` instead.
    """

    def __init__(self, coupling: CouplingMap,
                 calibration: Optional[Calibration] = None) -> None:
        self.coupling = coupling
        self.calibration = calibration
        self._edge_weights: Optional[Dict[Edge, float]] = None
        self._rel_graph: Optional[nx.Graph] = None
        self._rel_dist: Optional[Dict[int, Dict[int, float]]] = None
        self._rel_matrix: Optional[np.ndarray] = None
        self._hop_matrix: Optional[np.ndarray] = None
        self._readout_vector: Optional[np.ndarray] = None
        self._min_edge_weight: Optional[float] = None
        self._subcontexts: Dict[Tuple[int, ...], "DeviceContext"] = {}
        #: Lazy-table build counts plus partition-subcontext hit/miss
        #: counters (exposed for tests and benchmark reporting).
        self.stats: Dict[str, int] = {
            "tables_built": 0,
            "partition_hits": 0,
            "partition_misses": 0,
        }

    # ------------------------------------------------------------------
    # cached device-invariant tables
    # ------------------------------------------------------------------
    @property
    def edge_weights(self) -> Dict[Edge, float]:
        """Reliability weight per (normalized) device link."""
        if self._edge_weights is None:
            cal = self.calibration
            self._edge_weights = {
                e: edge_reliability_weight(
                    None if cal is None else cal.cx_error(*e))
                for e in self.coupling.edges
            }
            self.stats["tables_built"] += 1
        return self._edge_weights

    @property
    def reliability_graph(self) -> nx.Graph:
        """Weighted graph over the device links (shared, do not mutate)."""
        if self._rel_graph is None:
            g = nx.Graph()
            g.add_nodes_from(range(self.coupling.num_qubits))
            for (a, b), w in self.edge_weights.items():
                g.add_edge(a, b, weight=w)
            self._rel_graph = g
            self.stats["tables_built"] += 1
        return self._rel_graph

    @property
    def reliability_distance(self) -> Dict[int, Dict[int, float]]:
        """All-pairs Dijkstra lengths as ``{src: {dst: length}}``."""
        if self._rel_dist is None:
            self._rel_dist = {
                src: dists
                for src, dists in nx.all_pairs_dijkstra_path_length(
                    self.reliability_graph, weight="weight")
            }
            self.stats["tables_built"] += 1
        return self._rel_dist

    @property
    def reliability_matrix(self) -> np.ndarray:
        """Dense ``(n, n)`` reliability-distance matrix.

        Entries hold exactly the Dijkstra floats of
        :attr:`reliability_distance`; unreachable pairs hold
        :data:`UNREACHABLE`, matching the historical dict fallback.
        """
        if self._rel_matrix is None:
            n = self.coupling.num_qubits
            mat = np.full((n, n), UNREACHABLE, dtype=np.float64)
            for src, dists in self.reliability_distance.items():
                for dst, length in dists.items():
                    mat[src, dst] = length
            self._rel_matrix = mat
            self.stats["tables_built"] += 1
        return self._rel_matrix

    @property
    def hop_matrix(self) -> np.ndarray:
        """Dense ``(n, n)`` unweighted hop-distance matrix."""
        if self._hop_matrix is None:
            n = self.coupling.num_qubits
            mat = np.full((n, n), UNREACHABLE, dtype=np.float64)
            for src in range(n):
                for dst in range(n):
                    d = self.coupling.distance(src, dst)
                    if d < UNREACHABLE:
                        mat[src, dst] = d
            self._hop_matrix = mat
            self.stats["tables_built"] += 1
        return self._hop_matrix

    @property
    def readout_vector(self) -> np.ndarray:
        """Dense ``(n,)`` symmetrized readout-error vector.

        Entry ``p`` is ``0.5 * (p01 + p10)`` of physical qubit ``p`` —
        exactly the measurement term :func:`~repro.transpiler.mapping.
        layout_cost` adds per measured logical.  All zeros without a
        calibration, so the gathered term vanishes identically.
        """
        if self._readout_vector is None:
            n = self.coupling.num_qubits
            vec = np.zeros(n, dtype=np.float64)
            if self.calibration is not None:
                for q in range(n):
                    p01, p10 = self.calibration.readout_error[q]
                    vec[q] = 0.5 * (p01 + p10)
            vec.setflags(write=False)
            self._readout_vector = vec
            self.stats["tables_built"] += 1
        return self._readout_vector

    @property
    def min_edge_weight(self) -> float:
        """Smallest per-link reliability weight (0.0 for edgeless maps).

        Every path of ``h`` hops weighs at least ``h * min_edge_weight``,
        so ``reliability_distance >= hop_distance * min_edge_weight`` —
        the admissible bound behind the mapper's escalating-budget
        pruning.
        """
        if self._min_edge_weight is None:
            weights = self.edge_weights.values()
            self._min_edge_weight = min(weights) if weights else 0.0
        return self._min_edge_weight

    # ------------------------------------------------------------------
    # partition-induced sub-contexts
    # ------------------------------------------------------------------
    def partition_context(self, partition: Sequence[int]) -> "DeviceContext":
        """The memoized induced context of *partition*.

        Local qubit ``i`` of the returned context corresponds to physical
        qubit ``partition[i]``, so the memo key is the exact partition
        *tuple* (order defines the local index map).  The sub-context's
        coupling/calibration are shared cache entries — treat them as
        frozen (CNA-style calibration inflation must copy first).
        """
        key = tuple(int(q) for q in partition)
        found = self._subcontexts.get(key)
        if found is not None:
            self.stats["partition_hits"] += 1
            return found
        self.stats["partition_misses"] += 1
        sub = DeviceContext(
            induced_coupling(self.coupling, key),
            induced_calibration(self.coupling, self.calibration, key))
        self._subcontexts[key] = sub
        return sub

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DeviceContext {self.coupling.num_qubits}q, "
                f"{len(self._subcontexts)} partition sub-contexts>")


# ----------------------------------------------------------------------
# fingerprint-keyed registry
# ----------------------------------------------------------------------

#: Bound on registry entries; CNA-style ephemeral calibrations (inflated
#: copies per program) would otherwise grow it without limit.
_REGISTRY_MAX = 128

_registry: "OrderedDict[Hashable, DeviceContext]" = OrderedDict()
_registry_lock = threading.Lock()
_registry_stats = {"hits": 0, "misses": 0}


def device_context(coupling: CouplingMap,
                   calibration: Optional[Calibration] = None
                   ) -> DeviceContext:
    """The shared :class:`DeviceContext` for a coupling/calibration pair.

    Keyed by value fingerprints, so equal snapshots share one context
    (and its cached Dijkstra tables) regardless of object identity,
    while a mutated calibration transparently misses into a fresh one.
    Oldest entries are evicted past ``_REGISTRY_MAX``.
    """
    key = (coupling_fingerprint(coupling),
           calibration_fingerprint(calibration))
    with _registry_lock:
        found = _registry.get(key)
        if found is not None:
            _registry_stats["hits"] += 1
            _registry.move_to_end(key)
            return found
        _registry_stats["misses"] += 1
        ctx = DeviceContext(coupling, _snapshot_calibration(calibration))
        _registry[key] = ctx
        while len(_registry) > _REGISTRY_MAX:
            _registry.popitem(last=False)
        return ctx


def context_cache_stats() -> Dict[str, int]:
    """Registry hit/miss counters plus current entry count."""
    with _registry_lock:
        return {**_registry_stats, "entries": len(_registry)}


def reset_context_cache() -> None:
    """Drop every registered context and zero the counters (tests)."""
    with _registry_lock:
        _registry.clear()
        _registry_stats["hits"] = 0
        _registry_stats["misses"] = 0

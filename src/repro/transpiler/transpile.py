"""The transpile() entry point.

Pipeline (mirroring the passes the paper relies on in Qiskit):

1. decompose to {rz, sx, x, cx};
2. noise-aware initial mapping (HA heuristic, ref. [18]);
3. reliability-weighted SWAP routing;
4. gate optimization (levels 0–3, paper uses 3);
5. optional ALAP scheduling with explicit idle delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.controlflow import has_control_flow
from ..hardware.calibration import Calibration
from ..hardware.devices import Device
from ..hardware.topology import CouplingMap
from .basis import decompose_to_basis
from .context import (
    DeviceContext,
    device_context,
    induced_calibration,
    induced_coupling,
)
from .controlflow import expand_control_flow, transpile_dynamic
from .dd import insert_dd_sequences_multi
from .layout import Layout
from .mapping import noise_aware_layout
from .optimize import combine_adjacent_delays, optimize_circuit
from .routing import route_circuit
from .schedule import schedule_alap

__all__ = ["TranspileResult", "transpile", "transpile_for_partition"]


@dataclass
class TranspileResult:
    """Transpilation output.

    ``circuit`` is expressed over the coupling map's physical indices;
    ``initial_layout``/``final_layout`` map logical -> physical.
    """

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    num_swaps: int


def transpile(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    calibration: Optional[Calibration] = None,
    optimization_level: int = 3,
    initial_layout: Optional[Layout] = None,
    schedule: bool = False,
    seed: int = 0,
    router: str = "basic",
    context: Optional[DeviceContext] = None,
    dd: Optional[str] = None,
) -> TranspileResult:
    """Compile *circuit* for a device described by *coupling*.

    *router* selects the SWAP-insertion strategy: ``"basic"`` (shortest
    reliability path) or ``"sabre"`` (lookahead scoring).  *context* is
    the cached compilation context for ``(coupling, calibration)``;
    when omitted the shared registry supplies it, so repeated calls on
    one device never rebuild the distance tables.

    Control-flow circuits are statically unrolled first; what stays
    data-dependent after :func:`expand_control_flow` is compiled by the
    routing-free dynamic pipeline (:func:`transpile_dynamic`).

    *dd* optionally names a dynamical-decoupling strategy (``"xx"``,
    ``"cpmg"``, ``"xy4"``) inserted into scheduled idle windows, with
    pulse trains staggered across coupled qubits; it requires
    ``schedule=True`` and a calibration.
    """
    if not 0 <= optimization_level <= 3:
        raise ValueError("optimization_level must be 0..3")
    if context is None:
        context = device_context(coupling, calibration)
    if has_control_flow(circuit):
        expanded = expand_control_flow(circuit)
        if has_control_flow(expanded):
            return transpile_dynamic(
                expanded, coupling, calibration,
                optimization_level=optimization_level, schedule=schedule,
                seed=seed, context=context)
        circuit = expanded
    basis = decompose_to_basis(circuit)
    if initial_layout is None:
        initial_layout = noise_aware_layout(basis, coupling, calibration,
                                            seed=seed, context=context)
    if router == "basic":
        routed = route_circuit(basis, coupling, initial_layout,
                               calibration, context=context)
    elif router == "sabre":
        from .sabre import sabre_route

        routed = sabre_route(basis, coupling, initial_layout,
                             calibration, context=context)
    else:
        raise ValueError(f"unknown router {router!r}")
    optimized = optimize_circuit(routed.circuit, optimization_level)
    if schedule and calibration is not None:
        optimized = schedule_alap(optimized, calibration.gate_duration)
        if dd is not None:
            optimized = insert_dd_sequences_multi(
                optimized, calibration.gate_duration, strategy=dd,
                coupling=coupling)
        if optimization_level >= 1:
            optimized = combine_adjacent_delays(optimized)
    elif dd is not None:
        raise ValueError(
            "dd requires schedule=True and a calibration (DD fills "
            "scheduled idle windows)")
    return TranspileResult(
        circuit=optimized,
        initial_layout=routed.initial_layout,
        final_layout=routed.final_layout,
        num_swaps=routed.num_swaps,
    )


def partition_coupling(device: Device,
                       partition: Sequence[int]) -> CouplingMap:
    """Induced coupling map of a partition, using local indices.

    Local index ``i`` corresponds to physical qubit ``partition[i]``.
    Returns a fresh object; the memoized equivalent lives on
    :meth:`DeviceContext.partition_context`.
    """
    return induced_coupling(device.coupling, partition)


def partition_calibration(device: Device,
                          partition: Sequence[int]) -> Calibration:
    """Calibration snapshot restricted to a partition (local indices).

    Returns a fresh, caller-mutable copy; the memoized equivalent lives
    on :meth:`DeviceContext.partition_context`.
    """
    cal = induced_calibration(device.coupling, device.calibration,
                              partition)
    assert cal is not None
    return cal


def transpile_for_partition(
    circuit: QuantumCircuit,
    device: Device,
    partition: Sequence[int],
    optimization_level: int = 3,
    schedule: bool = True,
    seed: int = 0,
    context: Optional[DeviceContext] = None,
    dd: Optional[str] = None,
) -> TranspileResult:
    """Compile *circuit* onto a specific partition of *device*.

    The output circuit uses partition-local indices and is ready to wrap
    in :class:`repro.sim.executor.Program` with this partition.

    *context* is the **device-level** compilation context (fetched from
    the shared registry when omitted); the partition-induced coupling,
    calibration, and distance tables come from its memoized
    :meth:`~DeviceContext.partition_context`, so a repeated partition
    costs a dictionary hit instead of a rebuild.
    """
    if context is None:
        context = device_context(device.coupling, device.calibration)
    sub = context.partition_context(tuple(int(q) for q in partition))
    return transpile(circuit, sub.coupling, sub.calibration,
                     optimization_level=optimization_level,
                     schedule=schedule, seed=seed, context=sub, dd=dd)

"""The transpile() entry point.

Pipeline (mirroring the passes the paper relies on in Qiskit):

1. decompose to {rz, sx, x, cx};
2. noise-aware initial mapping (HA heuristic, ref. [18]);
3. reliability-weighted SWAP routing;
4. gate optimization (levels 0–3, paper uses 3);
5. optional ALAP scheduling with explicit idle delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..hardware.calibration import Calibration
from ..hardware.devices import Device
from ..hardware.topology import CouplingMap
from .basis import decompose_to_basis
from .layout import Layout
from .mapping import noise_aware_layout
from .optimize import optimize_circuit
from .routing import route_circuit
from .schedule import schedule_alap

__all__ = ["TranspileResult", "transpile", "transpile_for_partition"]


@dataclass
class TranspileResult:
    """Transpilation output.

    ``circuit`` is expressed over the coupling map's physical indices;
    ``initial_layout``/``final_layout`` map logical -> physical.
    """

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    num_swaps: int


def transpile(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    calibration: Optional[Calibration] = None,
    optimization_level: int = 3,
    initial_layout: Optional[Layout] = None,
    schedule: bool = False,
    seed: int = 0,
    router: str = "basic",
) -> TranspileResult:
    """Compile *circuit* for a device described by *coupling*.

    *router* selects the SWAP-insertion strategy: ``"basic"`` (shortest
    reliability path) or ``"sabre"`` (lookahead scoring).
    """
    if not 0 <= optimization_level <= 3:
        raise ValueError("optimization_level must be 0..3")
    basis = decompose_to_basis(circuit)
    if initial_layout is None:
        initial_layout = noise_aware_layout(basis, coupling, calibration,
                                            seed=seed)
    if router == "basic":
        routed = route_circuit(basis, coupling, initial_layout,
                               calibration)
    elif router == "sabre":
        from .sabre import sabre_route

        routed = sabre_route(basis, coupling, initial_layout,
                             calibration)
    else:
        raise ValueError(f"unknown router {router!r}")
    optimized = optimize_circuit(routed.circuit, optimization_level)
    if schedule and calibration is not None:
        optimized = schedule_alap(optimized, calibration.gate_duration)
    return TranspileResult(
        circuit=optimized,
        initial_layout=routed.initial_layout,
        final_layout=routed.final_layout,
        num_swaps=routed.num_swaps,
    )


def partition_coupling(device: Device,
                       partition: Sequence[int]) -> CouplingMap:
    """Induced coupling map of a partition, using local indices.

    Local index ``i`` corresponds to physical qubit ``partition[i]``.
    """
    index_of = {p: i for i, p in enumerate(partition)}
    local_edges = [
        (index_of[a], index_of[b])
        for a, b in device.coupling.subgraph_edges(partition)
    ]
    return CouplingMap(len(partition), local_edges)


def partition_calibration(device: Device,
                          partition: Sequence[int]) -> Calibration:
    """Calibration snapshot restricted to a partition (local indices)."""
    index_of = {p: i for i, p in enumerate(partition)}
    cal = Calibration(gate_duration=dict(
        device.calibration.gate_duration))
    for p, i in index_of.items():
        cal.oneq_error[i] = device.calibration.oneq_error[p]
        cal.readout_error[i] = device.calibration.readout_error[p]
        cal.t1[i] = device.calibration.t1[p]
        cal.t2[i] = device.calibration.t2[p]
        cal.detuning[i] = device.calibration.detuning.get(p, 0.0)
    for (a, b) in device.coupling.subgraph_edges(partition):
        la, lb = sorted((index_of[a], index_of[b]))
        cal.twoq_error[(la, lb)] = device.calibration.cx_error(a, b)
    return cal


def transpile_for_partition(
    circuit: QuantumCircuit,
    device: Device,
    partition: Sequence[int],
    optimization_level: int = 3,
    schedule: bool = True,
    seed: int = 0,
) -> TranspileResult:
    """Compile *circuit* onto a specific partition of *device*.

    The output circuit uses partition-local indices and is ready to wrap
    in :class:`repro.sim.executor.Program` with this partition.
    """
    coupling = partition_coupling(device, partition)
    calibration = partition_calibration(device, partition)
    return transpile(circuit, coupling, calibration,
                     optimization_level=optimization_level,
                     schedule=schedule, seed=seed)

"""Gate-level optimization passes.

- :func:`cancel_adjacent_pairs` removes back-to-back self-inverse gates
  (CX-CX, H-H, X-X, ...);
- :func:`fuse_oneq_runs` collapses every maximal run of 1q gates on a
  qubit into at most one ZXZXZ sequence (subsumes RZ merging);
- :func:`optimize_circuit` iterates the passes to a fixpoint, gated by the
  optimization level.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.circuit import Instruction, QuantumCircuit
from ..circuits.controlflow import ControlFlowOp
from ..circuits.gates import Gate
from .basis import decompose_oneq_gate

__all__ = ["cancel_adjacent_pairs", "combine_adjacent_delays",
           "fuse_oneq_runs", "optimize_circuit"]

#: Fused-run memo: (gate name, params) sequence of a 1q run -> its fused
#: replacement (``None`` = "keep the original run").  The fused form is a
#: pure function of the run's gates, and service traffic repeats the
#: same few circuits endlessly (and level 3 re-fuses each circuit to a
#: fixpoint), so the matrix-product + ZYZ extraction of a repeated run
#: is paid once.  Gates are frozen dataclasses, safe to share.
_FUSED_RUNS: "OrderedDict[Tuple, Optional[Tuple]]" = OrderedDict()
_FUSED_RUNS_MAX = 4096

_SELF_INVERSE = {"x", "y", "z", "h", "cx", "cz", "swap", "ccx", "cswap",
                 "id"}


def cancel_adjacent_pairs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove adjacent identical self-inverse gates on the same qubits.

    "Adjacent" means no intervening instruction touches any of the gate's
    qubits.
    """
    kept: List[Optional[Instruction]] = list(circuit.instructions)
    last_on_qubit: Dict[int, int] = {}
    for idx, inst in enumerate(circuit.instructions):
        cancel_with: Optional[int] = None
        if inst.name in _SELF_INVERSE:
            prev_idxs = {last_on_qubit.get(q) for q in inst.qubits}
            if len(prev_idxs) == 1:
                prev_idx = prev_idxs.pop()
                if prev_idx is not None and kept[prev_idx] is not None:
                    prev = kept[prev_idx]
                    if (prev.name == inst.name
                            and prev.qubits == inst.qubits):
                        cancel_with = prev_idx
        if cancel_with is not None:
            kept[cancel_with] = None
            kept[idx] = None
            # The cancelled pair no longer blocks its qubits: restore the
            # previous frontier lazily by clearing; subsequent gates will
            # re-scan from scratch below.
            for q in inst.qubits:
                last_on_qubit.pop(q, None)
            continue
        for q in inst.qubits:
            last_on_qubit[q] = idx
        for c in inst.clbits:
            # Measures never cancel; track via impossible qubit key.
            last_on_qubit[-1 - c] = idx
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                         circuit.name)
    for inst in kept:
        if inst is not None:
            out._instructions.append(inst)  # noqa: SLF001
    return out


_UNCACHED = object()


def _fused_run(run: List[Instruction]) -> Optional[Tuple]:
    """Fused replacement of one 1q run, or ``None`` to keep it as-is.

    Served from :data:`_FUSED_RUNS` when the run's ``(name, params)``
    signature has been fused before; symbolic (unhashable) parameters
    fall through to an uncached fuse.
    """
    try:
        key = tuple((inst.name, inst.params) for inst in run)
        cached = _FUSED_RUNS.get(key, _UNCACHED)
    except TypeError:
        key, cached = None, _UNCACHED
    if cached is not _UNCACHED:
        _FUSED_RUNS.move_to_end(key)
        return cached
    mat = np.eye(2, dtype=complex)
    for inst in run:
        mat = inst.gate.matrix() @ mat
    decomposed = decompose_oneq_gate(_matrix_gate(mat))
    fused = tuple(decomposed) if len(decomposed) <= len(run) else None
    if key is not None:
        _FUSED_RUNS[key] = fused
        while len(_FUSED_RUNS) > _FUSED_RUNS_MAX:
            _FUSED_RUNS.popitem(last=False)
    return fused


def fuse_oneq_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Collapse maximal 1q-gate runs per qubit into minimal basis gates.

    A run is replaced by its fused ZXZXZ form only when that form is not
    longer than the run itself (a 2-gate run can fuse into 5 basis gates,
    which would be a pessimization).
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                         circuit.name)
    pending: Dict[int, List[Instruction]] = {}

    def flush(q: int) -> None:
        run = pending.pop(q, None)
        if not run:
            return
        fused = _fused_run(run)
        if fused is not None:
            for g in fused:
                out.append(g, (q,))
        else:
            for inst in run:
                out._instructions.append(inst)  # noqa: SLF001

    for inst in circuit:
        if (not inst.gate.is_directive and len(inst.qubits) == 1
                and inst.name != "delay"
                and not isinstance(inst.gate, ControlFlowOp)):
            pending.setdefault(inst.qubits[0], []).append(inst)
            continue
        for q in inst.qubits:
            flush(q)
        out._instructions.append(inst)  # noqa: SLF001
    for q in sorted(pending):
        flush(q)
    return out


def combine_adjacent_delays(circuit: QuantumCircuit) -> QuantumCircuit:
    """Merge runs of consecutive ``delay`` instructions on one qubit.

    Only *literally adjacent* instructions merge (no reordering across
    other qubits' operations), so the noise channels every other
    instruction sees keep their original order — amplitude/phase damping
    over ``t1`` then ``t2`` equals one channel over ``t1 + t2``, which is
    what makes the merge semantics-preserving.  Zero-duration delays are
    dropped.  DD insertion and loop unrolling both produce these runs.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                         circuit.name)
    pending_qubit: Optional[int] = None
    pending_duration = 0.0

    def flush() -> None:
        nonlocal pending_qubit, pending_duration
        if pending_qubit is not None and pending_duration > 0.0:
            out._instructions.append(  # noqa: SLF001
                Instruction(Gate("delay", 1, (pending_duration,)),
                            (pending_qubit,)))
        pending_qubit = None
        pending_duration = 0.0

    for inst in circuit:
        if inst.name == "delay":
            q = inst.qubits[0]
            if pending_qubit == q:
                pending_duration += float(inst.params[0])
            else:
                flush()
                pending_qubit = q
                pending_duration = float(inst.params[0])
            continue
        flush()
        out._instructions.append(inst)  # noqa: SLF001
    flush()
    return out


class _MatrixGateShim:
    """Minimal duck-typed gate carrying an explicit matrix."""

    def __init__(self, mat: np.ndarray) -> None:
        self._mat = mat
        self.name = "_fused"
        self.num_qubits = 1
        self.params = ()

    def matrix(self) -> np.ndarray:
        return self._mat


def _matrix_gate(mat: np.ndarray) -> "_MatrixGateShim":
    return _MatrixGateShim(mat)


def optimize_circuit(circuit: QuantumCircuit,
                     optimization_level: int = 3) -> QuantumCircuit:
    """Run the optimization pipeline for the given level.

    Level 0: nothing. Level 1: pair cancellation. Level 2: + 1q-run
    fusion. Level 3: iterate both to a fixpoint.
    """
    if optimization_level <= 0:
        return circuit
    current = cancel_adjacent_pairs(circuit)
    if optimization_level == 1:
        return current
    current = fuse_oneq_runs(current)
    if optimization_level == 2:
        return current
    for _ in range(10):
        nxt = fuse_oneq_runs(cancel_adjacent_pairs(current))
        if len(nxt) == len(current):
            return nxt
        current = nxt
    return current

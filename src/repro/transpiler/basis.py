"""Decomposition into the device basis {rz, sx, x, cx}.

Two stages:

1. multi-qubit gates are rewritten into CX + 1q gates using textbook
   decompositions;
2. every 1q gate is converted to the ZXZXZ form
   ``RZ(phi+pi) SX RZ(theta+pi) SX RZ(lam)`` via U3 angle extraction from
   its matrix (exact up to global phase, which is unobservable).
"""

from __future__ import annotations

import cmath
import math
from typing import List, Tuple

import numpy as np

from ..circuits.circuit import Instruction, QuantumCircuit
from ..circuits.gates import BASIS_GATES, Gate, gate

__all__ = ["zyz_angles", "decompose_to_basis", "decompose_oneq_gate"]

_TOL = 1e-10


def zyz_angles(matrix: np.ndarray) -> Tuple[float, float, float]:
    """Extract U3 angles ``(theta, phi, lam)`` from a 1q unitary.

    ``U ~ e^{i alpha} U3(theta, phi, lam)`` — the global phase alpha is
    dropped.
    """
    u00, u01 = matrix[0]
    u10, u11 = matrix[1]
    cos_half = min(abs(u00), 1.0)
    theta = 2.0 * math.acos(cos_half)
    if abs(u00) > _TOL and abs(u10) > _TOL:
        alpha = cmath.phase(u00)
        phi = cmath.phase(u10) - alpha
        lam = cmath.phase(-u01) - alpha
    elif abs(u00) <= _TOL:
        # theta = pi: only phi+lam-like combination observable.
        theta = math.pi
        lam = 0.0
        phi = cmath.phase(u10) - cmath.phase(-u01)
    else:
        # theta = 0: diagonal.
        theta = 0.0
        lam = 0.0
        phi = cmath.phase(u11) - cmath.phase(u00)
    return theta, _wrap(phi), _wrap(lam)


def _wrap(angle: float) -> float:
    """Wrap an angle into (-pi, pi]."""
    wrapped = math.fmod(angle + math.pi, 2 * math.pi)
    if wrapped <= 0:
        wrapped += 2 * math.pi
    return wrapped - math.pi


def decompose_oneq_gate(g: Gate) -> List[Gate]:
    """Rewrite a 1q gate as ZXZXZ basis gates (degenerate forms pruned).

    ``U3(theta, phi, lam) ~ RZ(phi+pi) SX RZ(theta+pi) SX RZ(lam)``;
    pure-Z gates collapse to one RZ, and ``theta = pi/2`` forms collapse
    to RZ SX RZ.
    """
    if g.name in BASIS_GATES:
        return [g]
    theta, phi, lam = zyz_angles(g.matrix())
    if abs(theta) < _TOL:
        total = _wrap(phi + lam)
        if abs(total) < _TOL:
            return []
        return [gate("rz", total)]
    if abs(theta - math.pi / 2) < _TOL:
        return [
            gate("rz", _wrap(lam - math.pi / 2)),
            gate("sx"),
            gate("rz", _wrap(phi + math.pi / 2)),
        ]
    return [
        gate("rz", lam),
        gate("sx"),
        gate("rz", _wrap(theta + math.pi)),
        gate("sx"),
        gate("rz", _wrap(phi + 3 * math.pi)),
    ]


def _emit(qc: QuantumCircuit, name: str, qubits: Tuple[int, ...],
          *params: float) -> None:
    qc.append(gate(name, *params), qubits)


def _decompose_multiq(qc: QuantumCircuit, inst: Instruction) -> None:
    """Rewrite a multi-qubit gate into CX + 1q gates, appending to *qc*."""
    name = inst.name
    q = inst.qubits
    p = inst.params
    if name == "cx":
        _emit(qc, "cx", q)
    elif name == "cz":
        _emit(qc, "h", (q[1],))
        _emit(qc, "cx", q)
        _emit(qc, "h", (q[1],))
    elif name == "cy":
        _emit(qc, "sdg", (q[1],))
        _emit(qc, "cx", q)
        _emit(qc, "s", (q[1],))
    elif name == "ch":
        c, t = q
        _emit(qc, "s", (t,))
        _emit(qc, "h", (t,))
        _emit(qc, "t", (t,))
        _emit(qc, "cx", (c, t))
        _emit(qc, "tdg", (t,))
        _emit(qc, "h", (t,))
        _emit(qc, "sdg", (t,))
    elif name == "swap":
        a, b = q
        _emit(qc, "cx", (a, b))
        _emit(qc, "cx", (b, a))
        _emit(qc, "cx", (a, b))
    elif name == "iswap":
        a, b = q
        _emit(qc, "s", (a,))
        _emit(qc, "s", (b,))
        _emit(qc, "h", (a,))
        _emit(qc, "cx", (a, b))
        _emit(qc, "cx", (b, a))
        _emit(qc, "h", (b,))
    elif name in ("cp", "cu1"):
        lam = p[0]
        c, t = q
        _emit(qc, "p", (c,), lam / 2)
        _emit(qc, "cx", (c, t))
        _emit(qc, "p", (t,), -lam / 2)
        _emit(qc, "cx", (c, t))
        _emit(qc, "p", (t,), lam / 2)
    elif name == "crz":
        theta = p[0]
        c, t = q
        _emit(qc, "rz", (t,), theta / 2)
        _emit(qc, "cx", (c, t))
        _emit(qc, "rz", (t,), -theta / 2)
        _emit(qc, "cx", (c, t))
    elif name == "cry":
        theta = p[0]
        c, t = q
        _emit(qc, "ry", (t,), theta / 2)
        _emit(qc, "cx", (c, t))
        _emit(qc, "ry", (t,), -theta / 2)
        _emit(qc, "cx", (c, t))
    elif name == "crx":
        theta = p[0]
        c, t = q
        _emit(qc, "h", (t,))
        _decompose_multiq(qc, Instruction(gate("crz", theta), (c, t)))
        _emit(qc, "h", (t,))
    elif name == "rzz":
        theta = p[0]
        a, b = q
        _emit(qc, "cx", (a, b))
        _emit(qc, "rz", (b,), theta)
        _emit(qc, "cx", (a, b))
    elif name == "rxx":
        theta = p[0]
        a, b = q
        _emit(qc, "h", (a,))
        _emit(qc, "h", (b,))
        _decompose_multiq(qc, Instruction(gate("rzz", theta), (a, b)))
        _emit(qc, "h", (a,))
        _emit(qc, "h", (b,))
    elif name == "ryy":
        theta = p[0]
        a, b = q
        _emit(qc, "rx", (a,), math.pi / 2)
        _emit(qc, "rx", (b,), math.pi / 2)
        _decompose_multiq(qc, Instruction(gate("rzz", theta), (a, b)))
        _emit(qc, "rx", (a,), -math.pi / 2)
        _emit(qc, "rx", (b,), -math.pi / 2)
    elif name == "ccx":
        a, b, t = q
        _emit(qc, "h", (t,))
        _emit(qc, "cx", (b, t))
        _emit(qc, "tdg", (t,))
        _emit(qc, "cx", (a, t))
        _emit(qc, "t", (t,))
        _emit(qc, "cx", (b, t))
        _emit(qc, "tdg", (t,))
        _emit(qc, "cx", (a, t))
        _emit(qc, "t", (b,))
        _emit(qc, "t", (t,))
        _emit(qc, "h", (t,))
        _emit(qc, "cx", (a, b))
        _emit(qc, "t", (a,))
        _emit(qc, "tdg", (b,))
        _emit(qc, "cx", (a, b))
    elif name == "cswap":
        c, a, b = q
        _emit(qc, "cx", (b, a))
        _decompose_multiq(qc, Instruction(gate("ccx"), (c, a, b)))
        _emit(qc, "cx", (b, a))
    else:
        raise ValueError(f"no decomposition for gate {name!r}")


def decompose_to_basis(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite *circuit* entirely in {rz, sx, x, cx} (+ directives)."""
    # Stage 1: break multi-qubit gates into CX + arbitrary 1q.
    stage1 = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                            circuit.name)
    for inst in circuit:
        if inst.gate.is_directive:
            stage1._instructions.append(inst)  # noqa: SLF001
            continue
        if len(inst.qubits) == 1:
            stage1._instructions.append(inst)  # noqa: SLF001
            continue
        _decompose_multiq(stage1, inst)
    # Stage 2: 1q gates to ZXZXZ.
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                         circuit.name)
    for inst in stage1:
        if inst.gate.is_directive or inst.name in ("cx",):
            out._instructions.append(inst)  # noqa: SLF001
            continue
        if len(inst.qubits) == 1:
            for g in decompose_oneq_gate(inst.gate):
                out.append(g, inst.qubits)
            continue
        raise AssertionError(
            f"stage 1 left a non-CX multi-qubit gate: {inst.name}")
    return out

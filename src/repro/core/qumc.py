"""QuMC baseline (Niu & Todri-Sanial, 2021) — SRB-characterized crosstalk.

QuMC runs the same greedy partitioning as QuCP but, instead of a fixed
sigma, inflates a suspect link's CX error by the *measured* SRB crosstalk
ratio against the specific allocated link it neighbours.  Accurate — but
it costs the full Table-I characterization campaign up front.

Registered as ``"qumc"``; without an explicit ratio map the registry
instance falls back to :func:`oracle_characterization` (the idealized
ground-truth map), built lazily per device.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from ..characterization.srb import CrosstalkCharacterization
from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from ..hardware.topology import Edge
from .allocators import (
    AllocationEngine,
    AllocationResult,
    Allocator,
    PlacementContext,
    register_allocator,
)
from .metrics import estimated_fidelity_score
from .partition import PartitionCandidate

__all__ = ["QumcAllocator", "qumc_allocate", "oracle_characterization"]

RatioMap = Dict[FrozenSet[Edge], float]


def oracle_characterization(device: Device) -> RatioMap:
    """A perfect crosstalk map straight from the ground truth.

    Stands in for a full SRB campaign when benchmarks only need QuMC's
    *decisions* (e.g. the sigma-tuning experiment), not its measurement
    cost.
    """
    coupling = device.coupling
    out: RatioMap = {}
    for e1, e2 in coupling.all_one_hop_edge_pairs():
        out[frozenset((e1, e2))] = device.crosstalk.factor(e1, e2)
    return out


@register_allocator
class QumcAllocator(Allocator):
    """EFS scoring with per-link measured crosstalk multipliers."""

    name = "qumc"

    def __init__(
        self,
        ratio_map: Optional[RatioMap] = None,
        characterization: Optional[CrosstalkCharacterization] = None,
    ) -> None:
        if ratio_map is None and characterization is not None:
            ratio_map = characterization.ratio_map()
        #: None means "oracle per device", resolved lazily in score().
        #: Treated as immutable once passed in.
        self.ratio_map = ratio_map
        self._token = ("qumc", "oracle") if ratio_map is None else (
            "qumc", frozenset(ratio_map.items()))

    def cache_token(self):
        # Value-based: instances with equal ratio maps (or both on the
        # per-device oracle) share one cache namespace, so repeated
        # qumc_allocate calls hit the memo instead of accumulating
        # instance-keyed entries.
        return self._token

    def method_label(self) -> str:
        # Make the free ground-truth characterization visible in the
        # allocation record instead of passing it off as measured SRB.
        return "qumc" if self.ratio_map is not None else "qumc(oracle)"

    def _ratios(self, engine: "AllocationEngine") -> RatioMap:
        if self.ratio_map is not None:
            return self.ratio_map
        # Memoized in the engine's per-device scratch space.
        oracle = engine.scratch.get("qumc_oracle_ratios")
        if oracle is None:
            oracle = oracle_characterization(engine.device)
            engine.scratch["qumc_oracle_ratios"] = oracle
        return oracle

    def score(self, engine: AllocationEngine, ctx: PlacementContext,
              candidate: PartitionCandidate, suspects: Tuple[Edge, ...],
              n2q: int, n1q: int) -> float:
        device = engine.device
        coupling = device.coupling
        ratio_map = self._ratios(engine)
        # Per-link measured multiplier: worst ratio against any allocated
        # one-hop neighbour link.
        total_inflated = 0.0
        edges = coupling.subgraph_edges(candidate.qubits)
        for edge in edges:
            err = device.calibration.cx_error(*edge)
            worst = 1.0
            for other in ctx.edges:
                if coupling.pair_distance(edge, other) == 1:
                    ratio = ratio_map.get(frozenset((edge, other)), 1.0)
                    worst = max(worst, ratio)
            total_inflated += err * worst
        avg_twoq = total_inflated / len(edges) if edges else (
            0.0 if n2q == 0 else 1.0)
        base = estimated_fidelity_score(
            candidate.qubits, coupling, device.calibration, 0, n1q)
        return base + avg_twoq * n2q


def qumc_allocate(
    circuits: Sequence[QuantumCircuit],
    device: Device,
    characterization: Optional[CrosstalkCharacterization] = None,
    ratio_map: Optional[RatioMap] = None,
) -> AllocationResult:
    """Allocate partitions with QuMC using a measured crosstalk map.

    Provide either a :class:`CrosstalkCharacterization` (from a real SRB
    run) or a pre-built *ratio_map*; :func:`oracle_characterization`
    supplies the idealized map.
    """
    if ratio_map is None and characterization is None:
        raise ValueError(
            "QuMC needs SRB data: pass characterization or ratio_map")
    return QumcAllocator(
        ratio_map=ratio_map, characterization=characterization,
    ).allocate(circuits, device)

"""QuMC baseline (Niu & Todri-Sanial, 2021) — SRB-characterized crosstalk.

QuMC runs the same greedy partitioning as QuCP but, instead of a fixed
sigma, inflates a suspect link's CX error by the *measured* SRB crosstalk
ratio against the specific allocated link it neighbours.  Accurate — but
it costs the full Table-I characterization campaign up front.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..characterization.srb import CrosstalkCharacterization
from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from ..hardware.topology import Edge
from .metrics import estimated_fidelity_score
from .partition import PartitionCandidate
from .qucp import AllocationResult, ScoreFn, allocate_greedy

__all__ = ["qumc_allocate", "oracle_characterization"]


def oracle_characterization(device: Device) -> Dict[FrozenSet[Edge], float]:
    """A perfect crosstalk map straight from the ground truth.

    Stands in for a full SRB campaign when benchmarks only need QuMC's
    *decisions* (e.g. the sigma-tuning experiment), not its measurement
    cost.
    """
    coupling = device.coupling
    out: Dict[FrozenSet[Edge], float] = {}
    for e1, e2 in coupling.all_one_hop_edge_pairs():
        out[frozenset((e1, e2))] = device.crosstalk.factor(e1, e2)
    return out


def qumc_allocate(
    circuits: Sequence[QuantumCircuit],
    device: Device,
    characterization: Optional[CrosstalkCharacterization] = None,
    ratio_map: Optional[Dict[FrozenSet[Edge], float]] = None,
) -> AllocationResult:
    """Allocate partitions with QuMC using a measured crosstalk map.

    Provide either a :class:`CrosstalkCharacterization` (from a real SRB
    run) or a pre-built *ratio_map*; :func:`oracle_characterization`
    supplies the idealized map.
    """
    if ratio_map is None:
        if characterization is None:
            raise ValueError(
                "QuMC needs SRB data: pass characterization or ratio_map")
        ratio_map = characterization.ratio_map()

    coupling = device.coupling

    def factory(allocated: List[Tuple[int, ...]]) -> ScoreFn:
        allocated_edges: List[Edge] = []
        for part in allocated:
            allocated_edges.extend(coupling.subgraph_edges(part))

        def score(cand: PartitionCandidate, suspects: Tuple[Edge, ...],
                  n2q: int, n1q: int) -> float:
            # Per-link measured multiplier: worst ratio against any
            # allocated one-hop neighbour link.
            total_inflated = 0.0
            edges = coupling.subgraph_edges(cand.qubits)
            for edge in edges:
                err = device.calibration.cx_error(*edge)
                worst = 1.0
                for other in allocated_edges:
                    if coupling.pair_distance(edge, other) == 1:
                        ratio = ratio_map.get(
                            frozenset((edge, other)), 1.0)
                        worst = max(worst, ratio)
                total_inflated += err * worst
            avg_twoq = total_inflated / len(edges) if edges else (
                0.0 if n2q == 0 else 1.0)
            base = estimated_fidelity_score(
                cand.qubits, coupling, device.calibration, 0, n1q)
            return base + avg_twoq * n2q

        return score

    return allocate_greedy(circuits, device, factory, method="qumc")

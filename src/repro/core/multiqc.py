"""MultiQC baseline (Das et al., MICRO'19) — reliability-only partitioning.

The original multi-programming proposal: Fair and Reliable Partitioning
allocates each program a connected region of reliable qubits, balancing
link quality and connectivity, with **no crosstalk modelling at all**.
Scored here as EFS with sigma = 1 minus a connectivity bonus (denser
regions need fewer SWAPs, which was FRP's key observation).

Registered as ``"multiqc"``.
"""

from __future__ import annotations

from typing import Hashable, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from ..hardware.topology import Edge
from .allocators import (
    AllocationEngine,
    AllocationResult,
    Allocator,
    PlacementContext,
    register_allocator,
)
from .metrics import estimated_fidelity_score
from .partition import PartitionCandidate

__all__ = ["MultiqcAllocator", "multiqc_allocate"]

#: EFS discount per internal link beyond a spanning tree (connectivity
#: bonus weight, tuned so it breaks ties without dominating error terms).
_CONNECTIVITY_WEIGHT = 0.005


@register_allocator
class MultiqcAllocator(Allocator):
    """Crosstalk-blind EFS scoring with a connectivity bonus."""

    name = "multiqc"

    def cache_token(self) -> Hashable:
        # Parameter-free scoring: all instances share the cache.
        return "multiqc"

    def score(self, engine: AllocationEngine, ctx: PlacementContext,
              candidate: PartitionCandidate, suspects: Tuple[Edge, ...],
              n2q: int, n1q: int) -> float:
        device = engine.device
        efs = estimated_fidelity_score(
            candidate.qubits, device.coupling, device.calibration,
            n2q, n1q)
        edges = device.coupling.subgraph_edges(candidate.qubits)
        extra_links = max(0, len(edges) - (len(candidate.qubits) - 1))
        return efs - _CONNECTIVITY_WEIGHT * extra_links


def multiqc_allocate(
    circuits: Sequence[QuantumCircuit],
    device: Device,
) -> AllocationResult:
    """Allocate partitions with the MultiQC (FRP-style) policy."""
    return MultiqcAllocator().allocate(circuits, device)

"""MultiQC baseline (Das et al., MICRO'19) — reliability-only partitioning.

The original multi-programming proposal: Fair and Reliable Partitioning
allocates each program a connected region of reliable qubits, balancing
link quality and connectivity, with **no crosstalk modelling at all**.
Scored here as EFS with sigma = 1 minus a connectivity bonus (denser
regions need fewer SWAPs, which was FRP's key observation).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from ..hardware.topology import Edge
from .metrics import estimated_fidelity_score
from .partition import PartitionCandidate
from .qucp import AllocationResult, ScoreFn, allocate_greedy

__all__ = ["multiqc_allocate"]

#: EFS discount per internal link beyond a spanning tree (connectivity
#: bonus weight, tuned so it breaks ties without dominating error terms).
_CONNECTIVITY_WEIGHT = 0.005


def multiqc_allocate(
    circuits: Sequence[QuantumCircuit],
    device: Device,
) -> AllocationResult:
    """Allocate partitions with the MultiQC (FRP-style) policy."""

    def factory(allocated: List[Tuple[int, ...]]) -> ScoreFn:
        def score(cand: PartitionCandidate, suspects: Tuple[Edge, ...],
                  n2q: int, n1q: int) -> float:
            efs = estimated_fidelity_score(
                cand.qubits, device.coupling, device.calibration,
                n2q, n1q)
            edges = device.coupling.subgraph_edges(cand.qubits)
            extra_links = max(0, len(edges) - (len(cand.qubits) - 1))
            return efs - _CONNECTIVITY_WEIGHT * extra_links
        return score

    return allocate_greedy(circuits, device, factory, method="multiqc")

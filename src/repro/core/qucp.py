"""QuCP — Quantum Crosstalk-aware Parallel workload execution.

The paper's contribution.  QuCP allocates partitions program by program
(largest first, as in QuMC): for every candidate partition of the right
size it computes the Estimated Fidelity Score (Eq. 1), multiplying the CX
error of links that sit one hop from already-allocated programs' links by
the **crosstalk parameter sigma** — thereby *emulating* crosstalk impact
without ever running SRB.  The paper tunes sigma and finds that
``sigma >= 4`` makes QuCP's partitions match SRB-driven QuMC's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from ..hardware.topology import Edge
from .metrics import estimated_fidelity_score, hardware_throughput
from .partition import (
    PartitionCandidate,
    crosstalk_suspect_pairs,
    grow_partition_candidates,
)

__all__ = ["ProgramAllocation", "AllocationResult", "qucp_allocate",
           "DEFAULT_SIGMA"]

#: The paper's tuned crosstalk parameter (Sec. IV-A).
DEFAULT_SIGMA = 4.0


@dataclass(frozen=True)
class ProgramAllocation:
    """One program's placement."""

    index: int
    circuit: QuantumCircuit
    partition: Tuple[int, ...]
    efs: float
    crosstalk_pairs: Tuple[Edge, ...] = ()


@dataclass
class AllocationResult:
    """Output of a parallel-workload allocation."""

    method: str
    device: Device
    allocations: List[ProgramAllocation] = field(default_factory=list)

    @property
    def partitions(self) -> List[Tuple[int, ...]]:
        """Partitions in original program order."""
        ordered = sorted(self.allocations, key=lambda a: a.index)
        return [a.partition for a in ordered]

    def used_qubits(self) -> int:
        """Total number of allocated physical qubits."""
        return sum(len(a.partition) for a in self.allocations)

    def throughput(self) -> float:
        """Hardware throughput achieved by this allocation."""
        return hardware_throughput(self.used_qubits(),
                                   self.device.num_qubits)

    def allocation_for(self, index: int) -> ProgramAllocation:
        """The allocation of the *index*-th input circuit."""
        for a in self.allocations:
            if a.index == index:
                return a
        raise KeyError(f"no allocation for program {index}")


# A scoring hook: (candidate, suspects) -> EFS value.  QuMC overrides the
# multiplier source; QuCP uses the constant sigma.
ScoreFn = Callable[[PartitionCandidate, Tuple[Edge, ...], int, int], float]


def allocate_greedy(
    circuits: Sequence[QuantumCircuit],
    device: Device,
    score_fn_factory: Callable[[List[Tuple[int, ...]]], ScoreFn],
    method: str,
) -> AllocationResult:
    """Shared allocation loop: largest program first, best EFS candidate.

    *score_fn_factory* receives the list of already-allocated partitions
    and returns the scoring function for the next program — this is where
    QuCP (sigma), QuMC (SRB ratios) and the crosstalk-blind baselines
    differ.
    """
    order = sorted(range(len(circuits)),
                   key=lambda i: -circuits[i].num_qubits)
    result = AllocationResult(method=method, device=device)
    allocated_qubits: List[int] = []
    allocated_parts: List[Tuple[int, ...]] = []
    for idx in order:
        circuit = circuits[idx]
        candidates = grow_partition_candidates(
            circuit.num_qubits, device.coupling, device.calibration,
            allocated=allocated_qubits,
        )
        if not candidates:
            raise RuntimeError(
                f"no free partition of size {circuit.num_qubits} left on "
                f"{device.name} for program {idx}")
        score_fn = score_fn_factory(allocated_parts)
        n2q = circuit.num_twoq_gates()
        n1q = circuit.size() - n2q
        best: Optional[Tuple[float, PartitionCandidate,
                             Tuple[Edge, ...]]] = None
        for cand in candidates:
            suspects = crosstalk_suspect_pairs(
                cand.qubits, device.coupling, allocated_parts)
            efs = score_fn(cand, suspects, n2q, n1q)
            if best is None or efs < best[0]:
                best = (efs, cand, suspects)
        assert best is not None
        efs, cand, suspects = best
        result.allocations.append(
            ProgramAllocation(idx, circuit, cand.qubits, efs, suspects))
        allocated_qubits.extend(cand.qubits)
        allocated_parts.append(cand.qubits)
    return result


def qucp_allocate(
    circuits: Sequence[QuantumCircuit],
    device: Device,
    sigma: float = DEFAULT_SIGMA,
) -> AllocationResult:
    """Allocate partitions with QuCP (crosstalk emulated via *sigma*)."""

    def factory(allocated: List[Tuple[int, ...]]) -> ScoreFn:
        def score(cand: PartitionCandidate, suspects: Tuple[Edge, ...],
                  n2q: int, n1q: int) -> float:
            return estimated_fidelity_score(
                cand.qubits, device.coupling, device.calibration,
                n2q, n1q, crosstalk_pairs=suspects, sigma=sigma)
        return score

    return allocate_greedy(circuits, device, factory,
                           method=f"qucp(sigma={sigma:g})")

"""QuCP — Quantum Crosstalk-aware Parallel workload execution.

The paper's contribution.  QuCP allocates partitions program by program
(largest first, as in QuMC): for every candidate partition of the right
size it computes the Estimated Fidelity Score (Eq. 1), multiplying the CX
error of links that sit one hop from already-allocated programs' links by
the **crosstalk parameter sigma** — thereby *emulating* crosstalk impact
without ever running SRB.  The paper tunes sigma and finds that
``sigma >= 4`` makes QuCP's partitions match SRB-driven QuMC's.

The scoring policy lives in :class:`QucpAllocator`, registered as
``"qucp"`` in the allocator registry; :func:`qucp_allocate` is the
stable functional entry point.
"""

from __future__ import annotations

from typing import Hashable, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from ..hardware.topology import Edge
from .allocators import (
    AllocationEngine,
    AllocationResult,
    Allocator,
    PlacementContext,
    ProgramAllocation,
    register_allocator,
)
from .metrics import estimated_fidelity_score
from .partition import PartitionCandidate

__all__ = ["ProgramAllocation", "AllocationResult", "QucpAllocator",
           "qucp_allocate", "DEFAULT_SIGMA"]

#: The paper's tuned crosstalk parameter (Sec. IV-A).
DEFAULT_SIGMA = 4.0


@register_allocator
class QucpAllocator(Allocator):
    """EFS scoring with suspect links inflated by a constant sigma."""

    name = "qucp"

    def __init__(self, sigma: float = DEFAULT_SIGMA) -> None:
        self.sigma = sigma

    def method_label(self) -> str:
        return f"qucp(sigma={self.sigma:g})"

    def cache_token(self) -> Hashable:
        return ("qucp", self.sigma)

    def score(self, engine: AllocationEngine, ctx: PlacementContext,
              candidate: PartitionCandidate, suspects: Tuple[Edge, ...],
              n2q: int, n1q: int) -> float:
        device = engine.device
        return estimated_fidelity_score(
            candidate.qubits, device.coupling, device.calibration,
            n2q, n1q, crosstalk_pairs=suspects, sigma=self.sigma)


def qucp_allocate(
    circuits: Sequence[QuantumCircuit],
    device: Device,
    sigma: float = DEFAULT_SIGMA,
) -> AllocationResult:
    """Allocate partitions with QuCP (crosstalk emulated via *sigma*)."""
    return QucpAllocator(sigma=sigma).allocate(circuits, device)

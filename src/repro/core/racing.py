"""Hedged racing of redundant strategies.

Production queues are judged by their *tail*: p99 turnaround is what a
user stuck behind one slow/unlucky request feels.  The classic hedge is
to run redundant candidates — different allocator strategies, different
compile plans — as speculative duplicates and keep only one:

- ``mode="best"`` evaluates every candidate and commits the one with
  the lowest score (ties broken by candidate order, so the winner is
  deterministic and reproducible under a fixed seed).  This is the
  scheduler's mode: batch packing is raced across allocators and the
  pack admitting the most programs at the best fidelity wins.
- ``mode="first"`` submits every candidate to a worker pool and takes
  the first *successful* completion, cancelling the losers so their
  pool slots free up immediately — the latency hedge proper.

A raising candidate never poisons the race (its error is recorded and a
surviving candidate wins; :class:`RaceError` only if *every* candidate
fails), and a broken worker pool degrades to inline sequential
evaluation (``stats["fallbacks"]``), mirroring
:class:`~repro.core.compile_service.CompileService`'s pool-health
policy.
"""

from __future__ import annotations

import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    wait,
)
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = ["RaceCandidate", "RaceOutcome", "RaceError", "StrategyRace",
           "race_allocations"]

_MODES = ("best", "first")


class RaceError(RuntimeError):
    """Every candidate in a race failed.

    ``errors`` maps candidate name to the exception it raised.
    """

    def __init__(self, errors: Dict[str, BaseException]) -> None:
        detail = "; ".join(f"{name}: {exc!r}"
                           for name, exc in errors.items())
        super().__init__(f"all {len(errors)} race candidates failed "
                         f"({detail})")
        self.errors = dict(errors)


class RaceCandidate:
    """One named strategy in a race."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[..., Any]) -> None:
        self.name = name
        self.fn = fn

    def __repr__(self) -> str:
        return f"RaceCandidate({self.name!r})"


class RaceOutcome:
    """What a race produced: the winner plus full accounting."""

    __slots__ = ("winner", "value", "score", "errors", "cancelled",
                 "fallback")

    def __init__(self, winner: str, value: Any, score: Any,
                 errors: Dict[str, BaseException],
                 cancelled: Tuple[str, ...], fallback: bool) -> None:
        #: Name of the committed candidate.
        self.winner = winner
        #: Its return value.
        self.value = value
        #: Its score (``None`` in first-wins mode).
        self.score = score
        #: Exceptions raised by losing candidates, by name.
        self.errors = errors
        #: Candidates cancelled before running (first-wins mode).
        self.cancelled = cancelled
        #: True when a broken pool forced inline evaluation.
        self.fallback = fallback

    def __repr__(self) -> str:
        return (f"<RaceOutcome winner={self.winner!r} score={self.score!r}"
                f" cancelled={len(self.cancelled)}"
                f" errors={len(self.errors)}>")


def _as_candidates(candidates) -> List[RaceCandidate]:
    out: List[RaceCandidate] = []
    for item in candidates:
        if isinstance(item, RaceCandidate):
            out.append(item)
        else:
            name, fn = item
            out.append(RaceCandidate(name, fn))
    if not out:
        raise ValueError("a race needs at least one candidate")
    names = [c.name for c in out]
    if len(set(names)) != len(names):
        raise ValueError(f"candidate names must be unique: {names}")
    return out


class StrategyRace:
    """Races a fixed set of candidates over varying inputs.

    Parameters
    ----------
    candidates:
        ``(name, fn)`` pairs (or :class:`RaceCandidate` objects); every
        ``fn`` is called with the arguments passed to :meth:`run`.
        Order matters: it is the deterministic tie-break.
    mode:
        ``"best"`` (default) — evaluate all, commit the lowest score;
        ``"first"`` — commit the first successful completion and cancel
        the rest.
    score:
        For ``"best"``: maps a candidate's return value to a comparable
        score (lower wins).  Defaults to the value itself.
    executor:
        Worker pool for concurrent candidate evaluation.  ``"best"``
        runs sequentially inline without one (deterministic and
        allocation-engine-safe — the engines' memo dicts are not
        thread-safe); ``"first"`` lazily builds a private thread pool
        when none is given.
    """

    def __init__(self, candidates: Sequence[Union[RaceCandidate,
                                                  Tuple[str, Callable]]],
                 mode: str = "best",
                 score: Optional[Callable[[Any], Any]] = None,
                 executor=None) -> None:
        if mode not in _MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {_MODES}")
        self.candidates = _as_candidates(candidates)
        self.mode = mode
        self.score = score
        self._executor = executor
        self._own_pool = None
        self._lock = threading.Lock()
        # ``races`` runs of :meth:`run`; ``candidates`` evaluations
        # started; ``cancelled`` losers cancelled before running;
        # ``errors`` candidate failures absorbed; ``fallbacks`` races
        # degraded to inline evaluation by a broken pool.
        self.stats: Dict[str, int] = {
            "races": 0, "candidates": 0, "cancelled": 0, "errors": 0,
            "fallbacks": 0}

    # ------------------------------------------------------------------
    def run(self, *args, **kwargs) -> RaceOutcome:
        """Race every candidate over ``(*args, **kwargs)``."""
        with self._lock:
            self.stats["races"] += 1
        if self.mode == "first":
            return self._run_first(args, kwargs)
        return self._run_best(args, kwargs)

    # ------------------------------------------------------------------
    def _run_best(self, args, kwargs) -> RaceOutcome:
        """Evaluate all candidates; lowest score wins, order breaks ties."""
        evaluated, errors, fallback = self._evaluate_all(args, kwargs)
        if not evaluated:
            raise RaceError(errors)
        scored = []
        for order, (cand, value) in enumerate(evaluated):
            s = value if self.score is None else self.score(value)
            scored.append((s, order, cand, value))
        scored.sort(key=lambda item: (item[0], item[1]))
        best_score, _, winner, value = scored[0]
        return RaceOutcome(winner.name, value, best_score, errors, (),
                           fallback)

    def _evaluate_all(self, args, kwargs):
        """All candidates' results, concurrently when a pool is given."""
        errors: Dict[str, BaseException] = {}
        evaluated: List[Tuple[RaceCandidate, Any]] = []
        fallback = False
        pending = list(self.candidates)
        if self._executor is not None:
            futures: List[Tuple[RaceCandidate, Future]] = []
            try:
                for cand in pending:
                    futures.append(
                        (cand, self._executor.submit(cand.fn, *args,
                                                     **kwargs)))
                    with self._lock:
                        self.stats["candidates"] += 1
                pending = []
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException:  # noqa: BLE001 - pool health
                # Broken/shut-down pool mid-submission: evaluate the
                # unsubmitted tail inline below.
                pending = pending[len(futures):]
                fallback = True
                with self._lock:
                    self.stats["fallbacks"] += 1
            for cand, fut in futures:
                try:
                    evaluated.append((cand, fut.result()))
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BrokenExecutor:
                    # Worker died: strategy health is unknown, so rerun
                    # it inline rather than recording a phantom error.
                    pending.append(cand)
                    if not fallback:
                        fallback = True
                        with self._lock:
                            self.stats["fallbacks"] += 1
                except BaseException as exc:  # noqa: BLE001
                    errors[cand.name] = exc
                    with self._lock:
                        self.stats["errors"] += 1
        for cand in pending:
            with self._lock:
                self.stats["candidates"] += 1
            try:
                evaluated.append((cand, cand.fn(*args, **kwargs)))
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:  # noqa: BLE001
                errors[cand.name] = exc
                with self._lock:
                    self.stats["errors"] += 1
        return evaluated, errors, fallback

    # ------------------------------------------------------------------
    def _run_first(self, args, kwargs) -> RaceOutcome:
        """First successful completion wins; pending losers cancelled."""
        pool = self._first_pool()
        futures: Dict[Future, RaceCandidate] = {}
        errors: Dict[str, BaseException] = {}
        try:
            for cand in self.candidates:
                futures[pool.submit(cand.fn, *args, **kwargs)] = cand
                with self._lock:
                    self.stats["candidates"] += 1
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException:  # noqa: BLE001 - pool health
            return self._first_inline(args, kwargs, futures, errors)
        not_done = set(futures)
        while not_done:
            done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
            for fut in sorted(done, key=lambda f: self.candidates.index(
                    futures[f])):
                cand = futures[fut]
                try:
                    value = fut.result()
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BrokenExecutor:
                    return self._first_inline(args, kwargs, futures,
                                              errors)
                except BaseException as exc:  # noqa: BLE001
                    errors[cand.name] = exc
                    with self._lock:
                        self.stats["errors"] += 1
                    continue
                cancelled = self._cancel_losers(futures, keep=fut)
                return RaceOutcome(cand.name, value, None, errors,
                                   cancelled, False)
        raise RaceError(errors)

    def _first_inline(self, args, kwargs, futures, errors) -> RaceOutcome:
        """Broken pool during a first-wins race: sequential inline
        evaluation of every candidate that has not already failed."""
        with self._lock:
            self.stats["fallbacks"] += 1
        for fut in futures:
            fut.cancel()
        for cand in self.candidates:
            if cand.name in errors:
                continue
            try:
                value = cand.fn(*args, **kwargs)
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:  # noqa: BLE001
                errors[cand.name] = exc
                with self._lock:
                    self.stats["errors"] += 1
                continue
            return RaceOutcome(cand.name, value, None, errors, (), True)
        raise RaceError(errors)

    def _cancel_losers(self, futures: Dict[Future, RaceCandidate],
                       keep: Future) -> Tuple[str, ...]:
        """Cancel every future but *keep*; running ones finish discarded."""
        cancelled: List[str] = []
        for fut, cand in futures.items():
            if fut is keep:
                continue
            if fut.cancel():
                cancelled.append(cand.name)
        with self._lock:
            self.stats["cancelled"] += len(cancelled)
        return tuple(cancelled)

    def _first_pool(self):
        if self._executor is not None:
            return self._executor
        if self._own_pool is None:
            from concurrent.futures import ThreadPoolExecutor
            self._own_pool = ThreadPoolExecutor(
                max_workers=len(self.candidates),
                thread_name_prefix="strategy-race")
        return self._own_pool

    # ------------------------------------------------------------------
    def shutdown(self, wait_: bool = True) -> None:
        """Stop the private pool, if one was created (a caller-supplied
        executor is the caller's to manage)."""
        if self._own_pool is not None:
            self._own_pool.shutdown(wait=wait_)
            self._own_pool = None

    def __enter__(self) -> "StrategyRace":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# allocator racing
# ----------------------------------------------------------------------

def _mean_efs(allocation_result) -> float:
    allocations = allocation_result.allocations
    if not allocations:
        return float("inf")
    return float(sum(a.efs for a in allocations) / len(allocations))


def race_allocations(circuits, device,
                     strategies: Sequence[str] = ("qucp", "cna", "qumc"),
                     mode: str = "best",
                     executor=None):
    """Race allocator strategies over one job; returns
    ``(AllocationResult, RaceOutcome)``.

    In ``"best"`` mode the allocation with the lowest mean estimated
    fidelity score wins (every program placed, lower EFS = better
    expected fidelity); ties fall to the earlier strategy, so the
    winner is stable.  A strategy that cannot place the job (raises)
    just loses the race.
    """
    from .allocators import resolve_allocator

    candidates = []
    for name in strategies:
        allocator = resolve_allocator(name, None)

        def attempt(circuits, device, _alloc=allocator):
            return _alloc.allocate(list(circuits), device)

        candidates.append(RaceCandidate(allocator.name, attempt))
    score = _mean_efs if mode == "best" else None
    race = StrategyRace(candidates, mode=mode, score=score,
                        executor=executor)
    try:
        outcome = race.run(circuits, device)
    finally:
        race.shutdown()
    return outcome.value, outcome

"""Parallel program execution over a persistent worker pool.

With the compile path ~13x faster and persistent across processes
(PRs 3-6), end-to-end job latency is dominated by *simulation*: GIL-bound
numpy running strictly serially inside
:func:`~repro.sim.executor.run_parallel`.  :class:`ExecutionService`
shards that per-program work across a process pool, mirroring
:class:`~repro.core.compile_service.CompileService`:

- the joint (cross-program) half of a batch —
  :func:`~repro.sim.executor.prepare_parallel` (validation, ASAP padding,
  crosstalk scales) and :func:`~repro.sim.executor.spawn_seeds` — runs in
  the **parent**, so after it each program's simulation is a pure
  function of its own ``(circuit, partition, seed, scales, shots)``
  tuple;
- programs are sharded into contiguous per-worker chunks carrying the
  plain-data device fingerprint
  (:func:`~repro.core.compile_service._device_fingerprint_spec` — the
  calibration snapshot, kilobytes) plus the pre-spawned
  :class:`~numpy.random.SeedSequence` children, so the per-program RNG
  streams are **bit-identical to the serial path** regardless of how the
  batch is chunked (enforced by ``tests/test_execution_service.py``);
- each worker rebuilds the :class:`~repro.sim.noise_model.NoiseModel`
  once per calibration fingerprint (process-local cache) and restricts
  it per partition — the same plain-dict construction as
  :meth:`~repro.hardware.devices.Device.noise_model`, hence the same
  floats, hence the same Kraus channels.

``mode="auto"`` routes each batch to serial/thread/process workers from
its estimated simulation cost (batch size x per-program width/shots
cost, measured table below) against the measured pool overheads — so a
single-core host, a tiny batch, or a batch whose total work would not
amortize a fork never pays for a pool it cannot exploit.  A broken
process pool degrades to inline serial execution (``stats["fallbacks"]``)
and is replaced compare-and-swap style, exactly like the compile
service.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..hardware.devices import Device
from ..sim.density_matrix import SimulationResult, run_circuit
from ..sim.executor import Program, prepare_parallel, spawn_seeds
from ..sim.noise_model import NoiseModel
from ..sim.readout import SeedLike
from ..transpiler.context import calibration_fingerprint
from .compile_service import _device_fingerprint_spec

__all__ = ["ExecutionService"]

_MODES = ("auto", "thread", "process", "serial")

#: Batches at or below this size always run inline: even at the widest
#: committed program the pool entry overhead is comparable to the work.
_SERIAL_MAX_BATCH = 2

#: Measured per-program simulation cost (ms) by circuit width — 20-gate
#: heavy-tail-mix programs at 4096 shots on the committed crossover run
#: (``benchmarks/bench_execution.py``, see ``BENCH_execution.json``).
#: Above the table the cost is extrapolated at the measured ~2x/qubit
#: slope (density-matrix state doubles per qubit twice, but gate count
#: per layer shrinks the constant).
_PROGRAM_COST_MS: Dict[int, float] = {
    1: 2.0, 2: 3.8, 3: 6.3, 4: 7.3, 5: 12.6, 6: 17.8, 7: 48.0,
}
_COST_TABLE_MAX = max(_PROGRAM_COST_MS)

#: Extra cost per 4096 shots beyond the first (sampling is cheap next to
#: the density-matrix evolution; measured <1 ms at width 7).
_SHOTS_COST_MS_PER_4096 = 0.5

#: Measured routing thresholds (same crossover run): a thread pool costs
#: ~0.1 ms/task to enter, a process pool ~2 ms to create plus ~16 ms
#: first-dispatch round-trip and per-chunk pickling.  Below
#: ``_THREAD_MIN_BATCH_MS`` of estimated work the pool entry is a pure
#: tax — stay serial; below ``_PROCESS_MIN_BATCH_MS`` a fork cannot
#: amortize — use threads (numpy releases the GIL inside its kernels,
#: so threads overlap partially at zero pickling cost).
_THREAD_MIN_BATCH_MS = 25.0
_PROCESS_MIN_BATCH_MS = 120.0


# ----------------------------------------------------------------------
# process-worker side: fingerprint shipping + noise-model rehydration
# ----------------------------------------------------------------------

#: Process-local noise models, one per calibration fingerprint: every
#: chunk a worker serves after the first reuses the rebuilt model.
_WORKER_NOISE: Dict[Hashable, NoiseModel] = {}


def _noise_from_calibration(calibration) -> NoiseModel:
    """The exact :meth:`Device.noise_model` construction, from a snapshot.

    Same plain-dict copies of the same calibration values, so the
    worker-side model is bit-identical to the parent's.
    """
    return NoiseModel(
        oneq_error=dict(calibration.oneq_error),
        twoq_error=dict(calibration.twoq_error),
        readout_error=dict(calibration.readout_error),
        t1=dict(calibration.t1),
        t2=dict(calibration.t2),
        detuning=dict(calibration.detuning),
        gate_duration=dict(calibration.gate_duration),
    )


def _worker_noise(calibration) -> NoiseModel:
    """This worker process's noise model for *calibration* (cached)."""
    key = calibration_fingerprint(calibration)
    model = _WORKER_NOISE.get(key)
    if model is None:
        model = _noise_from_calibration(calibration)
        _WORKER_NOISE[key] = model
    return model


def _simulate_chunk(
    spec: Dict,
    tasks: Sequence[Tuple],
    shots: int,
    noisy: bool,
) -> List[SimulationResult]:
    """Simulate one shard of (circuit, partition, seed, scales) tasks.

    Mirrors the serial loop of :func:`~repro.sim.executor.run_parallel`
    exactly: the seed is the parent-spawned per-program child stream and
    the scales come from the parent's joint schedule, so nothing here
    depends on which chunk (or how many chunks) the batch was cut into.
    """
    noise = _worker_noise(spec["calibration"]) if noisy else None
    results: List[SimulationResult] = []
    for circuit, partition, seed, scales in tasks:
        restricted = noise.restricted(partition) if noise is not None \
            else None
        results.append(
            run_circuit(circuit, noise_model=restricted, shots=shots,
                        seed=seed, error_scales=scales))
    return results


class ExecutionService:
    """Executes program batches across a persistent worker pool.

    Parameters
    ----------
    max_workers:
        Pool size (``None`` = executor default).  Ignored for
        ``mode="serial"``.
    mode:
        ``"auto"`` (default; per-batch choice via :meth:`choose_route`),
        ``"thread"``, ``"process"``, or ``"serial"`` (no pool — same
        API, inline execution, bit-identical to
        :func:`~repro.sim.executor.run_parallel`).

    The service is stateless across batches apart from its pools and
    :attr:`stats`; any number of executors may share one instance.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 mode: str = "auto") -> None:
        if mode not in _MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {_MODES}")
        self.mode = mode
        self._max_workers = max_workers
        # Pools are lazy: auto mode may never need one of them, and a
        # process pool costs real fork/spawn time.
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        # ``batches``/``programs`` count everything routed through
        # :meth:`run_parallel`; ``chunks`` process-pool shards shipped;
        # ``fallbacks`` programs executed inline after a broken or
        # shut-down pool; ``*_batches`` per-route accounting.
        self._requests: Dict[str, int] = {
            "batches": 0, "programs": 0, "chunks": 0, "fallbacks": 0,
            "serial_batches": 0, "thread_batches": 0, "process_batches": 0,
        }

    @property
    def stats(self) -> Dict[str, int]:
        """Request accounting (copy): batches, programs, chunks,
        fallbacks, and per-route batch counts."""
        with self._lock:
            return dict(self._requests)

    # ------------------------------------------------------------------
    @staticmethod
    def estimate_batch_ms(batch_size: int, max_program_qubits: int,
                          shots: int) -> float:
        """Estimated serial simulation cost of one batch (ms).

        Per-program cost from the measured width table (extrapolated at
        ~2x/qubit above it) plus the measured marginal shot-sampling
        cost, times the batch size.  This deliberately prices every
        program at the batch's *widest* width — over-estimating mixed
        batches routes them to a pool a little early, which on a
        multi-core host is the cheap direction to err.
        """
        width = max(1, max_program_qubits)
        if width <= _COST_TABLE_MAX:
            per_program = _PROGRAM_COST_MS[width]
        else:
            per_program = (_PROGRAM_COST_MS[_COST_TABLE_MAX]
                           * 2.0 ** (width - _COST_TABLE_MAX))
        per_program += _SHOTS_COST_MS_PER_4096 * max(shots, 0) / 4096.0
        return batch_size * per_program

    @classmethod
    def choose_route(cls, batch_size: int, max_program_qubits: int,
                     shots: int = 4096,
                     cores: Optional[int] = None) -> str:
        """Worker route for one batch, from measured cost/overhead data.

        Tiny batches run inline; a single-core host always runs inline
        (no pool can win without a second core — the compile bench's
        1-core ``cold_process`` regression is exactly this mistake);
        batches whose estimated work would not amortize a fork use
        threads; the rest shard across the process pool.  Thresholds
        come from the committed crossover measurement
        (``benchmarks/bench_execution.py --crossover``), not guesses.
        """
        if batch_size <= _SERIAL_MAX_BATCH:
            return "serial"
        if cores is None:
            cores = os.cpu_count() or 1
        if cores <= 1:
            return "serial"
        estimated = cls.estimate_batch_ms(batch_size, max_program_qubits,
                                          shots)
        if estimated < _THREAD_MIN_BATCH_MS:
            return "serial"
        if estimated < _PROCESS_MIN_BATCH_MS:
            return "thread"
        return "process"

    def _thread_executor(self) -> ThreadPoolExecutor:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="execution-service")
        return self._thread_pool

    def _process_executor(self) -> ProcessPoolExecutor:
        if self._process_pool is None:
            self._process_pool = ProcessPoolExecutor(
                max_workers=self._max_workers)
        return self._process_pool

    # ------------------------------------------------------------------
    def run_parallel(
        self,
        programs: Sequence[Program],
        device: Device,
        shots: int = 4096,
        seed: SeedLike = None,
        scheduling: str = "alap",
        include_crosstalk: bool = True,
        noisy: bool = True,
    ) -> List[SimulationResult]:
        """Drop-in, bit-identical replacement for
        :func:`repro.sim.executor.run_parallel`.

        The joint half (validation, ASAP padding, crosstalk scales, seed
        spawning) runs here in the parent; only the per-program
        simulations are distributed, so the results cannot depend on the
        route or the chunking.
        """
        effective, scales = prepare_parallel(
            programs, device, scheduling=scheduling,
            include_crosstalk=include_crosstalk, noisy=noisy)
        seeds = spawn_seeds(seed, len(effective))

        route = self.mode
        if route == "auto":
            max_width = max(
                (p.circuit.num_qubits for p in effective), default=0)
            route = self.choose_route(len(effective), max_width, shots)
        with self._lock:
            self._requests["batches"] += 1
            self._requests["programs"] += len(effective)
            self._requests[f"{route}_batches"] += 1

        if route == "serial":
            return self._run_inline(effective, scales, seeds, device,
                                    shots, noisy, range(len(effective)))
        if route == "thread":
            return self._run_threads(effective, scales, seeds, device,
                                     shots, noisy)
        return self._run_process(effective, scales, seeds, device,
                                 shots, noisy)

    # ------------------------------------------------------------------
    def _run_inline(self, effective: Sequence[Program],
                    scales: Sequence[Dict[int, float]],
                    seeds: Sequence[Optional[np.random.SeedSequence]],
                    device: Device, shots: int, noisy: bool,
                    indices: Sequence[int]) -> List[SimulationResult]:
        """The serial loop of :func:`sim.executor.run_parallel`, verbatim."""
        full_noise = device.noise_model() if noisy else None
        results: List[SimulationResult] = []
        for k in indices:
            prog = effective[k]
            noise = None
            if noisy:
                noise = full_noise.restricted(prog.partition)
            results.append(
                run_circuit(prog.circuit, noise_model=noise, shots=shots,
                            seed=seeds[k], error_scales=scales[k]))
        return results

    def _run_threads(self, effective: Sequence[Program],
                     scales: Sequence[Dict[int, float]],
                     seeds: Sequence[Optional[np.random.SeedSequence]],
                     device: Device, shots: int, noisy: bool
                     ) -> List[SimulationResult]:
        """One thread task per program; parent-side noise restriction."""
        full_noise = device.noise_model() if noisy else None
        futures: List[Future] = []
        submitted = 0
        try:
            pool = self._thread_executor()
            for k, prog in enumerate(effective):
                noise = (full_noise.restricted(prog.partition)
                         if noisy else None)
                futures.append(
                    pool.submit(run_circuit, prog.circuit,
                                noise_model=noise, shots=shots,
                                seed=seeds[k], error_scales=scales[k]))
                submitted = k + 1
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException:  # noqa: BLE001 - pool health, not a program
            # A shut-down/unusable thread pool must not fail the batch:
            # run the unsubmitted tail inline (already-submitted futures
            # still resolve normally below).
            rest = range(submitted, len(effective))
            with self._lock:
                self._requests["fallbacks"] += len(rest)
            tail = self._run_inline(effective, scales, seeds, device,
                                    shots, noisy, rest)
            return [f.result() for f in futures] + tail
        return [f.result() for f in futures]

    def _run_process(self, effective: Sequence[Program],
                     scales: Sequence[Dict[int, float]],
                     seeds: Sequence[Optional[np.random.SeedSequence]],
                     device: Device, shots: int, noisy: bool
                     ) -> List[SimulationResult]:
        """Contiguous per-worker chunks over the process pool."""
        spec = _device_fingerprint_spec(device)
        workers = self._max_workers or os.cpu_count() or 1
        n_chunks = max(1, min(len(effective), workers))
        bounds = [round(i * len(effective) / n_chunks)
                  for i in range(n_chunks + 1)]
        chunks: List[Tuple[int, int, Future]] = []
        submitted_upto = 0
        pool = None
        try:
            pool = self._process_executor()
            for lo, hi in zip(bounds, bounds[1:]):
                if lo == hi:
                    continue
                tasks = [(effective[k].circuit, effective[k].partition,
                          seeds[k], scales[k]) for k in range(lo, hi)]
                chunks.append(
                    (lo, hi, pool.submit(_simulate_chunk, spec, tasks,
                                         shots, noisy)))
                submitted_upto = hi
                with self._lock:
                    self._requests["chunks"] += 1
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException:  # noqa: BLE001 - pool health, not a program
            # pool.submit (or pool creation) raised synchronously: a
            # broken or shut-down pool.  Drop it so the next batch gets
            # a fresh one; the unsubmitted tail runs inline below.
            self._drop_pool(pool)
            pool = None

        results: List[Optional[SimulationResult]] = [None] * len(effective)
        for lo, hi, fut in chunks:
            try:
                chunk_results = fut.result()
                if len(chunk_results) != hi - lo:
                    raise RuntimeError(
                        f"chunk returned {len(chunk_results)} results for "
                        f"{hi - lo} tasks")
            except (KeyboardInterrupt, SystemExit):
                raise
            except BrokenExecutor:
                # A worker died mid-chunk (OOM-killed, crashed
                # interpreter): pool health, not a program error — the
                # programs themselves are fine, so simulate them inline.
                self._drop_pool(pool)
                pool = None
                with self._lock:
                    self._requests["fallbacks"] += hi - lo
                chunk_results = self._run_inline(
                    effective, scales, seeds, device, shots, noisy,
                    range(lo, hi))
            results[lo:hi] = chunk_results
        if submitted_upto < len(effective):
            rest = range(submitted_upto, len(effective))
            with self._lock:
                self._requests["fallbacks"] += len(rest)
            results[submitted_upto:] = self._run_inline(
                effective, scales, seeds, device, shots, noisy, rest)
        return results  # type: ignore[return-value]

    def _drop_pool(self, pool) -> None:
        """Discard *pool* compare-and-swap style (only if still current).

        Another thread may already have replaced it with a healthy pool;
        dropping unconditionally would leak that one's workers.
        """
        if pool is None:
            return
        with self._lock:
            if self._process_pool is not pool:
                return
            self._process_pool = None
        try:
            pool.shutdown(wait=False)
        except Exception:  # noqa: BLE001 - already broken
            pass

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pools (the service stays usable: the next
        batch that needs a pool lazily builds a fresh one)."""
        thread_pool, process_pool = None, None
        with self._lock:
            thread_pool, self._thread_pool = self._thread_pool, None
            process_pool, self._process_pool = self._process_pool, None
        if thread_pool is not None:
            thread_pool.shutdown(wait=wait)
        if process_pool is not None:
            process_pool.shutdown(wait=wait)

    def __enter__(self) -> "ExecutionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

"""Qubit partitioning: candidate generation (QuMC's greedy sub-graph
heuristic) and crosstalk-pair detection against already-allocated regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..hardware.calibration import Calibration
from ..hardware.topology import CouplingMap, Edge

__all__ = [
    "PartitionCandidate",
    "grow_partition_candidates",
    "crosstalk_suspect_pairs",
]


@dataclass(frozen=True)
class PartitionCandidate:
    """A connected set of free physical qubits that can host a program."""

    qubits: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(sorted(self.qubits)))

    def __len__(self) -> int:
        return len(self.qubits)


def _grow_from(
    start: int,
    size: int,
    coupling: CouplingMap,
    calibration: Calibration,
    blocked: Set[int],
) -> Optional[Tuple[int, ...]]:
    """Greedily grow a connected region from *start*, best neighbour first.

    Neighbour quality combines its readout error, its 1q error, and the
    best CX error of a link connecting it to the region (QuMC's greedy
    sub-graph expansion).
    """
    if start in blocked:
        return None
    region: Set[int] = {start}
    while len(region) < size:
        frontier: Set[int] = set()
        for q in region:
            frontier.update(
                nb for nb in coupling.neighbors(q)
                if nb not in region and nb not in blocked
            )
        if not frontier:
            return None

        def quality(nb: int) -> float:
            link_err = min(
                calibration.cx_error(nb, q)
                for q in region if coupling.is_edge(nb, q)
            )
            return (
                link_err
                + calibration.readout_error_avg(nb)
                + calibration.oneq_error[nb]
            )

        region.add(min(frontier, key=quality))
    return tuple(sorted(region))


def grow_partition_candidates(
    size: int,
    coupling: CouplingMap,
    calibration: Calibration,
    allocated: Iterable[int] = (),
) -> List[PartitionCandidate]:
    """All distinct greedy-grown candidates of *size* free qubits.

    One growth attempt starts from every free physical qubit; duplicates
    (identical regions reached from different seeds) are merged.  When
    quality-greedy growth finds nothing (a fragmented chip near full
    occupancy), a BFS fallback returns any connected region of the right
    size, so allocation only fails when no such region exists at all.
    """
    blocked = set(allocated)
    seen: Set[Tuple[int, ...]] = set()
    out: List[PartitionCandidate] = []
    for start in range(coupling.num_qubits):
        region = _grow_from(start, size, coupling, calibration, blocked)
        if region is None or region in seen:
            continue
        seen.add(region)
        out.append(PartitionCandidate(region))
    if out:
        return out
    # Fallback: BFS-prefix regions (existence-complete for connected
    # subsets reachable from any seed).
    for start in range(coupling.num_qubits):
        if start in blocked:
            continue
        order: List[int] = [start]
        visited = {start}
        for q in order:
            if len(order) >= size:
                break
            for nb in coupling.neighbors(q):
                if nb not in visited and nb not in blocked:
                    visited.add(nb)
                    order.append(nb)
                    if len(order) >= size:
                        break
        if len(order) >= size:
            region = tuple(sorted(order[:size]))
            if coupling.is_connected_subset(region) and region not in seen:
                seen.add(region)
                out.append(PartitionCandidate(region))
    return out


def crosstalk_suspect_pairs(
    candidate: Sequence[int],
    coupling: CouplingMap,
    allocated_partitions: Sequence[Sequence[int]],
) -> Tuple[Edge, ...]:
    """Candidate-internal links one hop from any allocated partition's links.

    This is QuCP's ``q_crosstalk`` set: the links whose CX error gets
    multiplied by sigma in the EFS — no characterization data needed,
    only the hardware topology.
    """
    allocated_edges: List[Edge] = []
    for part in allocated_partitions:
        allocated_edges.extend(coupling.subgraph_edges(part))
    suspects: List[Edge] = []
    for edge in coupling.subgraph_edges(candidate):
        for other in allocated_edges:
            if coupling.pair_distance(edge, other) == 1:
                suspects.append(edge)
                break
    return tuple(suspects)

"""CNA baseline (Ohkura) — crosstalk-aware mapping, no partitioning.

The paper's Sec. II-B: "Except CNA, all the previous works propose their
qubit partition algorithms."  CNA compiles each program directly onto the
*remaining free chip* with a noise-adaptive mapping (ref. [16]),
handling crosstalk only at gate level: links one hop away from
already-placed programs get their CX error inflated in the calibration
the mapper/router sees, steering gates away from them when alternatives
exist.

Because there is no reliable-region selection step, CNA's placements
follow the greedy mapper wherever it leads — the structural weakness the
paper's Fig. 3 comparison exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Set, Tuple

from ..circuits.circuit import QuantumCircuit
from ..hardware.calibration import Calibration
from ..hardware.devices import Device
from ..hardware.topology import CouplingMap, Edge
from ..transpiler.basis import decompose_to_basis
from ..transpiler.context import device_context
from ..transpiler.layout import Layout
from ..transpiler.mapping import noise_aware_layout
from ..transpiler.optimize import optimize_circuit
from ..transpiler.routing import route_circuit
from ..transpiler.schedule import schedule_alap
from ..transpiler.transpile import TranspileResult
from .allocators import (
    AllocationEngine,
    AllocationResult,
    Allocator,
    PlacementContext,
    ProgramAllocation,
    register_allocator,
)
from .metrics import estimated_fidelity_score
from .partition import PartitionCandidate

__all__ = ["CnaCompilation", "CnaAllocator", "cna_compile", "cna_allocate",
           "cna_transpile_for_partition"]


@dataclass
class CnaCompilation:
    """CNA output: allocation record plus the already-compiled programs."""

    allocation: AllocationResult
    transpiled: Dict[int, TranspileResult] = field(default_factory=dict)

    def transpiler_fn(self) -> Callable:
        """Adapter for :func:`repro.core.executor.execute_allocation`.

        CNA compiles each program against the free chip *as of its queue
        position*, so the lookup genuinely observes ``alloc.index`` and
        must be cached index-sensitively.
        """
        from ..cache import index_sensitive_transpiler

        @index_sensitive_transpiler
        def lookup(circuit: QuantumCircuit, device: Device,
                   alloc: ProgramAllocation) -> TranspileResult:
            return self.transpiled[alloc.index]

        return lookup


def _free_coupling(device: Device, allocated: Set[int]) -> CouplingMap:
    """Device coupling restricted to unallocated qubits (full indices)."""
    edges = [
        e for e in device.coupling.edges
        if e[0] not in allocated and e[1] not in allocated
    ]
    return CouplingMap(device.num_qubits, edges)


def _inflated_calibration(device: Device,
                          allocated_parts: Sequence[Sequence[int]],
                          inflation: float) -> Calibration:
    """Copy of the device calibration with crosstalk-suspect links
    (one hop from any placed program's internal links) inflated."""
    cal = Calibration(
        oneq_error=dict(device.calibration.oneq_error),
        twoq_error=dict(device.calibration.twoq_error),
        readout_error=dict(device.calibration.readout_error),
        t1=dict(device.calibration.t1),
        t2=dict(device.calibration.t2),
        gate_duration=dict(device.calibration.gate_duration),
    )
    allocated_edges: List[Edge] = []
    for part in allocated_parts:
        allocated_edges.extend(device.coupling.subgraph_edges(part))
    for edge in list(cal.twoq_error):
        for other in allocated_edges:
            if device.coupling.pair_distance(edge, other) == 1:
                cal.twoq_error[edge] = min(
                    cal.twoq_error[edge] * inflation, 0.999)
                break
    return cal


def cna_compile(
    circuits: Sequence[QuantumCircuit],
    device: Device,
    inflation: float = 4.0,
    optimization_level: int = 3,
    schedule: bool = True,
) -> CnaCompilation:
    """Compile *circuits* the CNA way: sequential whole-chip mapping.

    Programs are processed in submission order.  Each is mapped with the
    greedy noise-adaptive layout over every free qubit, routed with the
    crosstalk-inflated calibration, and its *footprint* (every qubit its
    routed circuit touches) becomes its partition.
    """
    result = AllocationResult(method="cna", device=device)
    compilation = CnaCompilation(result)
    allocated: Set[int] = set()
    allocated_parts: List[Tuple[int, ...]] = []

    for idx, circuit in enumerate(circuits):
        free_coupling = _free_coupling(device, allocated)
        calibration = _inflated_calibration(device, allocated_parts,
                                            inflation)
        basis = decompose_to_basis(circuit)
        # Restrict placement to the largest free connected component so
        # routing always has a path.
        import networkx as nx

        components = [
            c for c in nx.connected_components(free_coupling.graph)
            if len(c) > 1 or not allocated
        ]
        usable = max(components, key=len)
        if len(usable) < circuit.num_qubits:
            raise RuntimeError(
                f"CNA: largest free region has {len(usable)} qubits, "
                f"program {idx} needs {circuit.num_qubits}")
        blocked_extra = set(range(device.num_qubits)) - set(usable)
        component_coupling = _free_coupling(
            device, allocated | blocked_extra)

        # One shared context per (free chip, inflated calibration) view:
        # mapping and routing draw on the same Dijkstra tables instead
        # of each building their own.
        ctx = device_context(component_coupling, calibration)
        layout = noise_aware_layout(basis, component_coupling,
                                    calibration, seed=idx, context=ctx)
        routed = route_circuit(basis, component_coupling, layout,
                               calibration, context=ctx)
        optimized = optimize_circuit(routed.circuit, optimization_level)
        if schedule:
            optimized = schedule_alap(optimized,
                                      calibration.gate_duration)

        used = set(optimized.qubits_used())
        used.update(routed.final_layout.physical(q)
                    for q in range(circuit.num_qubits))
        partition = tuple(sorted(used))
        index_of = {p: i for i, p in enumerate(partition)}
        local_circuit = optimized.remapped(
            {p: index_of[p] for p in range(device.num_qubits)
             if p in index_of},
            num_qubits=len(partition))
        local_initial = Layout({
            logical: index_of[routed.initial_layout.physical(logical)]
            for logical in range(circuit.num_qubits)
        })
        local_final = Layout({
            logical: index_of[routed.final_layout.physical(logical)]
            for logical in range(circuit.num_qubits)
        })

        n2q = circuit.num_twoq_gates()
        n1q = circuit.size() - n2q
        efs = estimated_fidelity_score(
            partition, device.coupling, device.calibration, n2q, n1q)
        result.allocations.append(
            ProgramAllocation(idx, circuit, partition, efs))
        compilation.transpiled[idx] = TranspileResult(
            circuit=local_circuit,
            initial_layout=local_initial,
            final_layout=local_final,
            num_swaps=routed.num_swaps,
        )
        allocated.update(partition)
        allocated_parts.append(partition)
    return compilation


@register_allocator
class CnaAllocator(Allocator):
    """CNA as a registry strategy.

    CNA does not score partition candidates — it compiles each program
    onto the whole free chip and lets the routed footprint *become* the
    partition — so it overrides :meth:`allocate` wholesale and cannot
    place programs incrementally for the batching scheduler.
    """

    name = "cna"
    supports_incremental = False

    def __init__(self, inflation: float = 4.0,
                 optimization_level: int = 3,
                 schedule: bool = True) -> None:
        self.inflation = inflation
        self.optimization_level = optimization_level
        self.schedule = schedule

    def score(self, engine: AllocationEngine, ctx: PlacementContext,
              candidate: PartitionCandidate, suspects: Tuple[Edge, ...],
              n2q: int, n1q: int) -> float:
        raise NotImplementedError(
            "CNA has no candidate-scoring step; use allocate()")

    def allocate(self, circuits: Sequence[QuantumCircuit],
                 device: Device) -> AllocationResult:
        return cna_compile(
            circuits, device, inflation=self.inflation,
            optimization_level=self.optimization_level,
            schedule=self.schedule,
        ).allocation


def cna_allocate(
    circuits: Sequence[QuantumCircuit],
    device: Device,
) -> AllocationResult:
    """CNA allocation record only (see :func:`cna_compile` for the full
    compile; executing this allocation with the default transpiler uses
    CNA's footprints but QuCP's per-partition mapping)."""
    return CnaAllocator().allocate(circuits, device)


def cna_transpile_for_partition(
    circuit: QuantumCircuit,
    device: Device,
    partition: Sequence[int],
    crosstalk_suspects: Sequence[Edge],
    inflation: float = 4.0,
    optimization_level: int = 3,
    schedule: bool = True,
    seed: int = 0,
) -> TranspileResult:
    """Gate-level mitigation on a fixed partition: transpile with
    inflated suspect links (used by ablations that isolate CNA's mapping
    policy from its placement policy)."""
    from ..transpiler.transpile import (
        partition_calibration,
        partition_coupling,
        transpile,
    )

    # Fresh (not memoized) induced snapshots: the inflation below
    # mutates the calibration, which must never corrupt the shared
    # partition sub-contexts.  The registry still dedupes the Dijkstra
    # tables across calls with identical suspects/inflation.
    coupling = partition_coupling(device, partition)
    calibration = partition_calibration(device, partition)
    index_of = {p: i for i, p in enumerate(partition)}
    for a, b in crosstalk_suspects:
        if a not in index_of or b not in index_of:
            continue
        la, lb = sorted((index_of[a], index_of[b]))
        calibration.twoq_error[(la, lb)] = min(
            calibration.twoq_error[(la, lb)] * inflation, 0.999)
    return transpile(circuit, coupling, calibration,
                     optimization_level=optimization_level,
                     schedule=schedule, seed=seed)

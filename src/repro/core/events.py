"""Discrete-event simulation primitives for the cloud service layer.

A minimal, deterministic event kernel: timestamped events in a binary
heap, popped in ``(time, kind, insertion order)`` order.  The kind
ordering is load-bearing — at one instant, ARRIVAL < COMPLETION <
OUTAGE < RECOVERY < BREAKER < DISPATCH, so a program arriving exactly
when a device frees up is queued before the dispatch decision runs, a
freed device is marked idle before dispatch looks for capacity, a
batch completing exactly when its device fails still counts as
completed, and an outage, recovery, or circuit-breaker transition is
applied before any same-instant dispatch decision can place work on
(or skip) the affected device.  That
tie-break is what makes the event-driven scheduler reproduce the
legacy synchronous while-loop exactly on single-device traces — and
what makes fault-plan replays bit-identical.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(IntEnum):
    """Event types, in same-instant processing order."""

    ARRIVAL = 0      #: a program joins the pending queue
    COMPLETION = 1   #: a device finishes its batch and frees up
    OUTAGE = 2       #: a device goes offline (fault injection)
    RECOVERY = 3     #: an offline device rejoins the fleet
    BREAKER = 4      #: a circuit-breaker cooldown elapses (half-open)
    DISPATCH = 5     #: an opportunity to pack + launch a batch


@dataclass(frozen=True, order=True)
class Event:
    """One timestamped simulation event."""

    time_ns: float
    kind: EventKind
    seq: int = field(compare=True)
    payload: Any = field(default=None, compare=False)


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()

    def push(self, time_ns: float, kind: EventKind,
             payload: Any = None) -> Event:
        """Schedule an event; same-time ties resolve by kind, then FIFO."""
        if time_ns < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time_ns, kind, next(self._seq), payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        """The earliest event without removing it, or ``None``."""
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[Event]:
        """Pop events until the queue is empty."""
        while self._heap:
            yield heapq.heappop(self._heap)

"""Parallel transpile service over a persistent worker pool.

The cloud service's compile cost is per-program transpilation; with the
:mod:`~repro.transpiler.context` layer the device-invariant tables are
shared, so what remains is embarrassingly parallel per-program work.
:class:`CompileService` batches it across a persistent
thread/process/serial worker set with three layers of reuse:

- the shared :class:`~repro.core.executor.ExecutionCache` (full results,
  keyed by circuit structure + placement + device + hook);
- in-flight coalescing — concurrent requests for the same key await one
  worker instead of compiling twice;
- the fingerprint-keyed :func:`~repro.transpiler.context.device_context`
  registry, warmed per process, so workers never rebuild distance
  tables (thread workers share the parent's; each process-pool worker
  warms its own on first use and keeps it for the pool's lifetime).

It plugs into :func:`repro.core.executor.run_batch` (prefetch: all jobs'
programs are submitted before the first job executes, overlapping
compilation with execution) and :class:`repro.core.CloudScheduler`
(each dispatched batch is submitted as it is admitted).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from ..transpiler.transpile import TranspileResult
from .allocators import AllocationResult, ProgramAllocation
from .executor import ExecutionCache, TranspilerFn, _default_transpiler

__all__ = ["CompileService"]

_MODES = ("thread", "process", "serial")


class CompileService:
    """Batch-transpiles programs across a persistent worker pool.

    Parameters
    ----------
    max_workers:
        Pool size (``None`` = executor default).  Ignored for
        ``mode="serial"``.
    mode:
        ``"thread"`` (default; shares every cache with the workers),
        ``"process"`` (true parallelism; inputs/results are pickled and
        each worker process warms its own context registry), or
        ``"serial"`` (no pool — same API, inline execution).
    cache:
        The shared :class:`ExecutionCache`; a private one is created
        when omitted.  Every submission publishes its result here, so
        executors running against the same cache see compile hits.

    Futures returned by :meth:`submit` resolve to *raw* (shared) results;
    use :meth:`transpile` / :meth:`compile_allocation` to get the
    defensively copied form callers may mutate.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 mode: str = "thread",
                 cache: Optional[ExecutionCache] = None) -> None:
        if mode not in _MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {_MODES}")
        self.mode = mode
        self.cache = cache or ExecutionCache()
        self._pool = None
        if mode == "thread":
            self._pool = ThreadPoolExecutor(
                max_workers=max_workers,
                thread_name_prefix="compile-service")
        elif mode == "process":
            self._pool = ProcessPoolExecutor(max_workers=max_workers)
        self._lock = threading.Lock()
        self._inflight: Dict[Hashable, Future] = {}
        #: Request accounting: ``submitted`` tasks actually handed to a
        #: worker, ``coalesced`` requests that joined an in-flight task,
        #: ``short_circuits`` requests answered straight from the cache.
        self.stats: Dict[str, int] = {
            "submitted": 0, "coalesced": 0, "short_circuits": 0}

    # ------------------------------------------------------------------
    def submit(self, circuit: QuantumCircuit, device: Device,
               allocation: ProgramAllocation,
               transpiler_fn: Optional[TranspilerFn] = None) -> Future:
        """Schedule one transpile; dedups against cache and in-flight work.

        The future resolves once the result is computed *and* published
        to :attr:`cache`.  Its value is the raw cached result — shared,
        do not mutate; resolve through :meth:`transpile` for a fresh
        copy.
        """
        fn = transpiler_fn or _default_transpiler
        key = self.cache.transpile_key(circuit, device, allocation, fn)
        with self._lock:
            found = self.cache.lookup_transpile_raw(key, device, fn)
            if found is not None:
                self.stats["short_circuits"] += 1
                done: Future = Future()
                done.set_result(found)
                return done
            if key is not None:
                inflight = self._inflight.get(key)
                if inflight is not None:
                    self.stats["coalesced"] += 1
                    return inflight
            out: Future = Future()
            if key is not None:
                self._inflight[key] = out
            self.stats["submitted"] += 1

        def publish(result: TranspileResult) -> None:
            self.cache.store_transpile_raw(key, device, fn, result)
            with self._lock:
                self._inflight.pop(key, None)
            out.set_result(result)

        def fail(exc: BaseException) -> None:
            with self._lock:
                self._inflight.pop(key, None)
            out.set_exception(exc)

        if self._pool is None:
            try:
                publish(fn(circuit, device, allocation))
            except BaseException as exc:  # noqa: BLE001 - future carries it
                fail(exc)
            return out

        raw = self._pool.submit(fn, circuit, device, allocation)

        def on_done(f: Future) -> None:
            exc = f.exception()
            if exc is not None:
                fail(exc)
                return
            try:
                publish(f.result())
            except BaseException as e:  # noqa: BLE001
                # concurrent.futures swallows callback exceptions; an
                # unresolved `out` would hang every waiter, so route
                # publication failures into the future instead.
                fail(e)

        raw.add_done_callback(on_done)
        return out

    def transpile(self, circuit: QuantumCircuit, device: Device,
                  allocation: ProgramAllocation,
                  transpiler_fn: Optional[TranspilerFn] = None
                  ) -> TranspileResult:
        """Blocking single transpile through the service (fresh copy)."""
        fut = self.submit(circuit, device, allocation, transpiler_fn)
        return ExecutionCache._fresh(fut.result())

    def submit_allocation(self, allocation_result: AllocationResult,
                          transpiler_fn: Optional[TranspilerFn] = None
                          ) -> List[Future]:
        """Submit every program of one allocated job (program order)."""
        ordered = sorted(allocation_result.allocations,
                         key=lambda a: a.index)
        return [
            self.submit(a.circuit, allocation_result.device, a,
                        transpiler_fn)
            for a in ordered
        ]

    def compile_allocation(self, allocation_result: AllocationResult,
                           transpiler_fn: Optional[TranspilerFn] = None
                           ) -> List[TranspileResult]:
        """Batch-transpile one allocated job; results in program order."""
        futures = self.submit_allocation(allocation_result, transpiler_fn)
        return [ExecutionCache._fresh(f.result()) for f in futures]

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pool (the cache stays usable)."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait)

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

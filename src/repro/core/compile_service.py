"""Parallel transpile service over a persistent worker pool.

The cloud service's compile cost is per-program transpilation; with the
:mod:`~repro.transpiler.context` layer the device-invariant tables are
shared, so what remains is embarrassingly parallel per-program work.
:class:`CompileService` batches it across a persistent
thread/process/serial worker set with three layers of reuse:

- the shared :class:`~repro.core.executor.ExecutionCache` (full results,
  keyed by circuit structure + placement + device + hook);
- in-flight coalescing — concurrent requests for the same key await one
  worker instead of compiling twice;
- the fingerprint-keyed :func:`~repro.transpiler.context.device_context`
  registry, warmed per process, so workers never rebuild distance
  tables (thread workers share the parent's; each process-pool worker
  warms its own on first use and keeps it for the pool's lifetime).

Process mode ships work in *chunks*: one allocation's partitions are
sharded across the workers, and each chunk carries a plain-data device
fingerprint (coupling edges + calibration tables — kilobytes) instead of
a pickled :class:`~repro.transpiler.context.DeviceContext` (graphs,
Dijkstra tables, memoized sub-contexts).  The worker rehydrates the
fingerprint through its process-local context registry, so the first
chunk on a worker builds the tables once and every later chunk hits.
``mode="auto"`` picks serial/thread/process per batch from the batch
size and device width (:meth:`CompileService.choose_route`).

It plugs into :func:`repro.core.executor.run_batch` (prefetch: all jobs'
programs are submitted before the first job executes, overlapping
compilation with execution) and :class:`repro.core.CloudScheduler`
(each dispatched batch is submitted as it is admitted).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..cache import (
    PersistentCache,
    canonical_form,
    dumps_artifact,
    invert_relabel,
    loads_artifact,
    remap_result,
)
from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from ..hardware.topology import CouplingMap
from ..transpiler.context import device_context
from ..transpiler.transpile import TranspileResult, transpile
from .allocators import AllocationResult, ProgramAllocation
from .executor import ExecutionCache, TranspilerFn, _default_transpiler

__all__ = ["CompileService"]

_MODES = ("auto", "thread", "process", "serial")

#: Batches at or below this size run inline: pool dispatch overhead
#: exceeds the work.
_SERIAL_MAX_BATCH = 2

#: Process-pool thresholds: per-task pickling only amortizes on wide
#: devices (long compiles) and real batches (ROADMAP: >30q).
_PROCESS_MIN_BATCH = 8
_PROCESS_MIN_WIDTH = 30


# ----------------------------------------------------------------------
# process-worker side: fingerprint shipping + registry rehydration
# ----------------------------------------------------------------------

def _device_fingerprint_spec(device: Device) -> Dict:
    """Plain-data snapshot of what compilation observes of a device.

    Exactly the values behind the context registry's fingerprint —
    cheap to pickle, and sufficient for a worker to rehydrate the shared
    :class:`DeviceContext` on its side of the process boundary.  The
    calibration is copied by :func:`~repro.transpiler.context.
    _snapshot_calibration` (a dataclass of plain dicts), the single
    field-list authority, so a new :class:`Calibration` field cannot
    silently go missing from worker rehydration.
    """
    from ..transpiler.context import _snapshot_calibration

    return {
        "num_qubits": device.coupling.num_qubits,
        "edges": device.coupling.edges,
        "calibration": _snapshot_calibration(device.calibration),
    }


def _rehydrate_context(spec: Dict):
    """Worker-side context lookup from a fingerprint spec.

    Goes through the process-local :func:`device_context` registry, so
    every chunk after the first reuses the worker's cached tables.
    """
    coupling = CouplingMap(spec["num_qubits"], spec["edges"])
    return device_context(coupling, spec["calibration"])


#: Process-local persistent-store connections, one per path: every
#: chunk a worker serves reuses its open WAL connection.
_WORKER_STORES: Dict[str, PersistentCache] = {}


def _worker_store(path: str) -> PersistentCache:
    """This worker process's connection to the store at *path*."""
    store = _WORKER_STORES.get(path)
    if store is None:
        store = PersistentCache(path)
        _WORKER_STORES[path] = store
    return store


def _compile_partition_chunk(
    spec: Dict,
    tasks: Sequence[Tuple[QuantumCircuit, Tuple[int, ...],
                          Optional[str], Optional[str]]],
    store_path: Optional[str] = None,
) -> List[TranspileResult]:
    """Compile one shard of (circuit, partition, digest, invariants)
    tasks in a worker.

    Mirrors :func:`~repro.core.executor._default_transpiler`
    (``optimization_level=3, schedule=True``) on the rehydrated
    context's memoized partition sub-contexts.  With a *store_path*,
    the worker checks the shared persistent store before compiling —
    another process (or an earlier run) may already have published the
    equivalence class — and publishes what it compiles, so concurrent
    fleet workers race benignly on the same WAL store.  Results are
    always returned in each task's own qubit labeling.
    """
    context = _rehydrate_context(spec)
    store = _worker_store(store_path) if store_path else None
    results: List[TranspileResult] = []
    for circuit, partition, digest, invariants in tasks:
        relabel = None
        if store is not None and digest is not None:
            form = canonical_form(circuit)
            relabel = None if form is None else form.relabel
            payload = store.get(digest)
            if payload is not None:
                canonical = loads_artifact(payload)
                if canonical is not None:
                    results.append(
                        canonical if relabel is None else
                        remap_result(canonical, invert_relabel(relabel)))
                    continue
                store.delete(digest)
        sub = context.partition_context(tuple(int(q) for q in partition))
        result = transpile(
            circuit, sub.coupling, sub.calibration,
            optimization_level=3, schedule=True, context=sub)
        if store is not None and digest is not None:
            store.put(digest, dumps_artifact(remap_result(result, relabel)),
                      invariants or "")
        results.append(result)
    return results


class CompileService:
    """Batch-transpiles programs across a persistent worker pool.

    Parameters
    ----------
    max_workers:
        Pool size (``None`` = executor default).  Ignored for
        ``mode="serial"``.
    mode:
        ``"thread"`` (default; shares every cache with the workers),
        ``"process"`` (true parallelism; chunk-sharded for the default
        transpiler, per-task pickling otherwise), ``"serial"`` (no pool
        — same API, inline execution), or ``"auto"`` (per-batch choice
        via :meth:`choose_route`: inline for tiny batches, process pool
        for big batches on wide devices, threads otherwise).
    cache:
        The shared :class:`ExecutionCache`; a private one is created
        when omitted.  Every submission publishes its result here, so
        executors running against the same cache see compile hits.

    Futures returned by :meth:`submit` resolve to *raw* (shared) results;
    use :meth:`transpile` / :meth:`compile_allocation` to get the
    defensively copied form callers may mutate.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 mode: str = "thread",
                 cache: Optional[ExecutionCache] = None) -> None:
        if mode not in _MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {_MODES}")
        self.mode = mode
        self.cache = cache or ExecutionCache()
        self._max_workers = max_workers
        # Pools are lazy: auto mode may never need one of them, and a
        # process pool costs real fork/spawn time.
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self._inflight: Dict[Hashable, Future] = {}
        # Request accounting: ``submitted`` tasks actually handed to a
        # worker, ``coalesced`` requests that joined an in-flight task,
        # ``short_circuits`` requests answered straight from the cache,
        # ``chunks`` process-pool shards shipped, ``fallbacks``
        # requests compiled inline after a broken/shut-down pool.
        self._requests: Dict[str, int] = {
            "submitted": 0, "coalesced": 0, "short_circuits": 0,
            "chunks": 0, "fallbacks": 0}

    @property
    def stats(self) -> Dict[str, int]:
        """Request accounting merged with the cache's tier counters.

        Request side: ``submitted`` (tasks actually handed to a worker),
        ``coalesced`` (requests that joined an in-flight task),
        ``short_circuits`` (answered straight from the cache),
        ``chunks`` (process-pool shards shipped), ``fallbacks``
        (compiled inline after a broken/shut-down pool).  Cache side:
        see :attr:`ExecutionCache.stats` (hits/misses, evictions,
        equivalence hits, promotions, ``persistent_*``).
        """
        merged = dict(self._requests)
        merged.update(self.cache.stats)
        return merged

    # ------------------------------------------------------------------
    @staticmethod
    def choose_route(batch_size: int, device_width: int,
                     cores: Optional[int] = None) -> str:
        """Worker route for one batch, from its size and device width.

        Tiny batches run inline (``"serial"``); large batches on wide
        devices — where per-program compile time amortizes pickling —
        shard across the process pool; everything else uses threads
        (GIL-bound, but cache-shared and cheap to enter).

        No pool can win without a second core (*cores* defaults to
        ``os.cpu_count()``), so single-core hosts always route serial —
        explicit ``mode="thread"``/``"process"`` still honours the
        caller.  Measured cold-miss crossover on a 1-core host (48
        unique programs): threads 0.90x serial on 27q / 0.93x on 65q
        (GIL-bound compiles pay dispatch overhead with no overlap to
        buy), chunked process 0.68x / 0.59x — serial wins outright.
        """
        if batch_size <= _SERIAL_MAX_BATCH:
            return "serial"
        if cores is None:
            cores = os.cpu_count() or 1
        if cores <= 1:
            return "serial"
        if (batch_size >= _PROCESS_MIN_BATCH
                and device_width >= _PROCESS_MIN_WIDTH):
            return "process"
        return "thread"

    def _thread_executor(self) -> ThreadPoolExecutor:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="compile-service")
        return self._thread_pool

    def _process_executor(self) -> ProcessPoolExecutor:
        if self._process_pool is None:
            self._process_pool = ProcessPoolExecutor(
                max_workers=self._max_workers)
        return self._process_pool

    # ------------------------------------------------------------------
    def submit(self, circuit: QuantumCircuit, device: Device,
               allocation: ProgramAllocation,
               transpiler_fn: Optional[TranspilerFn] = None,
               route: Optional[str] = None) -> Future:
        """Schedule one transpile; dedups against cache and in-flight work.

        The future resolves once the result is computed *and* published
        to :attr:`cache`.  Its value is the raw cached result — shared,
        do not mutate; resolve through :meth:`transpile` for a fresh
        copy.  *route* overrides the worker kind for this request
        (``"serial"``/``"thread"``/``"process"``); single submissions in
        auto mode default to threads.
        """
        fn = transpiler_fn or _default_transpiler
        if route is None:
            route = "thread" if self.mode == "auto" else self.mode
        key = self.cache.transpile_key(circuit, device, allocation, fn)
        with self._lock:
            found, out = self._claim(key, device, fn)
        if out is None:
            return found

        def publish(result: TranspileResult) -> None:
            self.cache.store_transpile_raw(key, device, fn, result)
            with self._lock:
                self._inflight.pop(key, None)
            out.set_result(result)

        def fail(exc: BaseException) -> None:
            with self._lock:
                self._inflight.pop(key, None)
            out.set_exception(exc)

        if route == "serial":
            try:
                publish(fn(circuit, device, allocation))
            except BaseException as exc:  # noqa: BLE001 - future carries it
                fail(exc)
            return out

        pool = (self._process_executor() if route == "process"
                else self._thread_executor())
        raw = pool.submit(fn, circuit, device, allocation)

        def on_done(f: Future) -> None:
            exc = f.exception()
            if exc is not None:
                fail(exc)
                return
            try:
                publish(f.result())
            except BaseException as e:  # noqa: BLE001
                # concurrent.futures swallows callback exceptions; an
                # unresolved `out` would hang every waiter, so route
                # publication failures into the future instead.
                fail(e)

        raw.add_done_callback(on_done)
        return out

    def _claim(self, key: Optional[Hashable], device: Device,
               fn: TranspilerFn
               ) -> Tuple[Optional[Future], Optional[Future]]:
        """Cache/in-flight dedup for one request.

        Call under the lock with *key* precomputed outside it (the
        circuit fingerprint is the expensive part and needs no lock).
        Returns ``(resolved, owned)``: *resolved* is a future the
        caller hands back as-is (cache hit or coalesced join, in which
        case *owned* is ``None``); otherwise *owned* is a fresh future
        the caller must fulfil, registered in-flight under *key*.
        """
        found = self.cache.lookup_transpile_raw(key, device, fn)
        if found is not None:
            self._requests["short_circuits"] += 1
            done: Future = Future()
            done.set_result(found)
            return done, None
        if key is not None:
            inflight = self._inflight.get(key)
            if inflight is not None:
                self._requests["coalesced"] += 1
                return inflight, None
        out: Future = Future()
        if key is not None:
            self._inflight[key] = out
        self._requests["submitted"] += 1
        return None, out

    def transpile(self, circuit: QuantumCircuit, device: Device,
                  allocation: ProgramAllocation,
                  transpiler_fn: Optional[TranspilerFn] = None
                  ) -> TranspileResult:
        """Blocking single transpile through the service (fresh copy)."""
        fut = self.submit(circuit, device, allocation, transpiler_fn)
        return ExecutionCache._fresh(fut.result())

    # ------------------------------------------------------------------
    def submit_allocation(self, allocation_result: AllocationResult,
                          transpiler_fn: Optional[TranspilerFn] = None
                          ) -> List[Future]:
        """Submit every program of one allocated job (program order).

        The worker route is resolved once per batch: explicit modes are
        honoured; ``"auto"`` consults :meth:`choose_route` with the
        batch size and device width.  The process route shards the
        batch's *unique* compile requests into contiguous chunks (one
        per worker), shipping the device fingerprint once per chunk;
        custom hooks fall back to per-task submission (their closures
        rarely survive pickling, and the worker could not rebuild their
        environment from a fingerprint anyway).
        """
        ordered = sorted(allocation_result.allocations,
                         key=lambda a: a.index)
        device = allocation_result.device
        fn = transpiler_fn or _default_transpiler
        route = self.mode
        if route == "auto":
            route = self.choose_route(len(ordered), device.num_qubits)
            if route == "process" and fn is not _default_transpiler:
                route = "thread"
        if route == "process" and fn is _default_transpiler:
            return self._submit_process_chunks(ordered, device)
        return [
            self.submit(a.circuit, device, a, fn, route=route)
            for a in ordered
        ]

    def _submit_process_chunks(self, ordered: Sequence[ProgramAllocation],
                               device: Device) -> List[Future]:
        """Shard default-transpiler requests across the process pool."""
        fn = _default_transpiler
        futures: List[Future] = []
        todo: List[Tuple[Hashable, ProgramAllocation, Future]] = []
        keys = [self.cache.transpile_key(a.circuit, device, a, fn)
                for a in ordered]
        with self._lock:
            for alloc, key in zip(ordered, keys):
                # Within-batch duplicates coalesce via _claim: the first
                # occurrence registers its key in-flight, later ones
                # join it — same mechanism as cross-batch dedup.
                resolved, owned = self._claim(key, device, fn)
                if owned is None:
                    futures.append(resolved)
                    continue
                todo.append((key, alloc, owned))
                futures.append(owned)
        if not todo:
            return futures

        pool = self._process_executor()
        spec = _device_fingerprint_spec(device)
        # Workers open their own connection to the shared WAL store (if
        # one is attached and healthy) and dedup against it before
        # compiling, so a warm store short-circuits even process chunks.
        l2 = self.cache.persistent
        store_path = (None if l2 is None or l2.disabled else l2.path)
        workers = (self._max_workers or os.cpu_count() or 1)
        n_chunks = max(1, min(len(todo), workers))
        bounds = [round(i * len(todo) / n_chunks)
                  for i in range(n_chunks + 1)]
        submitted_upto = 0
        try:
            for lo, hi in zip(bounds, bounds[1:]):
                shard = todo[lo:hi]
                if not shard:
                    continue
                tasks = [(alloc.circuit, alloc.partition,
                          None if key is None else key.digest,
                          None if key is None else key.invariants)
                         for key, alloc, _ in shard]
                raw = pool.submit(_compile_partition_chunk, spec, tasks,
                                  store_path)
                submitted_upto = hi
                raw.add_done_callback(
                    lambda f, shard=shard: self._publish_chunk(
                        f, shard, device, fn, pool))
                with self._lock:
                    self._requests["chunks"] += 1
        except BaseException as exc:  # noqa: BLE001
            rest = todo[submitted_upto:]
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                # Never absorb an interrupt into inline work: fail the
                # claimed futures (so no waiter hangs) and let it
                # propagate.
                with self._lock:
                    for key, _, _ in rest:
                        self._inflight.pop(key, None)
                for _, _, out in rest:
                    out.set_exception(exc)
                raise
            # pool.submit can raise synchronously (a broken or shut-down
            # process pool).  The not-yet-submitted shards' futures are
            # already claimed in-flight; leaving them unresolved would
            # hang every waiter, and failing them would fail the whole
            # job over a pool-health problem — so compile them inline.
            self._fallback_inline(rest, device, pool)
        return futures

    def _fallback_inline(self, shard: Sequence[Tuple[
            Hashable, ProgramAllocation, Future]], device: Device,
            pool=None) -> None:
        """Compile claimed chunk requests inline after a pool failure.

        The requests' futures are already registered in-flight; each one
        resolves (or carries its own compile error) exactly as if a
        worker had served it, so waiters and coalesced joiners cannot
        tell the pool died — only :attr:`stats` records the fallback.
        *pool* is the executor the failed shard was submitted to; it is
        dropped compare-and-swap style (only if still current — another
        thread may already have replaced it with a healthy pool), so the
        *next* process-route batch builds a fresh one instead of
        degrading to inline compilation for the service's remaining
        lifetime.
        """
        fn = _default_transpiler
        dead = None
        with self._lock:
            self._requests["fallbacks"] += len(shard)
            if pool is not None and self._process_pool is pool:
                dead, self._process_pool = pool, None
        if dead is not None:
            try:
                dead.shutdown(wait=False)
            except Exception:  # noqa: BLE001 - already broken
                pass
        for key, alloc, out in shard:
            try:
                result = fn(alloc.circuit, device, alloc)
            except BaseException as exc:  # noqa: BLE001
                with self._lock:
                    self._inflight.pop(key, None)
                out.set_exception(exc)
                continue
            self.cache.store_transpile_raw(key, device, fn, result)
            with self._lock:
                self._inflight.pop(key, None)
            out.set_result(result)

    def _publish_chunk(self, raw: Future,
                       shard: Sequence[Tuple[Hashable, ProgramAllocation,
                                             Future]],
                       device: Device, fn: TranspilerFn,
                       pool=None) -> None:
        """Resolve one chunk's per-program futures from its worker."""
        exc = raw.exception()
        if exc is None:
            try:
                results = raw.result()
                if len(results) != len(shard):
                    raise RuntimeError(
                        f"chunk returned {len(results)} results for "
                        f"{len(shard)} tasks")
            except BaseException as e:  # noqa: BLE001
                exc = e
        if exc is not None:
            if isinstance(exc, BrokenExecutor):
                # A worker died mid-chunk (OOM-killed, crashed
                # interpreter): pool health, not a compile error — the
                # programs themselves are fine, so compile them inline.
                self._fallback_inline(shard, device, pool)
                return
            with self._lock:
                for key, _, _ in shard:
                    self._inflight.pop(key, None)
            for _, _, out in shard:
                out.set_exception(exc)
            return
        for (key, _, out), result in zip(shard, results):
            self.cache.store_transpile_raw(key, device, fn, result)
            with self._lock:
                self._inflight.pop(key, None)
            out.set_result(result)

    def compile_allocation(self, allocation_result: AllocationResult,
                           transpiler_fn: Optional[TranspilerFn] = None
                           ) -> List[TranspileResult]:
        """Batch-transpile one allocated job; results in program order."""
        futures = self.submit_allocation(allocation_result, transpiler_fn)
        return [ExecutionCache._fresh(f.result()) for f in futures]

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pools (the cache stays usable)."""
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=wait)
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=wait)

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

"""Fidelity metrics: PST, JSD, and the Estimated Fidelity Score (Eq. 1).

- **PST** (Eq. 2): probability of a successful trial, for circuits with a
  single correct output.
- **JSD** (Eq. 3–4): Jensen-Shannon divergence between the measured and
  ideal output distributions (symmetric, always finite; base-2 logs so
  the value lies in [0, 1]).
- **EFS** (Eq. 1): ``Avg2q(cross) * #2q + Avg1q * #1q + sum(readout)``
  over a candidate partition, where CX errors of crosstalk-suspected
  pairs are inflated before averaging.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..hardware.calibration import Calibration
from ..hardware.topology import CouplingMap, Edge

__all__ = [
    "pst",
    "kl_divergence",
    "jensen_shannon_divergence",
    "estimated_fidelity_score",
    "hardware_throughput",
    "normalize_distribution",
]


def normalize_distribution(counts: Mapping[str, float]) -> Dict[str, float]:
    """Normalize counts/weights into a probability distribution."""
    total = float(sum(counts.values()))
    if total <= 0:
        raise ValueError("empty distribution")
    return {k: v / total for k, v in counts.items()}


def pst(counts: Mapping[str, float], expected: str) -> float:
    """Probability of a Successful Trial (Eq. 2)."""
    total = float(sum(counts.values()))
    if total <= 0:
        raise ValueError("empty counts")
    return float(counts.get(expected, 0.0)) / total


def kl_divergence(p: Mapping[str, float], q: Mapping[str, float]) -> float:
    """Kullback-Leibler divergence D(P || Q) in bits (Eq. 4).

    Infinite when P has mass where Q has none — which is why the paper
    uses JSD instead.
    """
    total = 0.0
    for key, pv in p.items():
        if pv <= 0:
            continue
        qv = q.get(key, 0.0)
        if qv <= 0:
            return math.inf
        total += pv * math.log2(pv / qv)
    return total


def jensen_shannon_divergence(p: Mapping[str, float],
                              q: Mapping[str, float]) -> float:
    """Jensen-Shannon divergence (Eq. 3), in [0, 1]; 0 iff P = Q."""
    p = normalize_distribution(p)
    q = normalize_distribution(q)
    keys = set(p) | set(q)
    m = {k: 0.5 * (p.get(k, 0.0) + q.get(k, 0.0)) for k in keys}
    jsd = 0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m)
    # Clamp tiny negative rounding artefacts.
    return max(0.0, min(1.0, jsd))


def estimated_fidelity_score(
    partition: Sequence[int],
    coupling: CouplingMap,
    calibration: Calibration,
    num_twoq_gates: int,
    num_oneq_gates: int,
    crosstalk_pairs: Iterable[Edge] = (),
    sigma: float = 1.0,
) -> float:
    """Estimated Fidelity Score of a partition (Eq. 1) — lower is better.

    *crosstalk_pairs* lists the partition-internal links suspected of
    crosstalk with already-allocated programs; their CX error is
    multiplied by *sigma* before averaging, emulating the crosstalk
    impact without SRB characterization.
    """
    edges = coupling.subgraph_edges(partition)
    cross = {tuple(sorted(e)) for e in crosstalk_pairs}
    if edges:
        total = 0.0
        for e in edges:
            err = calibration.cx_error(*e)
            if e in cross:
                err *= sigma
            total += err
        avg_twoq = total / len(edges)
    else:
        avg_twoq = 0.0 if num_twoq_gates == 0 else 1.0
    avg_oneq = (
        sum(calibration.oneq_error[q] for q in partition) / len(partition)
        if partition else 0.0
    )
    readout_sum = sum(
        calibration.readout_error_avg(q) for q in partition)
    return avg_twoq * num_twoq_gates + avg_oneq * num_oneq_gates + readout_sum


def hardware_throughput(qubits_used: int, total_qubits: int) -> float:
    """Used qubits / total qubits."""
    if total_qubits <= 0:
        raise ValueError("total_qubits must be positive")
    return qubits_used / total_qubits

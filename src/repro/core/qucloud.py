"""QuCloud-style baseline (Liu & Dou) — fidelity-degree partitioning.

QuCloud's CDAP allocator ranks physical qubits by *fidelity degree* — a
blend of connectivity and gate/readout quality — and grows partitions
around the best-ranked qubits.  Crosstalk is not modelled during
partitioning (QuCloud's inter-program SWAP sharing, which the paper notes
can *introduce* crosstalk, is out of scope for the fidelity comparison).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from ..hardware.topology import Edge
from .metrics import estimated_fidelity_score
from .partition import PartitionCandidate
from .qucp import AllocationResult, ScoreFn, allocate_greedy

__all__ = ["qucloud_allocate", "fidelity_degree"]


def fidelity_degree(device: Device, qubit: int) -> float:
    """Connectivity x quality rank of a physical qubit (higher = better)."""
    neighbors = device.coupling.neighbors(qubit)
    if not neighbors:
        return 0.0
    link_fid = sum(
        1.0 - device.calibration.cx_error(qubit, nb) for nb in neighbors)
    readout_fid = 1.0 - device.calibration.readout_error_avg(qubit)
    return link_fid * readout_fid


def qucloud_allocate(
    circuits: Sequence[QuantumCircuit],
    device: Device,
) -> AllocationResult:
    """Allocate partitions with the QuCloud (CDAP-style) policy."""
    degree_sum_scale = max(
        fidelity_degree(device, q) for q in range(device.num_qubits))

    def factory(allocated: List[Tuple[int, ...]]) -> ScoreFn:
        def score(cand: PartitionCandidate, suspects: Tuple[Edge, ...],
                  n2q: int, n1q: int) -> float:
            efs = estimated_fidelity_score(
                cand.qubits, device.coupling, device.calibration,
                n2q, n1q)
            degree_bonus = sum(
                fidelity_degree(device, q) for q in cand.qubits
            ) / (degree_sum_scale * len(cand.qubits))
            # Higher fidelity degree lowers the score (better candidate).
            return efs - 0.01 * degree_bonus
        return score

    return allocate_greedy(circuits, device, factory, method="qucloud")

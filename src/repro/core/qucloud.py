"""QuCloud-style baseline (Liu & Dou) — fidelity-degree partitioning.

QuCloud's CDAP allocator ranks physical qubits by *fidelity degree* — a
blend of connectivity and gate/readout quality — and grows partitions
around the best-ranked qubits.  Crosstalk is not modelled during
partitioning (QuCloud's inter-program SWAP sharing, which the paper notes
can *introduce* crosstalk, is out of scope for the fidelity comparison).

Registered as ``"qucloud"``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from ..hardware.topology import Edge
from .allocators import (
    AllocationEngine,
    AllocationResult,
    Allocator,
    PlacementContext,
    register_allocator,
)
from .metrics import estimated_fidelity_score
from .partition import PartitionCandidate

__all__ = ["QucloudAllocator", "qucloud_allocate", "fidelity_degree"]


def fidelity_degree(device: Device, qubit: int) -> float:
    """Connectivity x quality rank of a physical qubit (higher = better)."""
    neighbors = device.coupling.neighbors(qubit)
    if not neighbors:
        return 0.0
    link_fid = sum(
        1.0 - device.calibration.cx_error(qubit, nb) for nb in neighbors)
    readout_fid = 1.0 - device.calibration.readout_error_avg(qubit)
    return link_fid * readout_fid


@register_allocator
class QucloudAllocator(Allocator):
    """EFS scoring minus a normalized fidelity-degree bonus."""

    name = "qucloud"

    def cache_token(self) -> str:
        # Parameter-free scoring: all instances share the cache.
        return "qucloud"

    @staticmethod
    def _degree_scale(engine: AllocationEngine) -> float:
        """Best fidelity degree on the chip; 1.0 when every qubit's
        degree is 0 (fully disconnected device) so the bonus — then
        identically zero — never divides by zero.  Memoized in the
        engine's per-device scratch space."""
        scale = engine.scratch.get("qucloud_degree_scale")
        if scale is None:
            device = engine.device
            scale = max(
                fidelity_degree(device, q)
                for q in range(device.num_qubits))
            if scale <= 0.0:
                scale = 1.0
            engine.scratch["qucloud_degree_scale"] = scale
        return scale

    def score(self, engine: AllocationEngine, ctx: PlacementContext,
              candidate: PartitionCandidate, suspects: Tuple[Edge, ...],
              n2q: int, n1q: int) -> float:
        device = engine.device
        efs = estimated_fidelity_score(
            candidate.qubits, device.coupling, device.calibration,
            n2q, n1q)
        degree_bonus = sum(
            fidelity_degree(device, q) for q in candidate.qubits
        ) / (self._degree_scale(engine) * len(candidate.qubits))
        # Higher fidelity degree lowers the score (better candidate).
        return efs - 0.01 * degree_bonus


def qucloud_allocate(
    circuits: Sequence[QuantumCircuit],
    device: Device,
) -> AllocationResult:
    """Allocate partitions with the QuCloud (CDAP-style) policy."""
    return QucloudAllocator().allocate(circuits, device)

"""Deterministic infrastructure fault injection.

The paper's premise is a shared cloud of *unreliable* devices; the
degradation paths this package promises (outage re-queueing, broken-pool
inline fallback, corrupt-store cold paths) must be tested, not hoped
for.  This module is the one place faults come from, and every fault is
deterministic — a committed :class:`FaultPlan` replays the identical
failure sequence on every run, so chaos tests assert exact outcomes:

- :class:`DeviceOutage` / :class:`FaultPlan` — take fleet devices
  offline at event time *t* (and optionally back online at *t'*).  The
  event-driven :class:`~repro.core.scheduler.CloudScheduler` consumes
  the plan through :meth:`FaultPlan.resolve` (which resolves device
  references against the :class:`~repro.hardware.fleet.DeviceFleet`):
  an in-flight batch on the failed device fails, its programs re-queue
  to surviving devices, and the device rejoins at *t'*.
- :class:`BreakingExecutor` / :func:`inject_broken_process_pool` — a
  process-pool stand-in that breaks on cue (at submit time or
  mid-chunk), driving the :class:`~repro.core.ExecutionService` /
  :class:`~repro.core.CompileService` inline-fallback paths without
  having to OOM-kill a real worker.
- :func:`corrupt_file` / :func:`write_foreign_store` /
  :func:`locked_database` — damage an on-disk SQLite store (compile
  cache or job store) the ways real disks do: truncation, garbage
  bytes, a foreign schema, a writer holding an exclusive lock.
"""

from __future__ import annotations

import os
import sqlite3
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "DeviceOutage",
    "FaultPlan",
    "ResolvedOutage",
    "BreakingExecutor",
    "inject_broken_process_pool",
    "corrupt_file",
    "write_foreign_store",
    "locked_database",
]


# ----------------------------------------------------------------------
# device outages
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DeviceOutage:
    """One device going offline at a fixed event time.

    *device* is a fleet index or a (unique) device name; *duration_ns*
    of ``None`` means the device never comes back this run.
    """

    device: Union[int, str]
    start_ns: float
    duration_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_ns < 0:
            raise ValueError("outage start must be non-negative")
        if self.duration_ns is not None and self.duration_ns <= 0:
            raise ValueError("outage duration must be positive "
                             "(None = permanent)")

    @property
    def until_ns(self) -> Optional[float]:
        """Recovery time, or ``None`` for a permanent outage."""
        if self.duration_ns is None:
            return None
        return self.start_ns + self.duration_ns


@dataclass(frozen=True)
class ResolvedOutage:
    """A :class:`DeviceOutage` pinned to a concrete fleet index."""

    device_index: int
    start_ns: float
    until_ns: Optional[float]


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, committable schedule of infrastructure faults.

    A plan is pure data: the same plan against the same submissions
    replays the identical failure (and recovery) sequence, which is
    what lets chaos tests assert exact re-queue orders and lets two
    runs of the acceptance scenario produce bit-identical schedules.
    Pass one to :class:`~repro.core.CloudScheduler` (``fault_plan=``)
    or a :class:`~repro.service.BackendConfiguration`.
    """

    outages: Tuple[DeviceOutage, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "outages", tuple(self.outages))

    @classmethod
    def device_outage(cls, device: Union[int, str], start_ns: float,
                      duration_ns: Optional[float] = None) -> "FaultPlan":
        """A plan with a single outage (the common chaos-test shape)."""
        return cls(outages=(DeviceOutage(device, start_ns, duration_ns),))

    def with_outage(self, device: Union[int, str], start_ns: float,
                    duration_ns: Optional[float] = None) -> "FaultPlan":
        """A copy of this plan with one more outage appended."""
        return FaultPlan(outages=self.outages + (
            DeviceOutage(device, start_ns, duration_ns),))

    def resolve(self, fleet) -> List[ResolvedOutage]:
        """Pin every outage to a fleet index (via
        :meth:`~repro.hardware.fleet.DeviceFleet.resolve_device`).

        Resolution errors (unknown name, ambiguous twin names, index
        out of range) surface here, before any event is scheduled.
        """
        return [
            ResolvedOutage(fleet.resolve_device(o.device), o.start_ns,
                           o.until_ns)
            for o in self.outages
        ]

    def __bool__(self) -> bool:
        return bool(self.outages)


# ----------------------------------------------------------------------
# broken worker pools
# ----------------------------------------------------------------------

class BreakingExecutor:
    """A process-pool stand-in that breaks deterministically on cue.

    The first *break_after* submissions run **inline** (synchronously,
    in submission order — deterministic), then the pool "breaks":

    - ``mode="submit"`` — ``submit`` itself raises
      :class:`~concurrent.futures.process.BrokenProcessPool`, the shape
      of a pool whose workers died between batches;
    - ``mode="result"`` — ``submit`` returns a future that *fails* with
      ``BrokenProcessPool``, the shape of a worker OOM-killed mid-chunk.

    Install one with :func:`inject_broken_process_pool`; the consuming
    service's fallback path must then produce bit-identical results
    with a non-zero ``stats["fallbacks"]`` counter.
    """

    _MODES = ("submit", "result")

    def __init__(self, break_after: int = 0, mode: str = "submit") -> None:
        if break_after < 0:
            raise ValueError("break_after must be non-negative")
        if mode not in self._MODES:
            raise ValueError(
                f"unknown mode {mode!r}; choose from {self._MODES}")
        self.break_after = break_after
        self.mode = mode
        self.submitted = 0
        self.broke = False

    def submit(self, fn, *args, **kwargs) -> "Future":
        if self.submitted >= self.break_after:
            self.broke = True
            if self.mode == "submit":
                raise BrokenProcessPool(
                    "injected fault: process pool broke at submit")
            self.submitted += 1
            future: Future = Future()
            future.set_exception(BrokenProcessPool(
                "injected fault: worker died mid-chunk"))
            return future
        self.submitted += 1
        future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:  # noqa: BLE001 - future carries it
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, **kwargs) -> None:
        """Executor-protocol no-op (nothing to stop)."""


def inject_broken_process_pool(service, break_after: int = 0,
                               mode: str = "submit") -> BreakingExecutor:
    """Replace *service*'s lazy process pool with a breaking one.

    Works on anything holding its pool in a ``_process_pool`` attribute
    (:class:`~repro.core.ExecutionService`,
    :class:`~repro.core.CompileService`).  Returns the injected
    executor so tests can assert how far it got before breaking.  The
    service's own compare-and-swap pool replacement still applies: once
    the injected pool breaks, the next batch lazily builds a real one.
    """
    if not hasattr(service, "_process_pool"):
        raise TypeError(
            f"{type(service).__name__} has no process pool to break")
    executor = BreakingExecutor(break_after=break_after, mode=mode)
    service._process_pool = executor
    return executor


# ----------------------------------------------------------------------
# corrupt / locked on-disk stores
# ----------------------------------------------------------------------

_CORRUPTIONS = ("garbage", "truncate")


def corrupt_file(path: str, mode: str = "garbage") -> str:
    """Damage an on-disk store the way real disks do.

    ``"garbage"`` overwrites the file with non-database bytes (also
    creating it if missing); ``"truncate"`` cuts an existing file to
    half its length, the torn-write shape.  Returns *path*.
    """
    if mode not in _CORRUPTIONS:
        raise ValueError(
            f"unknown corruption {mode!r}; choose from {_CORRUPTIONS}")
    if mode == "garbage":
        with open(path, "wb") as fh:
            fh.write(b"this is not a sqlite database\n" * 8)
        return path
    size = os.path.getsize(path)
    with open(path, "rb+") as fh:
        fh.truncate(max(1, size // 2))
    return path


def write_foreign_store(path: str) -> str:
    """Create a *valid* SQLite file that is not one of ours.

    Stores must refuse (and degrade on) a well-formed database with
    someone else's schema instead of silently writing into it.
    """
    conn = sqlite3.connect(path)
    try:
        conn.execute("CREATE TABLE IF NOT EXISTS somebody_elses_data ("
                     "id INTEGER PRIMARY KEY, blob BLOB)")
        conn.execute("INSERT INTO somebody_elses_data (blob) VALUES (?)",
                     (b"\x00" * 16,))
        conn.commit()
    finally:
        conn.close()
    return path


@contextmanager
def locked_database(path: str) -> Iterator[sqlite3.Connection]:
    """Hold an EXCLUSIVE lock on *path* for the duration of the block.

    Simulates a wedged writer: any store opening the file with a short
    busy timeout sees ``database is locked`` and must degrade, not
    crash or hang.
    """
    conn = sqlite3.connect(path, isolation_level=None)
    try:
        conn.execute("BEGIN EXCLUSIVE")
        yield conn
    finally:
        try:
            conn.execute("ROLLBACK")
        except sqlite3.Error:
            pass
        conn.close()

"""End-to-end parallel workload execution: allocate -> transpile -> run
-> score.

Ties together the allocator output, the per-partition transpiler, the
crosstalk-aware simulator, and the PST/JSD metrics.

Two entry points:

- :func:`execute_allocation` runs one allocated job.
- :func:`run_batch` runs a sweep of jobs through one shared
  :class:`ExecutionCache`, so repeated programs (benchmark combos reuse
  the same workloads over and over) pay for transpilation and the ideal
  reference distribution once; per-job RNG streams are spawned
  independently from the batch seed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .compile_service import CompileService
    from .execution_service import ExecutionService

from ..cache import (
    MemoryCache,
    PersistentCache,
    TieredCache,
    TranspileKey,
    canonical_form,
    circuit_key,
    index_sensitive_transpiler,
    persistent_cache_token,
)
from ..cache import transpile_key as compute_transpile_key
from ..circuits.circuit import QuantumCircuit
from ..circuits.controlflow import measured_clbits_of
from ..hardware.devices import Device
from ..sim.density_matrix import SimulationResult
from ..sim.executor import Program, run_parallel, spawn_seeds
from ..sim.readout import SeedLike
from ..sim.statevector import ideal_probabilities
from ..transpiler.transpile import TranspileResult, transpile_for_partition
from .metrics import jensen_shannon_divergence, pst
from .qucp import AllocationResult, ProgramAllocation

__all__ = ["ExecutionOutcome", "execute_allocation", "TranspilerFn",
           "BatchJob", "ExecutionCache", "index_sensitive_transpiler",
           "run_batch"]

#: Hook: (logical circuit, device, allocation) -> TranspileResult.
TranspilerFn = Callable[[QuantumCircuit, Device, ProgramAllocation],
                        TranspileResult]

#: Compat shim — the key helpers live in :mod:`repro.cache.keys` now.
_circuit_key = circuit_key


@dataclass
class ExecutionOutcome:
    """Result of one program inside a parallel job."""

    allocation: ProgramAllocation
    transpiled: TranspileResult
    result: SimulationResult
    ideal: Dict[str, float]

    def pst(self) -> float:
        """PST against the most likely ideal outcome (Eq. 2)."""
        expected = max(self.ideal, key=self.ideal.get)
        return pst(self.result.probabilities, expected)

    def jsd(self) -> float:
        """JSD between measured and ideal distributions (Eq. 3)."""
        return jensen_shannon_divergence(self.result.probabilities,
                                         self.ideal)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe summary: plain scalars, lists, and str-keyed dicts.

        The one serialization format shared by :class:`~repro.service.
        Result` payloads and benchmark artifacts — ``json.dumps`` of the
        return value always succeeds (and round-trips losslessly).
        """
        return {
            "program_index": int(self.allocation.index),
            "circuit": self.allocation.circuit.name,
            "num_qubits": int(self.allocation.circuit.num_qubits),
            "partition": [int(q) for q in self.allocation.partition],
            "efs": float(self.allocation.efs),
            "crosstalk_pairs": [
                [int(a), int(b)]
                for a, b in self.allocation.crosstalk_pairs],
            "num_swaps": int(self.transpiled.num_swaps),
            "depth": int(self.transpiled.circuit.depth()),
            "shots": int(self.result.shots),
            "counts": {str(k): int(v)
                       for k, v in self.result.counts.items()},
            "probabilities": {str(k): float(v)
                              for k, v in self.result.probabilities.items()},
            "pst": float(self.pst()),
            "jsd": float(self.jsd()),
        }


# The token versions the persistent store's entries for this pipeline:
# bump it whenever the default pipeline's output would change, so stale
# artifacts from older builds miss instead of being reused.
@persistent_cache_token("default-O3-alap-sched/v2")
def _default_transpiler(circuit: QuantumCircuit, device: Device,
                        allocation: ProgramAllocation) -> TranspileResult:
    return transpile_for_partition(circuit, device, allocation.partition,
                                   optimization_level=3, schedule=True)


#: Default LRU bound on each in-memory cache table — generous for
#: figure-sized sweeps, finite for long-lived services (entries pin
#: their keyed devices and results alive).
_DEFAULT_MAX_ENTRIES = 4096

#: Environment override for the default bound: a non-negative integer
#: caps each table, a negative value removes the bound entirely.
_MAX_ENTRIES_ENV = "REPRO_CACHE_MAX_ENTRIES"

_UNSET = object()


def _default_max_entries() -> Optional[int]:
    """The in-memory bound when the caller did not pass one."""
    raw = os.environ.get(_MAX_ENTRIES_ENV)
    if raw is None:
        return _DEFAULT_MAX_ENTRIES
    try:
        value = int(raw)
    except ValueError:
        return _DEFAULT_MAX_ENTRIES
    return None if value < 0 else value


class ExecutionCache:
    """Cross-job memoization of transpilation and ideal distributions.

    A façade over the layered :mod:`repro.cache` subsystem: lookups walk
    an exact-key in-memory tier, an equivalence-class tier (circuits
    differing only by a qubit relabeling reuse one compiled artifact,
    layouts remapped), and — when *store_path* points at a store — a
    SQLite WAL persistent tier shared across processes, so a cold
    process on a warm store skips compilation entirely.

    Keyed on circuit *structure* plus placement, so repeated programs in
    a sweep amortize the expensive steps.  Hit/miss counters are exposed
    for tests and benchmark reporting (see :attr:`stats` for the full
    cross-tier snapshot).  *max_entries* LRU-bounds each in-memory table;
    when omitted it defaults to a generous cap (4096, overridable via
    ``REPRO_CACHE_MAX_ENTRIES``; negative = unbounded), and an explicit
    ``None`` is unbounded.
    """

    def __init__(self, max_entries=_UNSET,
                 store_path: Optional[str] = None,
                 persistent: Optional[PersistentCache] = None) -> None:
        if max_entries is _UNSET:
            max_entries = _default_max_entries()
        self.max_entries = max_entries
        # In-memory values keep strong references to the keyed
        # device/transpiler so their id()s cannot be recycled onto
        # different objects while an entry is alive.
        self.tiers = TieredCache(max_entries=max_entries,
                                 store_path=store_path,
                                 persistent=persistent)
        self._ideal_table = MemoryCache(max_entries)
        self.transpile_hits = 0
        self.transpile_misses = 0
        self.ideal_hits = 0
        self.ideal_misses = 0
        #: Optional publication gate: a zero-argument callable consulted
        #: before every write.  Returning ``False`` drops the write (the
        #: caller still gets its computed value) and counts it in
        #: :attr:`gated_writes`.  The service layer wires the retry
        #: fence in here so attempts abandoned by a timeout stop
        #: publishing into shared state.
        self.write_gate: Optional[Callable[[], bool]] = None
        self.gated_writes = 0

    def _may_write(self) -> bool:
        gate = self.write_gate
        if gate is None or gate():
            return True
        self.gated_writes += 1
        return False

    # -- compat aliases (tests/benchmarks poke the table sizes) --------
    @property
    def _transpile(self) -> MemoryCache:
        """The exact-key in-memory tier (supports ``len``/``in``)."""
        return self.tiers.l1

    @property
    def _ideal(self) -> MemoryCache:
        """The ideal-distribution table (supports ``len``/``in``)."""
        return self._ideal_table

    @property
    def persistent(self) -> Optional[PersistentCache]:
        """The attached persistent store, or ``None``."""
        return self.tiers.l2

    @property
    def store_path(self) -> Optional[str]:
        """Path of the attached persistent store, or ``None``."""
        l2 = self.tiers.l2
        return None if l2 is None else l2.path

    def clear(self, persistent: bool = False) -> None:
        """Drop the in-memory entries (counters are kept).

        The shared on-disk store is only touched when *persistent* is
        true — it outlives this process by design.
        """
        self.tiers.clear(persistent=persistent)
        self._ideal_table.clear()

    def transpile_key(self, circuit: QuantumCircuit, device: Device,
                      allocation: ProgramAllocation,
                      transpiler_fn: TranspilerFn
                      ) -> Optional[TranspileKey]:
        """Cache key of one transpile request, or ``None`` (unhashable).

        The default key is *structural*: circuit structure, placement
        (partition, EFS, crosstalk pairs), the device, and the hook —
        but **not** ``allocation.index``, so identical programs admitted
        at different queue positions share one entry across
        submissions.  Hooks that actually observe the index (marked via
        :func:`index_sensitive_transpiler`) get the index folded back
        in, keeping their entries position-exact.  The returned
        :class:`~repro.cache.TranspileKey` hashes/compares by its exact
        form and additionally carries the equivalence-class and
        persistent-store forms consumed by the deeper tiers.
        """
        return compute_transpile_key(circuit, device, allocation,
                                     transpiler_fn)

    def lookup_transpile_raw(self, key: Optional[TranspileKey],
                             device: Device,
                             transpiler_fn: TranspilerFn
                             ) -> Optional[TranspileResult]:
        """Cached *raw* (shared, do-not-mutate) result for a
        precomputed key, or ``None``; counts hit/miss.

        Key-based so the service's hot path computes the circuit
        fingerprint once per request; apply :meth:`_fresh` before
        handing the result to anything that may mutate it.  The result
        is always in the request's own qubit labeling, whichever tier
        served it.
        """
        found = None if key is None else self.tiers.lookup(
            key, device, transpiler_fn)
        if found is not None:
            self.transpile_hits += 1
            return found
        self.transpile_misses += 1
        return None

    def store_transpile_raw(self, key: Optional[TranspileKey],
                            device: Device,
                            transpiler_fn: TranspilerFn,
                            result: TranspileResult) -> None:
        """Insert a computed result under a precomputed key (no-op for
        ``None`` keys).  Used by
        :class:`~repro.core.compile_service.CompileService` workers to
        publish results back into the shared cache; publication fans out
        to every applicable tier (exact, equivalence-class, persistent).
        """
        if key is not None and self._may_write():
            self.tiers.store(key, device, transpiler_fn, result)

    def lookup_transpile(self, circuit: QuantumCircuit, device: Device,
                         allocation: ProgramAllocation,
                         transpiler_fn: TranspilerFn
                         ) -> Optional[TranspileResult]:
        """Cached result (fresh copy) or ``None``; counts hit/miss."""
        key = self.transpile_key(circuit, device, allocation, transpiler_fn)
        found = self.lookup_transpile_raw(key, device, transpiler_fn)
        return None if found is None else self._fresh(found)

    def store_transpile(self, circuit: QuantumCircuit, device: Device,
                        allocation: ProgramAllocation,
                        transpiler_fn: TranspilerFn,
                        result: TranspileResult) -> None:
        """Insert a computed result (no-op for unhashable circuits)."""
        self.store_transpile_raw(
            self.transpile_key(circuit, device, allocation, transpiler_fn),
            device, transpiler_fn, result)

    def transpile(self, circuit: QuantumCircuit, device: Device,
                  allocation: ProgramAllocation,
                  transpiler_fn: TranspilerFn) -> TranspileResult:
        """Transpile through the cache (placement-sensitive key)."""
        key = self.transpile_key(circuit, device, allocation, transpiler_fn)
        found = self.lookup_transpile_raw(key, device, transpiler_fn)
        if found is not None:
            return self._fresh(found)
        result = transpiler_fn(circuit, device, allocation)
        self.store_transpile_raw(key, device, transpiler_fn, result)
        return self._fresh(result)

    @staticmethod
    def _fresh(result: TranspileResult) -> TranspileResult:
        """Copy a cached result so outcomes never alias mutable state.

        Instructions are immutable (a shallow circuit copy suffices) but
        layouts are not (``Layout.swap_physical`` mutates in place);
        without these copies a caller mutating one outcome's transpiled
        circuit or layout would corrupt every sibling and future hit.
        """
        return replace(result,
                       circuit=result.circuit.copy(),
                       initial_layout=result.initial_layout.copy(),
                       final_layout=result.final_layout.copy())

    def ideal(self, circuit: QuantumCircuit) -> Dict[str, float]:
        """Ideal (noiseless) output distribution through the cache.

        Keyed by the circuit's *canonical* form: relabeling the qubit
        register permutes the state but not the measured clbits, so
        every member of an equivalence class shares one distribution.
        Returns a fresh dict each call — outcomes must not alias one
        shared mutable distribution, or a caller mutating its copy would
        corrupt the cache and every sibling outcome.
        """
        form = canonical_form(circuit)
        if form is None:
            self.ideal_misses += 1
            return ideal_probabilities(circuit)
        cached = self._ideal_table.get(form.key)
        if cached is not None:
            self.ideal_hits += 1
            return dict(cached)
        self.ideal_misses += 1
        result = ideal_probabilities(circuit)
        if self._may_write():
            self._ideal_table.put(form.key, result)
        return dict(result)

    @property
    def stats(self) -> Dict[str, int]:
        """Cross-tier counter snapshot (plain ints, JSON-safe).

        Transpile/ideal hit-miss counters plus the tier internals:
        ``evictions`` (all in-memory tables), ``equivalence_hits``,
        ``promotions`` (store -> memory), and the ``persistent_*``
        counters (zero without an attached store).
        """
        merged = self.tiers.stats
        merged["evictions"] += self._ideal_table.evictions
        merged.update(
            transpile_hits=self.transpile_hits,
            transpile_misses=self.transpile_misses,
            ideal_hits=self.ideal_hits,
            ideal_misses=self.ideal_misses,
            gated_writes=self.gated_writes,
        )
        return merged


def _resolve_service_cache(cache, compile_service):
    """One shared cache when a compile service participates."""
    if compile_service is None:
        return cache or ExecutionCache()
    if cache is None or cache is compile_service.cache:
        return compile_service.cache
    raise ValueError(
        "pass either a cache or a compile_service (which brings its "
        "own); two different caches would split the memoization")


def execute_allocation(
    allocation_result: AllocationResult,
    shots: int = 8192,
    seed: SeedLike = None,
    scheduling: str = "alap",
    transpiler_fn: Optional[TranspilerFn] = None,
    include_crosstalk: bool = True,
    cache: Optional[ExecutionCache] = None,
    compile_service: "Optional[CompileService]" = None,
    execution_service: "Optional[ExecutionService]" = None,
) -> List[ExecutionOutcome]:
    """Run every allocated program simultaneously; outcomes in input order.

    Each logical circuit must contain measurements (the metrics compare
    measured distributions).  Pass a shared :class:`ExecutionCache` to
    amortize transpilation and ideal-distribution work across calls (or
    use :func:`run_batch`, which does so automatically).  With a
    *compile_service*, the job's programs are submitted to its worker
    pool up front and compiled in parallel.  With an
    *execution_service*, the simulations themselves are sharded across
    its worker pool (bit-identical to the serial path — see
    :class:`~repro.core.execution_service.ExecutionService`).
    """
    transpiler_fn = transpiler_fn or _default_transpiler
    cache = _resolve_service_cache(cache, compile_service)
    device = allocation_result.device
    ordered = sorted(allocation_result.allocations, key=lambda a: a.index)
    for alloc in ordered:
        # measured_clbits_of descends into control-flow bodies, so a
        # dynamic program whose only measures live inside branches counts.
        if not measured_clbits_of(alloc.circuit):
            raise ValueError(
                f"program {alloc.index} has no measurements; metrics need "
                "measured outputs")
    transpiled: List[TranspileResult] = []
    programs: List[Program] = []
    if compile_service is not None:
        # submit_allocation resolves the worker route per batch (auto
        # mode may shard wide batches across the process pool) and
        # returns futures in allocation-index order — the same order as
        # `ordered`.
        futures = compile_service.submit_allocation(allocation_result,
                                                    transpiler_fn)
        # Consume the futures' raw results directly (freshened against
        # aliasing): for hashable circuits they are already published to
        # the shared cache, and unhashable ones must not compile twice.
        for alloc, fut in zip(ordered, futures):
            tr = ExecutionCache._fresh(fut.result())
            transpiled.append(tr)
            programs.append(Program(tr.circuit, alloc.partition))
    else:
        for alloc in ordered:
            tr = cache.transpile(alloc.circuit, device, alloc,
                                 transpiler_fn)
            transpiled.append(tr)
            programs.append(Program(tr.circuit, alloc.partition))
    if execution_service is not None:
        results = execution_service.run_parallel(
            programs, device, shots=shots, seed=seed,
            scheduling=scheduling, include_crosstalk=include_crosstalk)
    else:
        results = run_parallel(programs, device, shots=shots, seed=seed,
                               scheduling=scheduling,
                               include_crosstalk=include_crosstalk)
    outcomes: List[ExecutionOutcome] = []
    for alloc, tr, res in zip(ordered, transpiled, results):
        ideal = cache.ideal(alloc.circuit)
        outcomes.append(ExecutionOutcome(alloc, tr, res, ideal))
    return outcomes


@dataclass
class BatchJob:
    """One parallel job inside a batched sweep.

    ``seed=None`` means "derive from the batch seed" (each job gets an
    independent child stream); set an explicit seed to pin a job.
    """

    allocation: AllocationResult
    shots: int = 8192
    seed: SeedLike = None
    scheduling: str = "alap"
    include_crosstalk: bool = True
    transpiler_fn: Optional[TranspilerFn] = None


def run_batch(
    jobs: Sequence[Union[BatchJob, AllocationResult]],
    seed: SeedLike = None,
    cache: Optional[ExecutionCache] = None,
    compile_service: "Optional[CompileService]" = None,
    execution_service: "Optional[ExecutionService]" = None,
) -> List[List[ExecutionOutcome]]:
    """Execute a sweep of parallel jobs with shared caching.

    *jobs* may mix :class:`BatchJob` entries and bare
    :class:`AllocationResult` objects (run with :class:`BatchJob`
    defaults).  All jobs share one :class:`ExecutionCache` — repeated
    circuits are transpiled once and their ideal distributions computed
    once — and jobs without an explicit seed get independent child RNG
    streams spawned from *seed*.  Returns one outcome list per job, in
    input order.

    With a *compile_service*, every job's programs are prefetched onto
    its worker pool before the first job executes: job *i*'s simulation
    overlaps the compilation of jobs *i+1...*, and each job only waits
    on its own transpiles.  With an *execution_service*, each job's
    simulations are sharded across its worker pool (bit-identical).
    """
    normalized: List[BatchJob] = [
        job if isinstance(job, BatchJob) else BatchJob(job) for job in jobs
    ]
    cache = _resolve_service_cache(cache, compile_service)
    if compile_service is not None:
        for job in normalized:
            fn = job.transpiler_fn or _default_transpiler
            device = job.allocation.device
            # Unhashable circuits cannot be deduped against the
            # prefetch (no cache key, no in-flight coalescing), so
            # submitting them here would double-compile when
            # execute_allocation submits its own request.  The rest go
            # through submit_allocation as one batch, so the service's
            # per-batch routing (auto mode, process-chunk sharding)
            # applies to the prefetch too.
            hashable = [
                alloc for alloc in job.allocation.allocations
                if cache.transpile_key(alloc.circuit, device, alloc,
                                       fn) is not None
            ]
            if hashable:
                compile_service.submit_allocation(
                    AllocationResult(method=job.allocation.method,
                                     device=device,
                                     allocations=hashable), fn)
    batch_seeds = spawn_seeds(seed, len(normalized))
    outcomes: List[List[ExecutionOutcome]] = []
    for job, child in zip(normalized, batch_seeds):
        job_seed = job.seed if job.seed is not None else child
        outcomes.append(
            execute_allocation(
                job.allocation,
                shots=job.shots,
                seed=job_seed,
                scheduling=job.scheduling,
                transpiler_fn=job.transpiler_fn,
                include_crosstalk=job.include_crosstalk,
                cache=cache,
                compile_service=compile_service,
                execution_service=execution_service,
            ))
    return outcomes

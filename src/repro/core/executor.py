"""End-to-end parallel workload execution: allocate -> transpile -> run
-> score.

Ties together the allocator output, the per-partition transpiler, the
crosstalk-aware simulator, and the PST/JSD metrics.

Two entry points:

- :func:`execute_allocation` runs one allocated job.
- :func:`run_batch` runs a sweep of jobs through one shared
  :class:`ExecutionCache`, so repeated programs (benchmark combos reuse
  the same workloads over and over) pay for transpilation and the ideal
  reference distribution once; per-job RNG streams are spawned
  independently from the batch seed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .compile_service import CompileService

from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from ..sim.density_matrix import SimulationResult
from ..sim.executor import Program, run_parallel, spawn_seeds
from ..sim.readout import SeedLike
from ..sim.statevector import ideal_probabilities
from ..transpiler.transpile import TranspileResult, transpile_for_partition
from .metrics import jensen_shannon_divergence, pst
from .qucp import AllocationResult, ProgramAllocation

__all__ = ["ExecutionOutcome", "execute_allocation", "TranspilerFn",
           "BatchJob", "ExecutionCache", "index_sensitive_transpiler",
           "run_batch"]

#: Hook: (logical circuit, device, allocation) -> TranspileResult.
TranspilerFn = Callable[[QuantumCircuit, Device, ProgramAllocation],
                        TranspileResult]

#: Attribute marking a transpiler hook whose output depends on
#: ``ProgramAllocation.index`` (see :func:`index_sensitive_transpiler`).
_INDEX_SENSITIVE_ATTR = "_observes_allocation_index"


def index_sensitive_transpiler(fn: TranspilerFn) -> TranspilerFn:
    """Mark *fn* as observing ``ProgramAllocation.index``.

    The default :meth:`ExecutionCache.transpile_key` is *structural*: it
    covers the circuit, partition, EFS, and crosstalk pairs but not the
    queue index, so identical programs submitted at different queue
    positions dedup into one cache entry.  A hook whose result genuinely
    depends on the index (e.g. CNA's precompiled-lookup adapter) must be
    wrapped with this decorator; its entries are then keyed
    index-sensitively and never alias across queue positions.
    """
    setattr(fn, _INDEX_SENSITIVE_ATTR, True)
    return fn


@dataclass
class ExecutionOutcome:
    """Result of one program inside a parallel job."""

    allocation: ProgramAllocation
    transpiled: TranspileResult
    result: SimulationResult
    ideal: Dict[str, float]

    def pst(self) -> float:
        """PST against the most likely ideal outcome (Eq. 2)."""
        expected = max(self.ideal, key=self.ideal.get)
        return pst(self.result.probabilities, expected)

    def jsd(self) -> float:
        """JSD between measured and ideal distributions (Eq. 3)."""
        return jensen_shannon_divergence(self.result.probabilities,
                                         self.ideal)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe summary: plain scalars, lists, and str-keyed dicts.

        The one serialization format shared by :class:`~repro.service.
        Result` payloads and benchmark artifacts — ``json.dumps`` of the
        return value always succeeds (and round-trips losslessly).
        """
        return {
            "program_index": int(self.allocation.index),
            "circuit": self.allocation.circuit.name,
            "num_qubits": int(self.allocation.circuit.num_qubits),
            "partition": [int(q) for q in self.allocation.partition],
            "efs": float(self.allocation.efs),
            "crosstalk_pairs": [
                [int(a), int(b)]
                for a, b in self.allocation.crosstalk_pairs],
            "num_swaps": int(self.transpiled.num_swaps),
            "depth": int(self.transpiled.circuit.depth()),
            "shots": int(self.result.shots),
            "counts": {str(k): int(v)
                       for k, v in self.result.counts.items()},
            "probabilities": {str(k): float(v)
                              for k, v in self.result.probabilities.items()},
            "pst": float(self.pst()),
            "jsd": float(self.jsd()),
        }


def _default_transpiler(circuit: QuantumCircuit, device: Device,
                        allocation: ProgramAllocation) -> TranspileResult:
    return transpile_for_partition(circuit, device, allocation.partition,
                                   optimization_level=3, schedule=True)


def _circuit_key(circuit: QuantumCircuit) -> Optional[Tuple]:
    """Structural fingerprint of a circuit, or None when unhashable.

    Circuits are compared by value, not identity, so two benchmark combos
    that instantiate the same workload twice share cache entries.
    Unbound symbolic parameters may be unhashable; those circuits simply
    bypass the cache.
    """
    key = (
        circuit.num_qubits,
        circuit.num_clbits,
        tuple((inst.name, inst.params, inst.qubits, inst.clbits)
              for inst in circuit),
    )
    try:
        hash(key)
    except TypeError:
        return None
    return key


class ExecutionCache:
    """Cross-job memoization of transpilation and ideal distributions.

    Keyed on circuit *structure* plus placement, so repeated programs in a
    sweep amortize the expensive steps.  Hit/miss counters are exposed for
    tests and benchmark reporting.  *max_entries* bounds each internal
    table (oldest entry evicted first); the default ``None`` is unbounded,
    which is fine for figure-sized sweeps but should be set for long-lived
    service caches (entries pin their keyed devices and results alive).
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        # Values keep strong references to the keyed device/transpiler so
        # their id()s cannot be recycled onto different objects while an
        # entry is alive.
        self._transpile: Dict[Tuple, Tuple[Device, TranspilerFn,
                                           TranspileResult]] = {}
        self._ideal: Dict[Tuple, Dict[str, float]] = {}
        # Guards the compound evict+insert in _store: CompileService
        # worker callbacks publish concurrently, and two threads in the
        # eviction path could otherwise pop the same head key.
        self._store_lock = threading.Lock()
        self.max_entries = max_entries
        self.transpile_hits = 0
        self.transpile_misses = 0
        self.ideal_hits = 0
        self.ideal_misses = 0

    def clear(self) -> None:
        """Drop all cached entries (counters are kept)."""
        self._transpile.clear()
        self._ideal.clear()

    def _store(self, table: Dict, key: Tuple, value) -> None:
        with self._store_lock:
            if self.max_entries is not None:
                if self.max_entries <= 0:
                    return  # max_entries=0 disables caching entirely
                while len(table) >= self.max_entries:
                    table.pop(next(iter(table)))
            table[key] = value

    def transpile_key(self, circuit: QuantumCircuit, device: Device,
                      allocation: ProgramAllocation,
                      transpiler_fn: TranspilerFn) -> Optional[Tuple]:
        """Cache key of one transpile request, or ``None`` (unhashable).

        The default key is *structural*: circuit structure, placement
        (partition, EFS, crosstalk pairs), the device, and the hook —
        but **not** ``allocation.index``, so identical programs admitted
        at different queue positions share one entry across
        submissions.  Hooks that actually observe the index (marked via
        :func:`index_sensitive_transpiler`) get the index folded back
        in, keeping their entries position-exact.
        """
        ckey = _circuit_key(circuit)
        if ckey is None:
            return None
        index = (allocation.index
                 if getattr(transpiler_fn, _INDEX_SENSITIVE_ATTR, False)
                 else None)
        return (ckey, index, allocation.partition,
                allocation.efs, allocation.crosstalk_pairs,
                id(device), id(transpiler_fn))

    def lookup_transpile_raw(self, key: Optional[Tuple], device: Device,
                             transpiler_fn: TranspilerFn
                             ) -> Optional[TranspileResult]:
        """Cached *raw* (shared, do-not-mutate) result for a
        precomputed key, or ``None``; counts hit/miss.

        Key-based so the service's hot path computes the circuit
        fingerprint once per request; apply :meth:`_fresh` before
        handing the result to anything that may mutate it.
        """
        cached = None if key is None else self._transpile.get(key)
        if cached is not None and cached[0] is device \
                and cached[1] is transpiler_fn:
            self.transpile_hits += 1
            return cached[2]
        self.transpile_misses += 1
        return None

    def store_transpile_raw(self, key: Optional[Tuple], device: Device,
                            transpiler_fn: TranspilerFn,
                            result: TranspileResult) -> None:
        """Insert a computed result under a precomputed key (no-op for
        ``None`` keys).  Used by
        :class:`~repro.core.compile_service.CompileService` workers to
        publish results back into the shared cache.
        """
        if key is not None:
            self._store(self._transpile, key,
                        (device, transpiler_fn, result))

    def lookup_transpile(self, circuit: QuantumCircuit, device: Device,
                         allocation: ProgramAllocation,
                         transpiler_fn: TranspilerFn
                         ) -> Optional[TranspileResult]:
        """Cached result (fresh copy) or ``None``; counts hit/miss."""
        key = self.transpile_key(circuit, device, allocation, transpiler_fn)
        found = self.lookup_transpile_raw(key, device, transpiler_fn)
        return None if found is None else self._fresh(found)

    def store_transpile(self, circuit: QuantumCircuit, device: Device,
                        allocation: ProgramAllocation,
                        transpiler_fn: TranspilerFn,
                        result: TranspileResult) -> None:
        """Insert a computed result (no-op for unhashable circuits)."""
        self.store_transpile_raw(
            self.transpile_key(circuit, device, allocation, transpiler_fn),
            device, transpiler_fn, result)

    def transpile(self, circuit: QuantumCircuit, device: Device,
                  allocation: ProgramAllocation,
                  transpiler_fn: TranspilerFn) -> TranspileResult:
        """Transpile through the cache (placement-sensitive key)."""
        key = self.transpile_key(circuit, device, allocation, transpiler_fn)
        found = self.lookup_transpile_raw(key, device, transpiler_fn)
        if found is not None:
            return self._fresh(found)
        result = transpiler_fn(circuit, device, allocation)
        self.store_transpile_raw(key, device, transpiler_fn, result)
        return self._fresh(result)

    @staticmethod
    def _fresh(result: TranspileResult) -> TranspileResult:
        """Copy a cached result so outcomes never alias mutable state.

        Instructions are immutable (a shallow circuit copy suffices) but
        layouts are not (``Layout.swap_physical`` mutates in place);
        without these copies a caller mutating one outcome's transpiled
        circuit or layout would corrupt every sibling and future hit.
        """
        return replace(result,
                       circuit=result.circuit.copy(),
                       initial_layout=result.initial_layout.copy(),
                       final_layout=result.final_layout.copy())

    def ideal(self, circuit: QuantumCircuit) -> Dict[str, float]:
        """Ideal (noiseless) output distribution through the cache.

        Returns a fresh dict each call — outcomes must not alias one
        shared mutable distribution, or a caller mutating its copy would
        corrupt the cache and every sibling outcome.
        """
        ckey = _circuit_key(circuit)
        if ckey is None:
            self.ideal_misses += 1
            return ideal_probabilities(circuit)
        cached = self._ideal.get(ckey)
        if cached is not None:
            self.ideal_hits += 1
            return dict(cached)
        self.ideal_misses += 1
        result = ideal_probabilities(circuit)
        self._store(self._ideal, ckey, result)
        return dict(result)


def _resolve_service_cache(cache, compile_service):
    """One shared cache when a compile service participates."""
    if compile_service is None:
        return cache or ExecutionCache()
    if cache is None or cache is compile_service.cache:
        return compile_service.cache
    raise ValueError(
        "pass either a cache or a compile_service (which brings its "
        "own); two different caches would split the memoization")


def execute_allocation(
    allocation_result: AllocationResult,
    shots: int = 8192,
    seed: SeedLike = None,
    scheduling: str = "alap",
    transpiler_fn: Optional[TranspilerFn] = None,
    include_crosstalk: bool = True,
    cache: Optional[ExecutionCache] = None,
    compile_service: "Optional[CompileService]" = None,
) -> List[ExecutionOutcome]:
    """Run every allocated program simultaneously; outcomes in input order.

    Each logical circuit must contain measurements (the metrics compare
    measured distributions).  Pass a shared :class:`ExecutionCache` to
    amortize transpilation and ideal-distribution work across calls (or
    use :func:`run_batch`, which does so automatically).  With a
    *compile_service*, the job's programs are submitted to its worker
    pool up front and compiled in parallel.
    """
    transpiler_fn = transpiler_fn or _default_transpiler
    cache = _resolve_service_cache(cache, compile_service)
    device = allocation_result.device
    ordered = sorted(allocation_result.allocations, key=lambda a: a.index)
    for alloc in ordered:
        if not any(i.name == "measure" for i in alloc.circuit):
            raise ValueError(
                f"program {alloc.index} has no measurements; metrics need "
                "measured outputs")
    transpiled: List[TranspileResult] = []
    programs: List[Program] = []
    if compile_service is not None:
        # submit_allocation resolves the worker route per batch (auto
        # mode may shard wide batches across the process pool) and
        # returns futures in allocation-index order — the same order as
        # `ordered`.
        futures = compile_service.submit_allocation(allocation_result,
                                                    transpiler_fn)
        # Consume the futures' raw results directly (freshened against
        # aliasing): for hashable circuits they are already published to
        # the shared cache, and unhashable ones must not compile twice.
        for alloc, fut in zip(ordered, futures):
            tr = ExecutionCache._fresh(fut.result())
            transpiled.append(tr)
            programs.append(Program(tr.circuit, alloc.partition))
    else:
        for alloc in ordered:
            tr = cache.transpile(alloc.circuit, device, alloc,
                                 transpiler_fn)
            transpiled.append(tr)
            programs.append(Program(tr.circuit, alloc.partition))
    results = run_parallel(programs, device, shots=shots, seed=seed,
                           scheduling=scheduling,
                           include_crosstalk=include_crosstalk)
    outcomes: List[ExecutionOutcome] = []
    for alloc, tr, res in zip(ordered, transpiled, results):
        ideal = cache.ideal(alloc.circuit)
        outcomes.append(ExecutionOutcome(alloc, tr, res, ideal))
    return outcomes


@dataclass
class BatchJob:
    """One parallel job inside a batched sweep.

    ``seed=None`` means "derive from the batch seed" (each job gets an
    independent child stream); set an explicit seed to pin a job.
    """

    allocation: AllocationResult
    shots: int = 8192
    seed: SeedLike = None
    scheduling: str = "alap"
    include_crosstalk: bool = True
    transpiler_fn: Optional[TranspilerFn] = None


def run_batch(
    jobs: Sequence[Union[BatchJob, AllocationResult]],
    seed: SeedLike = None,
    cache: Optional[ExecutionCache] = None,
    compile_service: "Optional[CompileService]" = None,
) -> List[List[ExecutionOutcome]]:
    """Execute a sweep of parallel jobs with shared caching.

    *jobs* may mix :class:`BatchJob` entries and bare
    :class:`AllocationResult` objects (run with :class:`BatchJob`
    defaults).  All jobs share one :class:`ExecutionCache` — repeated
    circuits are transpiled once and their ideal distributions computed
    once — and jobs without an explicit seed get independent child RNG
    streams spawned from *seed*.  Returns one outcome list per job, in
    input order.

    With a *compile_service*, every job's programs are prefetched onto
    its worker pool before the first job executes: job *i*'s simulation
    overlaps the compilation of jobs *i+1...*, and each job only waits
    on its own transpiles.
    """
    normalized: List[BatchJob] = [
        job if isinstance(job, BatchJob) else BatchJob(job) for job in jobs
    ]
    cache = _resolve_service_cache(cache, compile_service)
    if compile_service is not None:
        for job in normalized:
            fn = job.transpiler_fn or _default_transpiler
            device = job.allocation.device
            # Unhashable circuits cannot be deduped against the
            # prefetch (no cache key, no in-flight coalescing), so
            # submitting them here would double-compile when
            # execute_allocation submits its own request.  The rest go
            # through submit_allocation as one batch, so the service's
            # per-batch routing (auto mode, process-chunk sharding)
            # applies to the prefetch too.
            hashable = [
                alloc for alloc in job.allocation.allocations
                if cache.transpile_key(alloc.circuit, device, alloc,
                                       fn) is not None
            ]
            if hashable:
                compile_service.submit_allocation(
                    AllocationResult(method=job.allocation.method,
                                     device=device,
                                     allocations=hashable), fn)
    batch_seeds = spawn_seeds(seed, len(normalized))
    outcomes: List[List[ExecutionOutcome]] = []
    for job, child in zip(normalized, batch_seeds):
        job_seed = job.seed if job.seed is not None else child
        outcomes.append(
            execute_allocation(
                job.allocation,
                shots=job.shots,
                seed=job_seed,
                scheduling=job.scheduling,
                transpiler_fn=job.transpiler_fn,
                include_crosstalk=job.include_crosstalk,
                cache=cache,
                compile_service=compile_service,
            ))
    return outcomes

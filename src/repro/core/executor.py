"""End-to-end parallel workload execution: allocate -> transpile -> run
-> score.

Ties together the allocator output, the per-partition transpiler, the
crosstalk-aware simulator, and the PST/JSD metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from ..sim.density_matrix import SimulationResult
from ..sim.executor import Program, run_parallel
from ..sim.statevector import ideal_probabilities
from ..transpiler.transpile import TranspileResult, transpile_for_partition
from .metrics import jensen_shannon_divergence, pst
from .qucp import AllocationResult, ProgramAllocation

__all__ = ["ExecutionOutcome", "execute_allocation", "TranspilerFn"]

#: Hook: (logical circuit, device, allocation) -> TranspileResult.
TranspilerFn = Callable[[QuantumCircuit, Device, ProgramAllocation],
                        TranspileResult]


@dataclass
class ExecutionOutcome:
    """Result of one program inside a parallel job."""

    allocation: ProgramAllocation
    transpiled: TranspileResult
    result: SimulationResult
    ideal: Dict[str, float]

    def pst(self) -> float:
        """PST against the most likely ideal outcome (Eq. 2)."""
        expected = max(self.ideal, key=self.ideal.get)
        return pst(self.result.probabilities, expected)

    def jsd(self) -> float:
        """JSD between measured and ideal distributions (Eq. 3)."""
        return jensen_shannon_divergence(self.result.probabilities,
                                         self.ideal)


def _default_transpiler(circuit: QuantumCircuit, device: Device,
                        allocation: ProgramAllocation) -> TranspileResult:
    return transpile_for_partition(circuit, device, allocation.partition,
                                   optimization_level=3, schedule=True)


def execute_allocation(
    allocation_result: AllocationResult,
    shots: int = 8192,
    seed: Optional[int] = None,
    scheduling: str = "alap",
    transpiler_fn: Optional[TranspilerFn] = None,
    include_crosstalk: bool = True,
) -> List[ExecutionOutcome]:
    """Run every allocated program simultaneously; outcomes in input order.

    Each logical circuit must contain measurements (the metrics compare
    measured distributions).
    """
    transpiler_fn = transpiler_fn or _default_transpiler
    device = allocation_result.device
    ordered = sorted(allocation_result.allocations, key=lambda a: a.index)
    transpiled: List[TranspileResult] = []
    programs: List[Program] = []
    for alloc in ordered:
        if not any(i.name == "measure" for i in alloc.circuit):
            raise ValueError(
                f"program {alloc.index} has no measurements; metrics need "
                "measured outputs")
        tr = transpiler_fn(alloc.circuit, device, alloc)
        transpiled.append(tr)
        programs.append(Program(tr.circuit, alloc.partition))
    results = run_parallel(programs, device, shots=shots, seed=seed,
                           scheduling=scheduling,
                           include_crosstalk=include_crosstalk)
    outcomes: List[ExecutionOutcome] = []
    for alloc, tr, res in zip(ordered, transpiled, results):
        ideal = ideal_probabilities(alloc.circuit)
        outcomes.append(ExecutionOutcome(alloc, tr, res, ideal))
    return outcomes

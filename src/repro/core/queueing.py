"""Queueing model: why parallel execution shortens the wait.

The paper's motivation (Sec. I/II): cloud access to quantum chips means
long FIFO queues — "it takes several days to get the result if we submit a
circuit on IBM public quantum chips".  Multi-programming batches k
compatible circuits into one hardware job, dividing both queue length and
total runtime.

This module provides a deterministic FIFO queue simulator over submitted
jobs plus the batching policy, quantifying the "total runtime reduction up
to six times" the paper cites for its 6-copy Manhattan experiments.

It is the *analytic* counterpart of the discrete-event service layer in
:mod:`repro.core.scheduler`: a single-device :class:`~.scheduler.
CloudScheduler` at ``max_batch_size=1`` serves jobs exactly like this
FIFO model (each program its own hardware job, arrival order, one
device), which the scheduler tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["JobSpec", "QueueReport", "simulate_fifo_queue",
           "batched_speedup"]


@dataclass(frozen=True)
class JobSpec:
    """One submitted hardware job.

    ``execution_ns`` is the on-device time (shots x schedule makespan
    plus per-job overhead); ``arrival_ns`` when it joins the queue.
    """

    execution_ns: float
    arrival_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.execution_ns <= 0:
            raise ValueError("execution time must be positive")
        if self.arrival_ns < 0:
            raise ValueError("arrival time must be non-negative")


@dataclass
class QueueReport:
    """FIFO simulation outcome."""

    completion_ns: Tuple[float, ...]
    waiting_ns: Tuple[float, ...]
    makespan_ns: float
    arrival_ns: Tuple[float, ...] = ()

    @property
    def turnaround_ns(self) -> Tuple[float, ...]:
        """Per-job completion - arrival (waiting + execution)."""
        arrivals = self.arrival_ns or (0.0,) * len(self.completion_ns)
        return tuple(c - a for c, a in zip(self.completion_ns, arrivals))

    @property
    def mean_turnaround_ns(self) -> float:
        """Average waiting + execution time per job."""
        turnaround = self.turnaround_ns
        return float(sum(turnaround) / len(turnaround))

    @property
    def mean_waiting_ns(self) -> float:
        """Average time spent queued."""
        return float(sum(self.waiting_ns) / len(self.waiting_ns))


def simulate_fifo_queue(jobs: Sequence[JobSpec]) -> QueueReport:
    """Run jobs through a single-device FIFO queue.

    Jobs are served in arrival order (ties keep submission order); the
    device handles one job at a time.
    """
    if not jobs:
        raise ValueError("no jobs submitted")
    order = sorted(range(len(jobs)), key=lambda i: (jobs[i].arrival_ns, i))
    completion = [0.0] * len(jobs)
    waiting = [0.0] * len(jobs)
    device_free = 0.0
    for idx in order:
        job = jobs[idx]
        start = max(device_free, job.arrival_ns)
        waiting[idx] = start - job.arrival_ns
        device_free = start + job.execution_ns
        completion[idx] = device_free
    return QueueReport(tuple(completion), tuple(waiting),
                       makespan_ns=device_free,
                       arrival_ns=tuple(j.arrival_ns for j in jobs))


def batched_speedup(
    num_programs: int,
    batch_size: int,
    execution_ns: float,
    batch_overhead: float = 0.0,
) -> Dict[str, float]:
    """Serial vs multiprogrammed turnaround for a homogeneous workload.

    *num_programs* identical programs, each a job of *execution_ns* when
    run alone.  Multiprogramming packs *batch_size* programs per job; a
    batched job runs for ``execution_ns * (1 + batch_overhead)`` (ALAP
    alignment means the batch is as long as its longest member, plus any
    compilation/loading overhead).

    Returns makespans and the runtime-reduction factor.
    """
    if num_programs <= 0 or batch_size <= 0:
        raise ValueError("counts must be positive")
    serial = simulate_fifo_queue(
        [JobSpec(execution_ns) for _ in range(num_programs)])
    num_batches = -(-num_programs // batch_size)  # ceil division
    batched = simulate_fifo_queue(
        [JobSpec(execution_ns * (1.0 + batch_overhead))
         for _ in range(num_batches)])
    return {
        "serial_makespan_ns": serial.makespan_ns,
        "batched_makespan_ns": batched.makespan_ns,
        "serial_mean_turnaround_ns": serial.mean_turnaround_ns,
        "batched_mean_turnaround_ns": batched.mean_turnaround_ns,
        "runtime_reduction": serial.makespan_ns / batched.makespan_ns,
    }

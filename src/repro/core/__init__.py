"""The paper's contribution: QuCP crosstalk-aware parallel workload
execution, its baselines (QuMC, CNA, MultiQC, QuCloud), the fidelity
metrics, and the threshold scheduler."""

from .cna import (
    CnaCompilation,
    cna_allocate,
    cna_compile,
    cna_transpile_for_partition,
)
from .executor import (
    BatchJob,
    ExecutionCache,
    ExecutionOutcome,
    execute_allocation,
    run_batch,
)
from .metrics import (
    estimated_fidelity_score,
    hardware_throughput,
    jensen_shannon_divergence,
    kl_divergence,
    normalize_distribution,
    pst,
)
from .multiqc import multiqc_allocate
from .partition import (
    PartitionCandidate,
    crosstalk_suspect_pairs,
    grow_partition_candidates,
)
from .qucloud import fidelity_degree, qucloud_allocate
from .qucp import (
    DEFAULT_SIGMA,
    AllocationResult,
    ProgramAllocation,
    qucp_allocate,
)
from .qumc import oracle_characterization, qumc_allocate
from .queueing import (
    JobSpec,
    QueueReport,
    batched_speedup,
    simulate_fifo_queue,
)
from .scheduler import OnlineScheduler, ScheduleOutcome, SubmittedProgram
from .threshold import ThresholdDecision, select_parallel_count

__all__ = [
    "DEFAULT_SIGMA",
    "AllocationResult",
    "BatchJob",
    "ExecutionCache",
    "ExecutionOutcome",
    "PartitionCandidate",
    "ProgramAllocation",
    "JobSpec",
    "OnlineScheduler",
    "QueueReport",
    "ScheduleOutcome",
    "SubmittedProgram",
    "ThresholdDecision",
    "CnaCompilation",
    "cna_allocate",
    "cna_compile",
    "cna_transpile_for_partition",
    "crosstalk_suspect_pairs",
    "estimated_fidelity_score",
    "execute_allocation",
    "fidelity_degree",
    "grow_partition_candidates",
    "hardware_throughput",
    "jensen_shannon_divergence",
    "kl_divergence",
    "multiqc_allocate",
    "normalize_distribution",
    "oracle_characterization",
    "pst",
    "qucloud_allocate",
    "qucp_allocate",
    "qumc_allocate",
    "run_batch",
    "batched_speedup",
    "select_parallel_count",
    "simulate_fifo_queue",
]

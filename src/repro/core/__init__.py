"""The paper's contribution: QuCP crosstalk-aware parallel workload
execution, its baselines (QuMC, CNA, MultiQC, QuCloud) behind one
allocator registry, the fidelity metrics, the threshold scheduler, and
the event-driven cloud service layer."""

from .allocators import (
    AllocationEngine,
    AllocationResult,
    Allocator,
    Placement,
    PlacementContext,
    ProgramAllocation,
    UnknownAllocatorError,
    allocation_engine,
    available_allocators,
    circuit_structure_key,
    get_allocator,
    register_allocator,
    resolve_allocator,
)
from .cna import (
    CnaAllocator,
    CnaCompilation,
    cna_allocate,
    cna_compile,
    cna_transpile_for_partition,
)
from .compile_service import CompileService
from .events import Event, EventKind, EventQueue
from .execution_service import ExecutionService
from .executor import (
    BatchJob,
    ExecutionCache,
    ExecutionOutcome,
    execute_allocation,
    index_sensitive_transpiler,
    run_batch,
)
from .faults import (
    BreakingExecutor,
    DeviceOutage,
    FaultPlan,
    ResolvedOutage,
    corrupt_file,
    inject_broken_process_pool,
    locked_database,
    write_foreign_store,
)
from .health import (
    BreakerState,
    CircuitBreaker,
    DeviceFailurePlan,
    FailureBurst,
    FleetHealth,
    HealthPolicy,
    ResolvedBurst,
)
from .metrics import (
    estimated_fidelity_score,
    hardware_throughput,
    jensen_shannon_divergence,
    kl_divergence,
    normalize_distribution,
    pst,
)
from .multiqc import MultiqcAllocator, multiqc_allocate
from .partition import (
    PartitionCandidate,
    crosstalk_suspect_pairs,
    grow_partition_candidates,
)
from .qucloud import QucloudAllocator, fidelity_degree, qucloud_allocate
from .qucp import DEFAULT_SIGMA, QucpAllocator, qucp_allocate
from .qumc import QumcAllocator, oracle_characterization, qumc_allocate
from .racing import (
    RaceCandidate,
    RaceError,
    RaceOutcome,
    StrategyRace,
    race_allocations,
)
from .queueing import (
    JobSpec,
    QueueReport,
    batched_speedup,
    simulate_fifo_queue,
)
from .scheduler import (
    CloudScheduler,
    DispatchedBatch,
    OnlineScheduler,
    ScheduleOutcome,
    SubmittedProgram,
)
from .threshold import ThresholdDecision, select_parallel_count

__all__ = [
    "DEFAULT_SIGMA",
    "AllocationEngine",
    "AllocationResult",
    "Allocator",
    "BatchJob",
    "BreakerState",
    "BreakingExecutor",
    "CircuitBreaker",
    "CloudScheduler",
    "CnaAllocator",
    "CnaCompilation",
    "CompileService",
    "DeviceFailurePlan",
    "DeviceOutage",
    "DispatchedBatch",
    "Event",
    "EventKind",
    "EventQueue",
    "ExecutionCache",
    "ExecutionOutcome",
    "ExecutionService",
    "FailureBurst",
    "FaultPlan",
    "FleetHealth",
    "HealthPolicy",
    "JobSpec",
    "MultiqcAllocator",
    "OnlineScheduler",
    "PartitionCandidate",
    "Placement",
    "PlacementContext",
    "ProgramAllocation",
    "QucloudAllocator",
    "QucpAllocator",
    "QueueReport",
    "QumcAllocator",
    "RaceCandidate",
    "RaceError",
    "RaceOutcome",
    "ResolvedBurst",
    "ResolvedOutage",
    "ScheduleOutcome",
    "StrategyRace",
    "SubmittedProgram",
    "ThresholdDecision",
    "UnknownAllocatorError",
    "allocation_engine",
    "available_allocators",
    "batched_speedup",
    "circuit_structure_key",
    "cna_allocate",
    "cna_compile",
    "cna_transpile_for_partition",
    "corrupt_file",
    "crosstalk_suspect_pairs",
    "estimated_fidelity_score",
    "execute_allocation",
    "fidelity_degree",
    "get_allocator",
    "grow_partition_candidates",
    "hardware_throughput",
    "index_sensitive_transpiler",
    "inject_broken_process_pool",
    "jensen_shannon_divergence",
    "kl_divergence",
    "locked_database",
    "multiqc_allocate",
    "normalize_distribution",
    "oracle_characterization",
    "pst",
    "qucloud_allocate",
    "qucp_allocate",
    "qumc_allocate",
    "race_allocations",
    "register_allocator",
    "resolve_allocator",
    "run_batch",
    "select_parallel_count",
    "simulate_fifo_queue",
    "write_foreign_store",
]

"""Fidelity-threshold scheduling (paper Sec. IV-B).

How many copies of a circuit should run simultaneously?  QuCP estimates,
via EFS, how much worse the k-th copy's best available partition is than
the best partition on the idle chip, and admits copies while that
relative degradation stays within a user-chosen **fidelity threshold**.

Threshold 0 admits exactly one copy (the best region is unique); larger
thresholds trade fidelity for throughput — the trade-off the paper's
Fig. 4 maps out on IBM Q 65 Manhattan.

Placement search runs on the shared :class:`~.allocators.AllocationEngine`,
so a threshold sweep over the same circuit pays for candidate growth and
scoring once per distinct chip state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from .allocators import (
    AllocationResult,
    Allocator,
    EMPTY_CONTEXT,
    ProgramAllocation,
    allocation_engine,
    resolve_allocator,
)

__all__ = ["ThresholdDecision", "select_parallel_count"]


@dataclass
class ThresholdDecision:
    """Outcome of the threshold scheduler for one circuit."""

    threshold: float
    num_parallel: int
    allocation: AllocationResult
    efs_per_copy: Tuple[float, ...]

    @property
    def throughput(self) -> float:
        """Hardware throughput of the admitted copies."""
        return self.allocation.throughput()

    def relative_degradation(self, k: int) -> float:
        """(EFS_k - EFS_1) / EFS_1 for the k-th admitted copy (1-based)."""
        base = self.efs_per_copy[0]
        return (self.efs_per_copy[k - 1] - base) / base if base > 0 else 0.0


def select_parallel_count(
    circuit: QuantumCircuit,
    device: Device,
    threshold: float,
    max_copies: int = 6,
    sigma: Optional[float] = None,
    allocator: Union[str, Allocator, None] = None,
) -> ThresholdDecision:
    """Admit up to *max_copies* copies while EFS degradation <= threshold.

    Copies are placed one at a time — with QuCP scoring by default, or
    any incremental registry *allocator* — and the k-th copy is admitted
    iff ``(EFS_k - EFS_1)/EFS_1 <= threshold``.  *sigma* parameterizes
    only the default QuCP scoring; combining it with an explicit
    *allocator* is an error (configure the allocator itself instead).
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    allocator = resolve_allocator(allocator, sigma,
                                  require_incremental=True)
    engine = allocation_engine(device)

    result = AllocationResult(
        method=f"{allocator.name}-threshold({threshold:g})", device=device)
    ctx = EMPTY_CONTEXT
    efs_series: List[float] = []
    base_efs: Optional[float] = None

    for k in range(max_copies):
        placement = engine.best_placement(allocator, circuit, ctx)
        if placement is None:
            break
        if base_efs is None:
            base_efs = placement.efs
        else:
            degradation = ((placement.efs - base_efs) / base_efs
                           if base_efs > 0 else 0.0)
            if degradation > threshold:
                break
        result.allocations.append(
            ProgramAllocation(k, circuit.copy(), placement.partition,
                              placement.efs, placement.suspects))
        ctx = ctx.extended(placement.partition, device)
        efs_series.append(placement.efs)

    return ThresholdDecision(
        threshold=threshold,
        num_parallel=len(result.allocations),
        allocation=result,
        efs_per_copy=tuple(efs_series),
    )

"""Fidelity-threshold scheduling (paper Sec. IV-B).

How many copies of a circuit should run simultaneously?  QuCP estimates,
via EFS, how much worse the k-th copy's best available partition is than
the best partition on the idle chip, and admits copies while that
relative degradation stays within a user-chosen **fidelity threshold**.

Threshold 0 admits exactly one copy (the best region is unique); larger
thresholds trade fidelity for throughput — the trade-off the paper's
Fig. 4 maps out on IBM Q 65 Manhattan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from .metrics import estimated_fidelity_score
from .partition import crosstalk_suspect_pairs, grow_partition_candidates
from .qucp import (
    DEFAULT_SIGMA,
    AllocationResult,
    ProgramAllocation,
)

__all__ = ["ThresholdDecision", "select_parallel_count"]


@dataclass
class ThresholdDecision:
    """Outcome of the threshold scheduler for one circuit."""

    threshold: float
    num_parallel: int
    allocation: AllocationResult
    efs_per_copy: Tuple[float, ...]

    @property
    def throughput(self) -> float:
        """Hardware throughput of the admitted copies."""
        return self.allocation.throughput()

    def relative_degradation(self, k: int) -> float:
        """(EFS_k - EFS_1) / EFS_1 for the k-th admitted copy (1-based)."""
        base = self.efs_per_copy[0]
        return (self.efs_per_copy[k - 1] - base) / base if base > 0 else 0.0


def select_parallel_count(
    circuit: QuantumCircuit,
    device: Device,
    threshold: float,
    max_copies: int = 6,
    sigma: float = DEFAULT_SIGMA,
) -> ThresholdDecision:
    """Admit up to *max_copies* copies while EFS degradation <= threshold.

    Copies are placed one at a time with QuCP scoring; the k-th copy is
    admitted iff ``(EFS_k - EFS_1)/EFS_1 <= threshold``.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    n2q = circuit.num_twoq_gates()
    n1q = circuit.size() - n2q
    size = circuit.num_qubits

    result = AllocationResult(method=f"qucp-threshold({threshold:g})",
                              device=device)
    allocated_qubits: List[int] = []
    allocated_parts: List[Tuple[int, ...]] = []
    efs_series: List[float] = []
    base_efs: Optional[float] = None

    for k in range(max_copies):
        candidates = grow_partition_candidates(
            size, device.coupling, device.calibration,
            allocated=allocated_qubits)
        if not candidates:
            break
        best = None
        for cand in candidates:
            suspects = crosstalk_suspect_pairs(
                cand.qubits, device.coupling, allocated_parts)
            efs = estimated_fidelity_score(
                cand.qubits, device.coupling, device.calibration,
                n2q, n1q, crosstalk_pairs=suspects, sigma=sigma)
            if best is None or efs < best[0]:
                best = (efs, cand, suspects)
        assert best is not None
        efs, cand, suspects = best
        if base_efs is None:
            base_efs = efs
        else:
            degradation = (efs - base_efs) / base_efs if base_efs > 0 else 0.0
            if degradation > threshold:
                break
        result.allocations.append(
            ProgramAllocation(k, circuit.copy(), cand.qubits, efs,
                              suspects))
        allocated_qubits.extend(cand.qubits)
        allocated_parts.append(cand.qubits)
        efs_series.append(efs)

    return ThresholdDecision(
        threshold=threshold,
        num_parallel=len(result.allocations),
        allocation=result,
        efs_per_copy=tuple(efs_series),
    )

"""Per-device circuit breakers: unscripted graceful degradation.

:mod:`repro.core.faults` injects *pre-scripted* outages — the scheduler
is told, in advance, exactly when a device dies and recovers.  Real
backends do not send a fault plan first; they just start failing jobs.
This module closes that gap with the classic circuit-breaker state
machine, fed by the completion/failure signals the event-driven
:class:`~repro.core.CloudScheduler` already produces:

- **CLOSED** — the device is healthy and takes work.  Failures are
  counted (consecutive run + rolling window); when either crosses the
  :class:`HealthPolicy` thresholds the breaker **trips**.
- **OPEN** — the device is quarantined: no dispatches for
  ``cooldown_ns``.  Tripping is treated exactly like a
  :class:`~repro.core.faults.FaultPlan` outage — the in-flight batch
  (the one whose failure tripped the breaker) fails and its programs
  re-queue, in priority order, to the surviving devices.
- **HALF_OPEN** — the cooldown elapsed: the device may take **probe**
  batches, one at a time.  ``probe_successes`` consecutive successful
  probes close the breaker (full readmission); a failed probe re-opens
  it for another cooldown.

Everything is deterministic: state only changes on scheduler events
(virtual-time completions and failures), so a committed failure plan
replays the identical trip/probe/readmit sequence on every run.

The failure *signals* themselves come either from a scripted
:class:`DeviceFailurePlan` (chaos testing: every batch dispatched on a
device inside a burst window fails at completion time) or — in a real
deployment — from whatever marks batches failed.  The plan is pure
data, mirroring :class:`~repro.core.faults.FaultPlan`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "BreakerState",
    "HealthPolicy",
    "CircuitBreaker",
    "FleetHealth",
    "FailureBurst",
    "DeviceFailurePlan",
    "ResolvedBurst",
]


class BreakerState(enum.Enum):
    """Circuit-breaker lifecycle."""

    CLOSED = "closed"        #: healthy — dispatching normally
    OPEN = "open"            #: quarantined — no dispatches until cooldown
    HALF_OPEN = "half_open"  #: probing — limited dispatches readmit it

    @property
    def admits(self) -> bool:
        """Whether a device in this state may take (any) work."""
        return self is not BreakerState.OPEN


@dataclass(frozen=True)
class HealthPolicy:
    """When a device's breaker trips, and how it earns readmission.

    The default (3 consecutive failures *or* >50% errors over the last
    8 outcomes trip; 5 ms virtual cooldown; 2 clean probes readmit) is
    deliberately quick to trip and slow to trust — under overload, work
    bouncing off a flapping device costs more than routing around it.
    """

    #: Consecutive failures that trip a CLOSED breaker.
    failure_threshold: int = 3
    #: Rolling outcome window consulted for the error-rate trip
    #: condition (0 disables the window condition).
    window: int = 8
    #: Error rate over a *full* window that trips the breaker, even
    #: without ``failure_threshold`` consecutive failures (``None``
    #: disables; flapping devices alternate success/failure and never
    #: fail consecutively).
    max_error_rate: Optional[float] = 0.5
    #: Virtual nanoseconds an OPEN breaker quarantines the device
    #: before probing may begin.
    cooldown_ns: float = 5e6
    #: Consecutive successful HALF_OPEN probes that close the breaker.
    probe_successes: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.window < 0:
            raise ValueError("window must be non-negative")
        if (self.max_error_rate is not None
                and not 0 < self.max_error_rate <= 1):
            raise ValueError("max_error_rate must be in (0, 1]")
        if self.cooldown_ns <= 0:
            raise ValueError("cooldown_ns must be positive")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")


class CircuitBreaker:
    """One device's breaker: a deterministic event-driven state machine.

    The scheduler drives it with :meth:`record_success`,
    :meth:`record_failure`, and :meth:`cooldown_elapsed`; it answers
    :attr:`admits` at dispatch time.  All times are the scheduler's
    virtual nanoseconds, so identical event streams produce identical
    state trajectories.
    """

    def __init__(self, policy: HealthPolicy) -> None:
        self.policy = policy
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.probe_streak = 0
        #: Rolling outcome window, newest last (True = success).
        self.window: List[bool] = []
        self.opened_at_ns: Optional[float] = None
        # lifetime counters (JSON-safe ints for outcome summaries)
        self.successes = 0
        self.failures = 0
        self.trips = 0
        self.probes = 0
        self.readmissions = 0

    # ------------------------------------------------------------------
    @property
    def admits(self) -> bool:
        """Whether the device may be dispatched to right now."""
        return self.state.admits

    @property
    def probing(self) -> bool:
        """Whether dispatches to this device are half-open probes."""
        return self.state is BreakerState.HALF_OPEN

    def _push_window(self, ok: bool) -> None:
        if self.policy.window <= 0:
            return
        self.window.append(ok)
        if len(self.window) > self.policy.window:
            del self.window[0]

    def _window_tripped(self) -> bool:
        rate = self.policy.max_error_rate
        if rate is None or self.policy.window <= 0:
            return False
        if len(self.window) < self.policy.window:
            return False  # not enough evidence yet
        errors = self.window.count(False)
        return errors / len(self.window) > rate

    def _trip(self, now_ns: float) -> None:
        self.state = BreakerState.OPEN
        self.opened_at_ns = now_ns
        self.trips += 1
        self.probe_streak = 0
        self.consecutive_failures = 0
        self.window.clear()

    # ------------------------------------------------------------------
    def record_success(self, now_ns: float) -> bool:
        """A batch on this device completed cleanly.

        Returns ``True`` when this success *readmitted* the device
        (a HALF_OPEN breaker closing).
        """
        self.successes += 1
        self._push_window(True)
        if self.state is BreakerState.HALF_OPEN:
            self.probes += 1
            self.probe_streak += 1
            if self.probe_streak >= self.policy.probe_successes:
                self.state = BreakerState.CLOSED
                self.consecutive_failures = 0
                self.probe_streak = 0
                self.opened_at_ns = None
                self.readmissions += 1
                return True
            return False
        self.consecutive_failures = 0
        return False

    def record_failure(self, now_ns: float) -> bool:
        """A batch on this device failed.

        Returns ``True`` when this failure *tripped* the breaker (a
        CLOSED breaker opening, or a failed HALF_OPEN probe re-opening
        it) — the scheduler then quarantines the device and schedules
        the cooldown-elapsed event.
        """
        self.failures += 1
        if self.state is BreakerState.HALF_OPEN:
            # One bad probe is enough: back to quarantine.
            self.probes += 1
            self._trip(now_ns)
            return True
        self._push_window(False)
        self.consecutive_failures += 1
        if (self.consecutive_failures >= self.policy.failure_threshold
                or self._window_tripped()):
            self._trip(now_ns)
            return True
        return False

    def cooldown_elapsed(self, now_ns: float) -> None:
        """The OPEN quarantine ended: begin probing."""
        if self.state is BreakerState.OPEN:
            self.state = BreakerState.HALF_OPEN
            self.probe_streak = 0

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """JSON-safe lifetime snapshot."""
        return {
            "state": self.state.value,
            "successes": int(self.successes),
            "failures": int(self.failures),
            "trips": int(self.trips),
            "probes": int(self.probes),
            "readmissions": int(self.readmissions),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CircuitBreaker {self.state.value} "
                f"trips={self.trips} readmissions={self.readmissions}>")


class FleetHealth:
    """Per-device breakers for one scheduler run.

    Thin aggregate: the scheduler indexes breakers by fleet position
    and reads the summary into its
    :class:`~repro.core.ScheduleOutcome`.
    """

    def __init__(self, num_devices: int, policy: HealthPolicy) -> None:
        if num_devices < 1:
            raise ValueError("a fleet has at least one device")
        self.policy = policy
        self.breakers = [CircuitBreaker(policy) for _ in range(num_devices)]

    def __getitem__(self, device_index: int) -> CircuitBreaker:
        return self.breakers[device_index]

    def __len__(self) -> int:
        return len(self.breakers)

    @property
    def trips(self) -> int:
        return sum(b.trips for b in self.breakers)

    @property
    def readmissions(self) -> int:
        return sum(b.readmissions for b in self.breakers)

    def summary(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe per-device snapshot keyed by fleet index."""
        return {str(i): b.summary() for i, b in enumerate(self.breakers)}


# ----------------------------------------------------------------------
# scripted failure signals (chaos input for the breaker to react to)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FailureBurst:
    """A window during which every batch dispatched on a device fails.

    Unlike a :class:`~repro.core.faults.DeviceOutage`, the device stays
    *schedulable* — it accepts batches and fails them at completion
    time, which is exactly the misbehaviour a circuit breaker exists to
    contain.  *device* is a fleet index or (unique) device name; a
    batch fails iff its dispatch instant falls in
    ``[start_ns, until_ns)`` (``until_ns=None`` = fails forever).
    """

    device: Union[int, str]
    start_ns: float
    until_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_ns < 0:
            raise ValueError("burst start must be non-negative")
        if self.until_ns is not None and self.until_ns <= self.start_ns:
            raise ValueError("burst end must be after its start "
                             "(None = permanent)")


@dataclass(frozen=True)
class ResolvedBurst:
    """A :class:`FailureBurst` pinned to a concrete fleet index."""

    device_index: int
    start_ns: float
    until_ns: Optional[float]

    def covers(self, device_index: int, dispatch_ns: float) -> bool:
        if device_index != self.device_index:
            return False
        if dispatch_ns < self.start_ns:
            return False
        return self.until_ns is None or dispatch_ns < self.until_ns


@dataclass(frozen=True)
class DeviceFailurePlan:
    """A deterministic, committable schedule of device *misbehaviour*.

    Pure data, like :class:`~repro.core.faults.FaultPlan`: the same
    plan against the same submissions replays the identical failure
    sequence — and therefore the identical breaker trajectory — on
    every run.  Pass one to :class:`~repro.core.CloudScheduler`
    (``failure_plan=``) or a
    :class:`~repro.service.BackendConfiguration`.
    """

    bursts: Tuple[FailureBurst, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "bursts", tuple(self.bursts))

    @classmethod
    def burst(cls, device: Union[int, str], start_ns: float,
              until_ns: Optional[float] = None) -> "DeviceFailurePlan":
        """A plan with a single burst (the common chaos-test shape)."""
        return cls(bursts=(FailureBurst(device, start_ns, until_ns),))

    def with_burst(self, device: Union[int, str], start_ns: float,
                   until_ns: Optional[float] = None) -> "DeviceFailurePlan":
        """A copy of this plan with one more burst appended."""
        return DeviceFailurePlan(bursts=self.bursts + (
            FailureBurst(device, start_ns, until_ns),))

    def resolve(self, fleet) -> List[ResolvedBurst]:
        """Pin every burst to a fleet index (via
        :meth:`~repro.hardware.fleet.DeviceFleet.resolve_device`);
        resolution errors surface before any event is scheduled."""
        return [
            ResolvedBurst(fleet.resolve_device(b.device), b.start_ns,
                          b.until_ns)
            for b in self.bursts
        ]

    def __bool__(self) -> bool:
        return bool(self.bursts)

"""Online multi-user scheduler: the paper's cloud scenario.

Jobs from different users arrive over time.  A serial service runs each
program as its own hardware job; a **multi-programming service** holds a
short batching window, packs the queued programs that fit together (QuCP
partitions + the fidelity threshold), and dispatches them as one job.

This module quantifies the end of the paper's abstract — "improve the
hardware throughput and reduce the overall runtime" — with actual QuCP
allocations on a simulated device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from ..sim.executor import program_duration
from .metrics import estimated_fidelity_score
from .partition import crosstalk_suspect_pairs, grow_partition_candidates
from .qucp import DEFAULT_SIGMA, AllocationResult, ProgramAllocation

__all__ = ["SubmittedProgram", "ScheduleOutcome", "OnlineScheduler"]


@dataclass(frozen=True)
class SubmittedProgram:
    """One user submission."""

    circuit: QuantumCircuit
    arrival_ns: float = 0.0
    user: str = "anonymous"


@dataclass
class ScheduleOutcome:
    """Result of scheduling a stream of submissions."""

    num_jobs: int
    makespan_ns: float
    mean_turnaround_ns: float
    mean_throughput: float
    batches: List[AllocationResult] = field(default_factory=list)


class OnlineScheduler:
    """Batch queued programs into QuCP-partitioned parallel jobs.

    Parameters
    ----------
    device:
        Target device.
    fidelity_threshold:
        Maximum admitted relative EFS degradation vs. the batch's first
        program (the Sec. IV-B knob); 0 degenerates to serial service.
    job_overhead_ns:
        Fixed per-job cost (load/compile/readout reset), the quantity
        batching amortizes.
    sigma:
        QuCP's crosstalk parameter.
    """

    def __init__(self, device: Device, fidelity_threshold: float = 0.3,
                 job_overhead_ns: float = 1e6,
                 sigma: float = DEFAULT_SIGMA) -> None:
        if fidelity_threshold < 0:
            raise ValueError("fidelity threshold must be non-negative")
        self.device = device
        self.fidelity_threshold = fidelity_threshold
        self.job_overhead_ns = job_overhead_ns
        self.sigma = sigma

    # ------------------------------------------------------------------
    def _best_placement(
        self,
        circuit: QuantumCircuit,
        allocated_qubits: List[int],
        allocated_parts: List[Tuple[int, ...]],
    ) -> Optional[Tuple[Tuple[int, ...], float, Tuple]]:
        """Best partition for *circuit* given the batch so far, or None."""
        candidates = grow_partition_candidates(
            circuit.num_qubits, self.device.coupling,
            self.device.calibration, allocated=allocated_qubits)
        if not candidates:
            return None
        n2q = circuit.num_twoq_gates()
        n1q = circuit.size() - n2q
        best = None
        for cand in candidates:
            suspects = crosstalk_suspect_pairs(
                cand.qubits, self.device.coupling, allocated_parts)
            efs = estimated_fidelity_score(
                cand.qubits, self.device.coupling,
                self.device.calibration, n2q, n1q,
                crosstalk_pairs=suspects, sigma=self.sigma)
            if best is None or efs < best[1]:
                best = (cand.qubits, efs, suspects)
        return best

    def _try_admit(
        self,
        circuit: QuantumCircuit,
        allocated_qubits: List[int],
        allocated_parts: List[Tuple[int, ...]],
        is_head: bool,
    ) -> Optional[Tuple[Tuple[int, ...], float, Tuple]]:
        """Admit *circuit* iff its batch placement degrades at most
        *fidelity_threshold* relative to its own solo-best placement."""
        best = self._best_placement(circuit, allocated_qubits,
                                    allocated_parts)
        if best is None or is_head:
            return best
        solo = self._best_placement(circuit, [], [])
        if solo is None or solo[1] <= 0:
            return best
        degradation = (best[1] - solo[1]) / solo[1]
        if degradation > self.fidelity_threshold + 1e-12:
            return None
        return best

    def schedule(self, submissions: Sequence[SubmittedProgram]
                 ) -> ScheduleOutcome:
        """Serve *submissions* in arrival order with greedy batching.

        The scheduler repeatedly takes the oldest queued program, then
        greedily admits further queued programs (in order) while the
        fidelity threshold and chip capacity allow.
        """
        if not submissions:
            raise ValueError("no submissions")
        order = sorted(range(len(submissions)),
                       key=lambda i: (submissions[i].arrival_ns, i))
        pending = list(order)
        durations = self.device.calibration.gate_duration
        device_free = 0.0
        completion: Dict[int, float] = {}
        batches: List[AllocationResult] = []
        throughputs: List[float] = []

        while pending:
            head = pending[0]
            start = max(device_free, submissions[head].arrival_ns)
            batch = AllocationResult(
                method=f"online-qucp(th={self.fidelity_threshold:g})",
                device=self.device)
            allocated_qubits: List[int] = []
            allocated_parts: List[Tuple[int, ...]] = []
            admitted: List[int] = []
            for idx in list(pending):
                if submissions[idx].arrival_ns > start:
                    break  # only programs already queued can join
                found = self._try_admit(
                    submissions[idx].circuit, allocated_qubits,
                    allocated_parts, is_head=idx == head)
                if found is None:
                    if idx == head:
                        raise RuntimeError(
                            "head program does not fit on the device")
                    continue
                partition, efs, suspects = found
                batch.allocations.append(ProgramAllocation(
                    idx, submissions[idx].circuit, partition, efs,
                    suspects))
                allocated_qubits.extend(partition)
                allocated_parts.append(partition)
                admitted.append(idx)

            batch_duration = self.job_overhead_ns + max(
                program_duration(submissions[i].circuit, durations)
                for i in admitted
            )
            end = start + batch_duration
            for i in admitted:
                completion[i] = end
                pending.remove(i)
            device_free = end
            batches.append(batch)
            throughputs.append(batch.throughput())

        turnarounds = [
            completion[i] - submissions[i].arrival_ns
            for i in range(len(submissions))
        ]
        return ScheduleOutcome(
            num_jobs=len(batches),
            makespan_ns=device_free,
            mean_turnaround_ns=float(
                sum(turnarounds) / len(turnarounds)),
            mean_throughput=float(
                sum(throughputs) / len(throughputs)),
            batches=batches,
        )

"""Event-driven multi-user, multi-device scheduler: the cloud scenario.

Jobs from different users arrive over time.  A serial service runs each
program as its own hardware job; a **multi-programming service** holds a
short batching window, packs the queued programs that fit together
(allocator partitions + the fidelity threshold), and dispatches them as
one job — across a :class:`~repro.hardware.fleet.DeviceFleet` of one or
more heterogeneous devices.

The engine is a discrete-event simulation (:mod:`repro.core.events`):
ARRIVAL events feed the pending queue, DISPATCH events pack and launch
batches, COMPLETION events free devices.  Strictly serial single-device
FIFO service is the ``max_batch_size=1``, one-device degenerate point;
``fidelity_threshold=0`` is the paper's Sec. IV-B operating point, which
still co-schedules programs whose placements degrade by exactly zero.
The legacy :class:`OnlineScheduler` is kept as the single-device,
zero-window QuCP configuration.

Admission reuses the memoized :class:`~.allocators.AllocationEngine`:
"where does this program go solo / inside the current batch?" is cached
by circuit structure and chip state, so repeated admission checks cost a
dictionary lookup instead of a candidate rescan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .compile_service import CompileService

from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from ..hardware.fleet import DeviceFleet
from ..sim.executor import program_duration
from .allocators import (
    AllocationEngine,
    AllocationResult,
    Allocator,
    EMPTY_CONTEXT,
    Placement,
    PlacementContext,
    ProgramAllocation,
    allocation_engine,
    resolve_allocator,
)
from .events import EventKind, EventQueue
from .faults import FaultPlan, ResolvedOutage
from .health import (
    DeviceFailurePlan,
    FleetHealth,
    HealthPolicy,
    ResolvedBurst,
)
from .qucp import DEFAULT_SIGMA, QucpAllocator
from .racing import StrategyRace

__all__ = ["SubmittedProgram", "DispatchedBatch", "ScheduleOutcome",
           "CloudScheduler", "OnlineScheduler", "json_safe_num",
           "percentile"]


def json_safe_num(value: Optional[float]) -> Optional[float]:
    """``None`` for NaN/None, ``float(value)`` otherwise.

    Strict JSON rejects NaN; every ``to_dict`` serialization path
    (schedule outcomes, run metadata, results) routes optional timings
    through this one helper so the convention cannot drift.
    """
    if value is None or math.isnan(value):
        return None
    return float(value)


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile of *values* (linear interpolation between
    closest ranks, numpy's default) — NaN for an empty sequence."""
    if not values:
        return math.nan
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (len(ordered) - 1) * q / 100.0
    lo = math.floor(pos)
    hi = math.ceil(pos)
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


@dataclass(frozen=True)
class SubmittedProgram:
    """One user submission.

    *priority*: higher values are served first; ties fall back to
    arrival time, then submission order (the default 0 everywhere
    degenerates to plain FIFO).
    """

    circuit: QuantumCircuit
    arrival_ns: float = 0.0
    user: str = "anonymous"
    priority: int = 0


@dataclass(frozen=True)
class DispatchedBatch:
    """One hardware job as dispatched by the event engine."""

    device_index: int
    device_name: str
    start_ns: float
    end_ns: float
    allocation: AllocationResult

    @property
    def duration_ns(self) -> float:
        """Wall-clock length of the job."""
        return self.end_ns - self.start_ns

    @property
    def members(self) -> Tuple[int, ...]:
        """Submission indices packed into this job."""
        return tuple(sorted(a.index for a in self.allocation.allocations))

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe summary of this hardware job."""
        ordered = sorted(self.allocation.allocations, key=lambda a: a.index)
        return {
            "device_index": int(self.device_index),
            "device_name": self.device_name,
            "start_ns": float(self.start_ns),
            "end_ns": float(self.end_ns),
            "duration_ns": float(self.duration_ns),
            "method": self.allocation.method,
            "members": [int(i) for i in self.members],
            "allocations": [
                {
                    "index": int(a.index),
                    "circuit": a.circuit.name,
                    "partition": [int(q) for q in a.partition],
                    "efs": float(a.efs),
                    "crosstalk_pairs": [[int(u), int(v)]
                                        for u, v in a.crosstalk_pairs],
                }
                for a in ordered
            ],
        }


@dataclass
class ScheduleOutcome:
    """Result of scheduling a stream of submissions.

    ``mean_turnaround_ns`` averages over *completed* submissions and is
    NaN when everything was rejected (check :attr:`rejected`).
    """

    num_jobs: int
    makespan_ns: float
    mean_turnaround_ns: float
    mean_throughput: float
    rejected: List[int] = field(default_factory=list)
    completion_ns: Dict[int, float] = field(default_factory=dict)
    jobs: List[DispatchedBatch] = field(default_factory=list)
    #: Transpile requests handed to the compile service (0 without one).
    #: The service's own stats say how many actually compiled vs. hit
    #: the structural cache — identical programs at different queue
    #: indices dedup into one compile.
    compile_requests: int = 0
    #: Turnaround tail percentiles (NaN when nothing completed).  Means
    #: hide exactly the tail a production queue is judged by — and the
    #: tail is what hedged racing targets.
    turnaround_p50_ns: float = math.nan
    turnaround_p95_ns: float = math.nan
    turnaround_p99_ns: float = math.nan
    #: Deepest the pending queue ever got (arrivals waiting for a
    #: device), the saturation signal a rate sweep looks for.
    max_queue_depth: int = 0
    #: Dispatches won per racing candidate (empty without racing).
    race_wins: Dict[str, int] = field(default_factory=dict)
    #: Why each rejected submission was rejected (typed rejection: the
    #: service attaches these to its :class:`~repro.service.JobError`).
    rejection_reasons: Dict[int, str] = field(default_factory=dict)
    #: Device outages the fault plan injected during this run.
    outages: int = 0
    #: Submission indices re-queued after their in-flight batch failed
    #: under a device outage or an injected device failure, in failure
    #: order (an index can appear more than once under cascading
    #: failures).
    requeued: List[int] = field(default_factory=list)
    #: Hardware jobs that ran but *failed* (injected device failures);
    #: their programs re-queued and completed elsewhere, and the failed
    #: jobs are not in :attr:`jobs`.
    batch_failures: int = 0
    #: Circuit-breaker trips (device quarantined) and readmissions
    #: (half-open probes closed the breaker) across the run.
    breaker_trips: int = 0
    breaker_readmissions: int = 0
    #: Per-device breaker summaries keyed by fleet index (empty when no
    #: health policy was active).
    breakers: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def batches(self) -> List[AllocationResult]:
        """Per-job allocations, in dispatch order (derived from
        :attr:`jobs` so the two views can never desynchronize)."""
        return [job.allocation for job in self.jobs]

    def turnaround_ns(self, submissions: Sequence[SubmittedProgram]
                      ) -> Dict[int, float]:
        """Per-completed-submission turnaround (completion - arrival)."""
        return {
            i: done - submissions[i].arrival_ns
            for i, done in self.completion_ns.items()
        }

    def device_busy_ns(self) -> Dict[int, float]:
        """Accumulated busy time per fleet device index (names can
        repeat across a fleet; indices cannot)."""
        busy: Dict[int, float] = {}
        for job in self.jobs:
            busy[job.device_index] = (
                busy.get(job.device_index, 0.0) + job.duration_ns)
        return busy

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe summary: plain scalars, lists, and str-keyed dicts.

        ``mean_turnaround_ns`` is ``None`` (not NaN, which strict JSON
        rejects) when every submission was rejected.  The same format
        backs :meth:`repro.service.Result.to_dict` and the scheduler
        benchmark's artifacts.
        """
        return {
            "num_jobs": int(self.num_jobs),
            "makespan_ns": float(self.makespan_ns),
            "mean_turnaround_ns": json_safe_num(self.mean_turnaround_ns),
            "mean_throughput": float(self.mean_throughput),
            "rejected": [int(i) for i in self.rejected],
            "completion_ns": {str(i): float(t) for i, t
                              in sorted(self.completion_ns.items())},
            "compile_requests": int(self.compile_requests),
            "turnaround_p50_ns": json_safe_num(self.turnaround_p50_ns),
            "turnaround_p95_ns": json_safe_num(self.turnaround_p95_ns),
            "turnaround_p99_ns": json_safe_num(self.turnaround_p99_ns),
            "max_queue_depth": int(self.max_queue_depth),
            "race_wins": {str(k): int(v)
                          for k, v in sorted(self.race_wins.items())},
            "rejection_reasons": {
                str(i): str(r)
                for i, r in sorted(self.rejection_reasons.items())},
            "outages": int(self.outages),
            "requeued": [int(i) for i in self.requeued],
            "batch_failures": int(self.batch_failures),
            "breaker_trips": int(self.breaker_trips),
            "breaker_readmissions": int(self.breaker_readmissions),
            "breakers": {str(k): dict(v)
                         for k, v in sorted(self.breakers.items())},
            "jobs": [job.to_dict() for job in self.jobs],
        }


class CloudScheduler:
    """Discrete-event multi-programming service over a device fleet.

    Parameters
    ----------
    fleet:
        A :class:`DeviceFleet`, a single :class:`Device`, or a sequence
        of devices (wrapped with the fleet's default policy).
    allocator:
        Incremental allocation strategy — a registry name or an
        :class:`Allocator` instance.  Default QuCP with the paper sigma.
    fidelity_threshold:
        Maximum admitted relative EFS degradation vs. a program's own
        solo-best placement (the Sec. IV-B knob).  0 admits a co-tenant
        only when it still gets exactly its solo-best placement; for
        strictly serial one-program-per-job service combine it with
        ``max_batch_size=1``.
    max_batch_size:
        Cap on programs per hardware job (``None`` = unlimited); 1
        forces serial service regardless of threshold.
    batch_window_ns:
        How long a batch head waits after its arrival before it may
        dispatch, letting later arrivals join its batch.  0 dispatches
        as soon as a device frees up.
    job_overhead_ns:
        Fixed per-job cost (load/compile/readout reset), the quantity
        batching amortizes.
    sigma:
        QuCP's crosstalk parameter, for the default allocator only —
        combining it with an explicit *allocator* is an error (pass the
        parameter to the allocator instead, e.g.
        ``get_allocator("qucp", sigma=...)``).
    compile_service:
        Optional :class:`~repro.core.compile_service.CompileService`.
        When set, each dispatched batch's programs are submitted to the
        service's worker pool *at dispatch time*, so compilation
        overlaps the rest of the scheduling run; :meth:`schedule`
        returns only after every submitted transpile has landed in the
        service's cache, ready for cache-hit execution.  Cache keys are
        structural, so a program resubmitted at a different queue index
        (or by a different user) re-uses the earlier compile instead of
        re-transpiling.  Dispatch-time submissions dedup through every
        cache tier: a qubit-relabeled twin of an earlier program reuses
        its equivalence class's artifact, and with a persistent store
        attached (``QuantumProvider(cache_path=...)``) batches dedup
        against artifacts compiled by *other processes* — a cold
        scheduler on a warm store dispatches without compiling at all.
    race_allocators:
        Extra allocator strategies (registry names or instances) to
        *race* against the primary allocator at every dispatch: each
        candidate packs the batch independently, and the pack admitting
        the most programs at the lowest mean EFS wins (ties fall to the
        primary, then declaration order — deterministic, so a fixed
        seed reproduces the same winners).  More programs per hardware
        job means fewer jobs and shorter queues: this is the
        tail-latency hedge, measured by ``benchmarks/bench_scheduler``'s
        racing phase.  Per-candidate wins land in
        :attr:`ScheduleOutcome.race_wins`.
    race_executor:
        Optional worker pool for concurrent candidate packing.  The
        default (``None``) evaluates sequentially — deterministic and
        safe with the allocation engines' un-locked memo tables; pass a
        pool only with thread-safe allocators.
    fault_plan:
        Optional :class:`~repro.core.faults.FaultPlan` of device
        outages, injected into the event stream: at each outage's start
        time the device goes offline — its in-flight batch (if any)
        fails and the batch's programs re-queue, in priority order, to
        the surviving devices — and at the recovery time it rejoins the
        fleet.  A program that fits only devices that are offline for
        the rest of the run is rejected (with the reason recorded in
        :attr:`ScheduleOutcome.rejection_reasons`) instead of stranding
        the queue.  The plan is pure data, so a committed plan replays
        the identical failure sequence on every run.
    failure_plan:
        Optional :class:`~repro.core.health.DeviceFailurePlan` of
        scripted device *misbehaviour*: a batch dispatched on a device
        inside one of the plan's burst windows runs to completion and
        then **fails** — its programs re-queue, in priority order, and
        the per-device circuit breaker records the failure.  Unlike a
        ``fault_plan`` outage the scheduler is never told the device is
        bad; the breaker has to *infer* it from the failures (trip →
        quarantine → half-open probes → readmission).  Supplying a plan
        enables breakers with the default :class:`HealthPolicy` unless
        ``health_policy`` overrides it.
    health_policy:
        Optional :class:`~repro.core.health.HealthPolicy` controlling
        when per-device circuit breakers trip and readmit.  A tripped
        (OPEN) device is skipped by dispatch exactly like an offline
        one; after ``cooldown_ns`` it turns HALF_OPEN and the next
        dispatches act as probes — ``probe_successes`` clean probes
        close the breaker, one failed probe re-opens it.  A device
        failing under a *permanent* burst stays quarantined and counts
        as gone for hold-vs-reject decisions.
    priority_aging_ns:
        When set, a pending program's effective priority grows by 1 for
        every this-many virtual nanoseconds it has waited, so sustained
        high-priority traffic cannot starve ``best_effort`` work: every
        queued program eventually out-prioritizes fresh arrivals.  The
        aged priority is a pure function of (arrival, now), so replays
        stay bit-identical.  ``None`` (default) preserves strict
        priority order.
    """

    def __init__(
        self,
        fleet: Union[DeviceFleet, Device, Sequence[Device]],
        allocator: Union[str, Allocator, None] = None,
        fidelity_threshold: float = 0.3,
        batch_window_ns: float = 0.0,
        job_overhead_ns: float = 1e6,
        sigma: Optional[float] = None,
        max_batch_size: Optional[int] = None,
        compile_service: "Optional[CompileService]" = None,
        race_allocators: Optional[Sequence[Union[str, Allocator]]] = None,
        race_executor=None,
        fault_plan: Optional[FaultPlan] = None,
        failure_plan: Optional[DeviceFailurePlan] = None,
        health_policy: Optional[HealthPolicy] = None,
        priority_aging_ns: Optional[float] = None,
    ) -> None:
        if fidelity_threshold < 0:
            raise ValueError("fidelity threshold must be non-negative")
        if batch_window_ns < 0:
            raise ValueError("batch window must be non-negative")
        if max_batch_size is not None and max_batch_size < 1:
            raise ValueError("max batch size must be at least 1")
        if priority_aging_ns is not None and priority_aging_ns <= 0:
            raise ValueError("priority aging interval must be positive")
        if not isinstance(fleet, DeviceFleet):
            fleet = DeviceFleet(fleet)
        self.fleet = fleet
        self.allocator = resolve_allocator(allocator, sigma,
                                           require_incremental=True)
        self.fidelity_threshold = fidelity_threshold
        self.batch_window_ns = batch_window_ns
        self.job_overhead_ns = job_overhead_ns
        self.max_batch_size = max_batch_size
        self.compile_service = compile_service
        self.race = self._build_race(race_allocators, race_executor)
        self.fault_plan = fault_plan
        # Resolve now so a bad plan (unknown device name, ambiguous twin
        # names) fails at construction, not mid-schedule.
        self._outages: List[ResolvedOutage] = (
            fault_plan.resolve(self.fleet) if fault_plan else [])
        self.failure_plan = failure_plan
        self._bursts: List[ResolvedBurst] = (
            failure_plan.resolve(self.fleet) if failure_plan else [])
        if health_policy is None and self._bursts:
            health_policy = HealthPolicy()
        self.health_policy = health_policy
        self.priority_aging_ns = priority_aging_ns

    def _build_race(self, race_allocators, race_executor
                    ) -> Optional[StrategyRace]:
        """A best-pack race with the primary allocator as candidate 0.

        The primary goes first so (a) a dispatch can never admit fewer
        programs than the un-raced scheduler would, and (b) score ties
        resolve to the primary — racing only ever changes a dispatch
        when a challenger strictly wins.
        """
        if not race_allocators:
            return None
        candidates = [(self.allocator.name, self._make_packer(
            self.allocator))]
        seen = {self.allocator.name}
        for item in race_allocators:
            challenger = resolve_allocator(item, None,
                                           require_incremental=True)
            if challenger.name in seen:
                continue
            seen.add(challenger.name)
            candidates.append((challenger.name,
                               self._make_packer(challenger)))
        if len(candidates) == 1:
            return None
        return StrategyRace(candidates, mode="best",
                            score=self._pack_score,
                            executor=race_executor)

    def _make_packer(self, allocator: Allocator):
        def pack(device_index, head, admission_order, submissions):
            return self._pack_batch(allocator, device_index, head,
                                    admission_order, submissions)
        return pack

    @staticmethod
    def _pack_score(pack) -> Tuple[int, float]:
        """Lower wins: most programs admitted, then lowest mean EFS."""
        batch, admitted = pack
        if not admitted:
            return (0, math.inf)
        mean_efs = (sum(a.efs for a in batch.allocations)
                    / len(batch.allocations))
        return (-len(admitted), mean_efs)

    # ------------------------------------------------------------------
    def _engine(self, device_index: int) -> AllocationEngine:
        return allocation_engine(self.fleet[device_index])

    def _solo(self, device_index: int,
              circuit: QuantumCircuit) -> Optional[Placement]:
        return self._engine(device_index).solo_best(self.allocator, circuit)

    def _try_admit(
        self,
        device_index: int,
        circuit: QuantumCircuit,
        ctx: PlacementContext,
        is_head: bool,
        allocator: Optional[Allocator] = None,
    ) -> Optional[Placement]:
        """Admit *circuit* iff its batch placement degrades at most
        ``fidelity_threshold`` relative to its own solo-best placement
        on the same device."""
        allocator = allocator or self.allocator
        engine = self._engine(device_index)
        placement = engine.best_placement(allocator, circuit, ctx)
        if placement is None or is_head:
            return placement
        solo = engine.solo_best(allocator, circuit)
        if solo is None or solo.efs <= 0:
            return placement
        degradation = (placement.efs - solo.efs) / solo.efs
        if degradation > self.fidelity_threshold + 1e-12:
            return None
        return placement

    def _pack_batch(
        self,
        allocator: Allocator,
        device_index: int,
        head: int,
        admission_order: Sequence[int],
        submissions: Sequence[SubmittedProgram],
    ) -> Tuple[AllocationResult, List[int]]:
        """Pack one hardware job with *allocator*: the head admits first
        on the empty chip (always its solo-best placement), the rest of
        the queue follows in priority order under the fidelity
        threshold.  Pure given the engine memos — racing candidates can
        pack the same dispatch independently and only the winner's pack
        is committed."""
        device = self.fleet[device_index]
        batch = AllocationResult(
            method=(f"online-{allocator.name}"
                    f"(th={self.fidelity_threshold:g})"),
            device=device)
        ctx = EMPTY_CONTEXT
        admitted: List[int] = []
        for idx in admission_order:
            if (self.max_batch_size is not None
                    and len(admitted) >= self.max_batch_size):
                break
            placement = self._try_admit(
                device_index, submissions[idx].circuit, ctx,
                is_head=idx == head, allocator=allocator)
            if placement is None:
                continue
            batch.allocations.append(ProgramAllocation(
                idx, submissions[idx].circuit,
                placement.partition, placement.efs,
                placement.suspects))
            ctx = ctx.extended(placement.partition, device)
            admitted.append(idx)
        return batch, admitted

    # ------------------------------------------------------------------
    def schedule(self, submissions: Sequence[SubmittedProgram]
                 ) -> ScheduleOutcome:
        """Serve *submissions* through the discrete-event engine.

        Programs that fit no device in the fleet (even on an idle chip)
        are rejected into :attr:`ScheduleOutcome.rejected` instead of
        stalling the service; everything else completes exactly once.
        """
        if not submissions:
            raise ValueError("no submissions")
        for sub in submissions:
            if sub.arrival_ns < 0:
                raise ValueError("arrival times must be non-negative")

        def order_key(i: int) -> Tuple[float, float, int]:
            return (-submissions[i].priority, submissions[i].arrival_ns, i)

        aging = self.priority_aging_ns

        def aged_key(now: float):
            """Order key with waiting-time priority boost: a pure
            function of (arrival, now), so replays stay bit-identical."""
            def key(i: int) -> Tuple[float, float, int]:
                sub = submissions[i]
                waited = max(0.0, now - sub.arrival_ns)
                boost = int(waited // aging)
                return (-(sub.priority + boost), sub.arrival_ns, i)
            return key

        n_devices = len(self.fleet)
        events = EventQueue()
        pending: List[int] = []
        busy = [False] * n_devices
        load = [0.0] * n_devices
        rr_cursor = 0
        completion: Dict[int, float] = {}
        rejected: List[int] = []
        jobs: List[DispatchedBatch] = []
        compile_futures: List = []
        race_wins: Dict[str, int] = {}
        max_queue_depth = 0
        # Fault-plan state.  ``outage_depth`` counts overlapping outages
        # (offline == depth > 0); ``eventually_dead`` latches once a
        # permanent outage fires, so hold-vs-reject decisions know the
        # device will never serve again.  ``epoch`` invalidates the
        # COMPLETION event of a batch the outage already failed — heap
        # events cannot be removed, so stale ones are skipped instead.
        outage_depth = [0] * n_devices
        eventually_dead = [False] * n_devices
        epoch = [0] * n_devices
        inflight: List[Optional[DispatchedBatch]] = [None] * n_devices
        requeued: List[int] = []
        rejection_reasons: Dict[int, str] = {}
        outage_count = 0
        # Circuit-breaker state: one breaker per device whenever a
        # health policy is active (a failure plan implies the default).
        health: Optional[FleetHealth] = (
            FleetHealth(n_devices, self.health_policy)
            if self.health_policy is not None else None)
        bursts = self._bursts
        batch_failures = 0

        def burst_covers(d: int, dispatch_ns: float) -> bool:
            return any(b.covers(d, dispatch_ns) for b in bursts)

        def burst_is_permanent(d: int, dispatch_ns: float) -> bool:
            return any(b.until_ns is None and b.covers(d, dispatch_ns)
                       for b in bursts)

        for i, sub in enumerate(submissions):
            events.push(sub.arrival_ns, EventKind.ARRIVAL, i)
        for out in self._outages:
            events.push(out.start_ns, EventKind.OUTAGE, out)
            if out.until_ns is not None:
                events.push(out.until_ns, EventKind.RECOVERY,
                            out.device_index)

        def fits_somewhere(circuit: QuantumCircuit) -> bool:
            return any(self._solo(d, circuit) is not None
                       for d in range(n_devices))

        def fits_serviceable(circuit: QuantumCircuit) -> bool:
            return any(self._solo(d, circuit) is not None
                       for d in range(n_devices)
                       if not eventually_dead[d])

        def dispatch(now: float) -> None:
            nonlocal rr_cursor
            if aging is not None and len(pending) > 1:
                # Re-rank by waited-time-boosted priority so long-queued
                # low-priority work eventually overtakes fresh arrivals.
                pending.sort(key=aged_key(now))
            while pending:
                free = [d for d in range(n_devices)
                        if not busy[d] and not outage_depth[d]
                        and (health is None or health[d].admits)]
                if not free:
                    if all(eventually_dead):
                        # Nothing left to serve anyone — reject instead
                        # of stranding the queue (covers programs that
                        # arrive after the last device dies).
                        for idx in sorted(pending, key=order_key):
                            rejection_reasons[idx] = (
                                "all fleet devices offline for the "
                                "remainder of the run")
                            rejected.append(idx)
                        pending.clear()
                    return
                # Pick the batch head: the first pending program whose
                # window has closed and that fits a free device.  A head
                # that only fits busy devices keeps its queue position
                # but does not block later programs from using idle
                # devices (work-conserving dispatch); a head that fits
                # nothing in the fleet is rejected outright.
                head = None
                eligible: List[int] = []
                solo_by_device = {}
                restart = False
                for idx in list(pending):
                    sub = submissions[idx]
                    if (now + 1e-12
                            < sub.arrival_ns + self.batch_window_ns):
                        # Still collecting arrivals; its window-close
                        # DISPATCH event is queued, and programs behind
                        # it may use the idle capacity meanwhile.
                        continue
                    solo_by_device = {
                        d: self._solo(d, sub.circuit) for d in free}
                    eligible = [d for d in free
                                if solo_by_device[d] is not None]
                    if eligible:
                        head = idx
                        break
                    if not fits_serviceable(sub.circuit):
                        rejection_reasons[idx] = (
                            "fits only devices offline for the remainder "
                            "of the run" if fits_somewhere(sub.circuit)
                            else "circuit fits no device coupling map in "
                                 "the fleet")
                        rejected.append(idx)
                        pending.remove(idx)
                        restart = True
                        break
                    # Fits only busy (or recovering) devices: hold
                    # position, try later pending programs on the idle
                    # capacity.
                if restart:
                    continue
                if head is None:
                    return
                chosen = self.fleet.select(
                    eligible,
                    loads={d: load[d] for d in eligible},
                    solo_efs={d: solo_by_device[d].efs for d in eligible},
                    rr_cursor=rr_cursor,
                )
                device = self.fleet[chosen]
                start = now
                # Everything in `pending` has arrived: ARRIVAL events
                # sort before same-instant DISPATCH events, so a program
                # arriving after this dispatch fires can never be in the
                # list — that ordering (events.py) is what keeps late
                # arrivals out of in-flight batches.
                admission_order = [head] + [
                    i for i in pending if i != head]
                if self.race is None:
                    batch, admitted = self._pack_batch(
                        self.allocator, chosen, head, admission_order,
                        submissions)
                else:
                    raced = self.race.run(chosen, head, admission_order,
                                          submissions)
                    batch, admitted = raced.value
                    race_wins[raced.winner] = (
                        race_wins.get(raced.winner, 0) + 1)
                durations = device.calibration.gate_duration
                job_len = self.job_overhead_ns + max(
                    program_duration(submissions[i].circuit, durations)
                    for i in admitted)
                end = start + job_len
                for i in admitted:
                    completion[i] = end
                    pending.remove(i)
                busy[chosen] = True
                load[chosen] += job_len
                rr_cursor = (chosen + 1) % n_devices
                dispatched = DispatchedBatch(
                    chosen, device.name, start, end, batch)
                jobs.append(dispatched)
                inflight[chosen] = dispatched
                if self.compile_service is not None:
                    # Compilation starts the moment the batch is packed
                    # and proceeds on the worker pool while this event
                    # loop keeps scheduling.
                    compile_futures.extend(
                        self.compile_service.submit_allocation(batch))
                # An injected failure burst decides the batch's fate at
                # dispatch time, but the scheduler only *learns* it at
                # completion time — exactly like a real backend
                # returning an errored job.
                ok = not burst_covers(chosen, start)
                events.push(end, EventKind.COMPLETION,
                            (chosen, epoch[chosen], ok))

        for event in events.drain():
            if event.kind is EventKind.ARRIVAL:
                pending.append(event.payload)
                pending.sort(key=order_key)
                max_queue_depth = max(max_queue_depth, len(pending))
                events.push(event.time_ns + self.batch_window_ns,
                            EventKind.DISPATCH)
            elif event.kind is EventKind.COMPLETION:
                device_index, job_epoch, ok = event.payload
                if job_epoch != epoch[device_index]:
                    continue  # batch already failed under an outage
                busy[device_index] = False
                batch = inflight[device_index]
                inflight[device_index] = None
                if ok:
                    if health is not None:
                        health[device_index].record_success(event.time_ns)
                else:
                    # The batch ran and errored: it produced nothing,
                    # so its programs rejoin the queue in priority
                    # order (device time stays spent — ``load`` keeps
                    # the wasted window, unlike an outage which
                    # refunds the un-run remainder).
                    assert batch is not None
                    batch_failures += 1
                    jobs.remove(batch)
                    members = sorted(batch.members, key=order_key)
                    for i in members:
                        completion.pop(i, None)
                    pending.extend(members)
                    pending.sort(key=order_key)
                    max_queue_depth = max(max_queue_depth, len(pending))
                    requeued.extend(members)
                    if health is not None:
                        tripped = health[device_index].record_failure(
                            event.time_ns)
                        if tripped:
                            if burst_is_permanent(device_index,
                                                  batch.start_ns):
                                # The device will fail every probe for
                                # the rest of the run: keep it
                                # quarantined and let hold-vs-reject
                                # treat it as gone.
                                eventually_dead[device_index] = True
                            else:
                                events.push(
                                    event.time_ns
                                    + health.policy.cooldown_ns,
                                    EventKind.BREAKER, device_index)
                events.push(event.time_ns, EventKind.DISPATCH)
            elif event.kind is EventKind.OUTAGE:
                out = event.payload
                d = out.device_index
                outage_count += 1
                outage_depth[d] += 1
                if out.until_ns is None:
                    eventually_dead[d] = True
                if busy[d]:
                    # Fail the in-flight batch: its COMPLETION event is
                    # now stale (epoch bump), its members rejoin the
                    # queue in priority order and re-dispatch to the
                    # surviving devices.
                    batch = inflight[d]
                    assert batch is not None
                    epoch[d] += 1
                    jobs.remove(batch)
                    load[d] -= batch.end_ns - event.time_ns
                    busy[d] = False
                    inflight[d] = None
                    members = sorted(batch.members, key=order_key)
                    for i in members:
                        completion.pop(i, None)
                    pending.extend(members)
                    pending.sort(key=order_key)
                    max_queue_depth = max(max_queue_depth, len(pending))
                    requeued.extend(members)
                events.push(event.time_ns, EventKind.DISPATCH)
            elif event.kind is EventKind.RECOVERY:
                outage_depth[event.payload] -= 1
                events.push(event.time_ns, EventKind.DISPATCH)
            elif event.kind is EventKind.BREAKER:
                # Quarantine cooldown elapsed: the breaker (if still
                # OPEN) turns HALF_OPEN and the next dispatches on the
                # device act as readmission probes.
                if health is not None:
                    health[event.payload].cooldown_elapsed(event.time_ns)
                events.push(event.time_ns, EventKind.DISPATCH)
            else:
                dispatch(event.time_ns)

        assert not pending, "event queue drained with programs pending"

        for fut in compile_futures:
            fut.result()  # surface compile errors; results are cached

        turnarounds = [
            completion[i] - submissions[i].arrival_ns for i in completion]
        makespan = max(completion.values(), default=0.0)
        # Computed from the surviving jobs (not accumulated at dispatch
        # time) so batches an outage failed don't count.
        throughputs = [job.allocation.throughput() for job in jobs]
        return ScheduleOutcome(
            num_jobs=len(jobs),
            makespan_ns=makespan,
            mean_turnaround_ns=(
                float(sum(turnarounds) / len(turnarounds))
                if turnarounds else math.nan),
            mean_throughput=(
                float(sum(throughputs) / len(throughputs))
                if throughputs else 0.0),
            rejected=rejected,
            completion_ns=completion,
            jobs=jobs,
            compile_requests=len(compile_futures),
            turnaround_p50_ns=percentile(turnarounds, 50),
            turnaround_p95_ns=percentile(turnarounds, 95),
            turnaround_p99_ns=percentile(turnarounds, 99),
            max_queue_depth=max_queue_depth,
            race_wins=race_wins,
            rejection_reasons=rejection_reasons,
            outages=outage_count,
            requeued=requeued,
            batch_failures=batch_failures,
            breaker_trips=health.trips if health is not None else 0,
            breaker_readmissions=(
                health.readmissions if health is not None else 0),
            breakers=health.summary() if health is not None else {},
        )


class OnlineScheduler(CloudScheduler):
    """Single-device batching service — the legacy entry point.

    Exactly :class:`CloudScheduler` pinned to one device, QuCP
    allocation, and a zero batching window; kept because every paper
    experiment and example drives this configuration.
    """

    def __init__(self, device: Device, fidelity_threshold: float = 0.3,
                 job_overhead_ns: float = 1e6,
                 sigma: float = DEFAULT_SIGMA) -> None:
        super().__init__(
            DeviceFleet(device),
            allocator=QucpAllocator(sigma=sigma),
            fidelity_threshold=fidelity_threshold,
            batch_window_ns=0.0,
            job_overhead_ns=job_overhead_ns,
        )
        self.device = device
        self.sigma = sigma

    # Compatibility shim used by older tests/notebooks.
    def _best_placement(
        self,
        circuit: QuantumCircuit,
        allocated_qubits: Sequence[int],
        allocated_parts: Sequence[Sequence[int]],
    ) -> Optional[Tuple[Tuple[int, ...], float, Tuple]]:
        """Best partition for *circuit* given the batch so far, or None."""
        ctx = PlacementContext.from_parts(allocated_parts, self.device)
        blocked = ctx.qubits | frozenset(allocated_qubits)
        if blocked != ctx.qubits:
            # Legacy callers may block qubits beyond the listed parts
            # (e.g. masking broken qubits); honour the full set.
            ctx = PlacementContext(parts=ctx.parts, qubits=blocked,
                                   edges=ctx.edges)
        placement = allocation_engine(self.device).best_placement(
            self.allocator, circuit, ctx)
        if placement is None:
            return None
        return (placement.partition, placement.efs, placement.suspects)

"""Allocator strategy layer: one engine, many policies, a registry.

Every allocation method in this repo — QuCP and its four baselines —
shares the same mechanical skeleton: grow connected partition candidates
over the free qubits, detect crosstalk-suspect links against the programs
already placed, score each candidate, keep the best.  They differ *only*
in the scoring policy.  This module hoists the shared machinery into
:class:`AllocationEngine` (with memoized candidate growth, suspect
detection, and placement search) and turns each method into an
:class:`Allocator` strategy registered under its paper name::

    from repro.core import get_allocator

    alloc = get_allocator("qucp", sigma=4.0).allocate(circuits, device)

The engine caches are what make the service layer fast: the discrete-event
scheduler re-evaluates "where would this program go, solo and inside the
current batch?" for every admission attempt, and those answers depend only
on the circuit's *structure* ``(num_qubits, #2q, #1q)`` and on the
already-allocated region ``(qubit frozenset, internal-edge frozenset)`` —
exactly the memo keys used here.
"""

from __future__ import annotations

import difflib
import weakref
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from ..hardware.topology import Edge
from .metrics import hardware_throughput
from .partition import (
    PartitionCandidate,
    crosstalk_suspect_pairs,
    grow_partition_candidates,
)

__all__ = [
    "ProgramAllocation",
    "AllocationResult",
    "UnknownAllocatorError",
    "Placement",
    "PlacementContext",
    "AllocationEngine",
    "Allocator",
    "register_allocator",
    "get_allocator",
    "available_allocators",
    "resolve_allocator",
    "allocation_engine",
    "circuit_structure_key",
]


# ----------------------------------------------------------------------
# allocation records (shared by every method)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ProgramAllocation:
    """One program's placement."""

    index: int
    circuit: QuantumCircuit
    partition: Tuple[int, ...]
    efs: float
    crosstalk_pairs: Tuple[Edge, ...] = ()


@dataclass
class AllocationResult:
    """Output of a parallel-workload allocation."""

    method: str
    device: Device
    allocations: List[ProgramAllocation] = field(default_factory=list)

    @property
    def partitions(self) -> List[Tuple[int, ...]]:
        """Partitions in original program order."""
        ordered = sorted(self.allocations, key=lambda a: a.index)
        return [a.partition for a in ordered]

    def used_qubits(self) -> int:
        """Total number of allocated physical qubits."""
        return sum(len(a.partition) for a in self.allocations)

    def throughput(self) -> float:
        """Hardware throughput achieved by this allocation."""
        return hardware_throughput(self.used_qubits(),
                                   self.device.num_qubits)

    def allocation_for(self, index: int) -> ProgramAllocation:
        """The allocation of the *index*-th input circuit."""
        for a in self.allocations:
            if a.index == index:
                return a
        raise KeyError(f"no allocation for program {index}")


# ----------------------------------------------------------------------
# placement context + engine
# ----------------------------------------------------------------------

#: What scoring consumes from a circuit: size, #2q gates, #1q gates.
CircuitKey = Tuple[int, int, int]


def circuit_structure_key(circuit: QuantumCircuit) -> CircuitKey:
    """``(num_qubits, n2q, n1q)`` — all the structure the EFS sees."""
    n2q = circuit.num_twoq_gates()
    return (circuit.num_qubits, n2q, circuit.size() - n2q)


@dataclass(frozen=True)
class PlacementContext:
    """The batch allocated so far, in the forms scoring needs.

    ``parts`` keeps allocation order (for methods that care), ``qubits``
    is their union, ``edges`` the union of each part's *internal* links —
    the set crosstalk-suspect detection is defined against.
    """

    parts: Tuple[Tuple[int, ...], ...] = ()
    qubits: FrozenSet[int] = frozenset()
    edges: Tuple[Edge, ...] = ()

    @classmethod
    def from_parts(cls, parts: Sequence[Sequence[int]],
                   device: Device) -> "PlacementContext":
        """Build the context for *parts* already placed on *device*."""
        norm = tuple(tuple(p) for p in parts)
        qubits = frozenset(q for p in norm for q in p)
        edges: List[Edge] = []
        for p in norm:
            edges.extend(device.coupling.subgraph_edges(p))
        return cls(parts=norm, qubits=qubits, edges=tuple(edges))

    def extended(self, partition: Sequence[int],
                 device: Device) -> "PlacementContext":
        """Context with one more placed partition."""
        return PlacementContext.from_parts(
            self.parts + (tuple(partition),), device)


#: An empty chip — the solo-placement context.
EMPTY_CONTEXT = PlacementContext()


@dataclass(frozen=True)
class Placement:
    """One candidate chosen for one program."""

    partition: Tuple[int, ...]
    efs: float
    suspects: Tuple[Edge, ...] = ()


class AllocationEngine:
    """Shared, memoized allocation machinery for one device.

    Three caches, keyed only on information the computation actually
    depends on:

    - candidate growth: ``(size, blocked frozenset)``
    - suspect pairs: ``(candidate, allocated-edge frozenset)``
    - best placement: ``(allocator token, circuit structure,
      allocated-qubit frozenset, allocated-edge frozenset)``

    The last one is the scheduler's hot path: admission checks ask for
    the same (circuit, batch-state) placements over and over — every
    repeat is a dictionary hit instead of a full candidate rescan.
    """

    def __init__(self, device: Device) -> None:
        # Weak, so a dropped device (and this engine with it, via the
        # registry finalizer) can actually be reclaimed.
        self._device_ref = weakref.ref(device)
        self._candidates: Dict[Tuple[int, FrozenSet[int]],
                               Tuple[PartitionCandidate, ...]] = {}
        self._suspects: Dict[Tuple[Tuple[int, ...], FrozenSet[Edge]],
                             Tuple[Edge, ...]] = {}
        self._placements: Dict[Hashable, Optional[Placement]] = {}
        #: Per-device scratch space for allocator-specific memos
        #: (e.g. QuCloud's degree scale, QuMC's oracle map).  Stored on
        #: the engine so entries can never outlive — or alias — the
        #: device they were computed for.
        self.scratch: Dict[Hashable, Any] = {}

    @property
    def device(self) -> Device:
        device = self._device_ref()
        if device is None:
            raise ReferenceError(
                "the device behind this AllocationEngine was "
                "garbage-collected")
        return device

    @property
    def context(self) -> "DeviceContext":
        """The shared compilation context of this engine's device.

        Fetched from the fingerprint-keyed transpiler registry, so the
        scheduler, the compile service, and direct ``transpile()`` calls
        all draw on one set of distance tables and memoized partition
        sub-contexts — and a mutated calibration transparently resolves
        to a fresh context.
        """
        from ..transpiler.context import device_context
        device = self.device
        return device_context(device.coupling, device.calibration)

    # -- statistics (exposed for benchmarks/tests) ---------------------
    @property
    def cache_sizes(self) -> Dict[str, int]:
        """Current entry counts of the three memo tables."""
        return {
            "candidates": len(self._candidates),
            "suspects": len(self._suspects),
            "placements": len(self._placements),
        }

    def clear(self) -> None:
        """Drop all memoized state (e.g. after mutating a calibration)."""
        self._candidates.clear()
        self._suspects.clear()
        self._placements.clear()
        self.scratch.clear()

    # ------------------------------------------------------------------
    def candidates(self, size: int, blocked: FrozenSet[int]
                   ) -> Tuple[PartitionCandidate, ...]:
        """Memoized :func:`grow_partition_candidates`."""
        key = (size, blocked)
        found = self._candidates.get(key)
        if found is None:
            found = tuple(grow_partition_candidates(
                size, self.device.coupling, self.device.calibration,
                allocated=blocked))
            self._candidates[key] = found
        return found

    def suspect_pairs(self, candidate: Tuple[int, ...],
                      ctx: PlacementContext) -> Tuple[Edge, ...]:
        """Memoized :func:`crosstalk_suspect_pairs` against *ctx*."""
        key = (candidate, frozenset(ctx.edges))
        found = self._suspects.get(key)
        if found is None:
            found = crosstalk_suspect_pairs(
                candidate, self.device.coupling, ctx.parts)
            self._suspects[key] = found
        return found

    def best_placement(self, allocator: "Allocator",
                       circuit: QuantumCircuit,
                       ctx: PlacementContext = EMPTY_CONTEXT,
                       ) -> Optional[Placement]:
        """Best-scoring candidate for *circuit* given *ctx*, or ``None``.

        Ties break toward the earliest candidate in growth order (the
        historical first-minimum rule), so results are bit-identical to
        the pre-engine per-method loops.
        """
        size, n2q, n1q = circuit_structure_key(circuit)
        key = (allocator.cache_token(), (size, n2q, n1q),
               ctx.qubits, frozenset(ctx.edges))
        if key in self._placements:
            return self._placements[key]
        best: Optional[Placement] = None
        for cand in self.candidates(size, ctx.qubits):
            suspects = self.suspect_pairs(cand.qubits, ctx)
            efs = allocator.score(self, ctx, cand, suspects, n2q, n1q)
            if best is None or efs < best.efs:
                best = Placement(cand.qubits, efs, suspects)
        self._placements[key] = best
        return best

    def solo_best(self, allocator: "Allocator",
                  circuit: QuantumCircuit) -> Optional[Placement]:
        """Best placement on the idle chip (cached per structure)."""
        return self.best_placement(allocator, circuit, EMPTY_CONTEXT)


#: One engine per live device, keyed by identity.  The engine only
#: weak-references the device and a finalizer evicts the entry when the
#: device is collected, so neither devices nor their memo tables are
#: retained for process lifetime, and a recycled id can never serve a
#: stale engine.
_ENGINES: Dict[int, AllocationEngine] = {}


def allocation_engine(device: Device) -> AllocationEngine:
    """The shared :class:`AllocationEngine` for *device*."""
    key = id(device)
    engine = _ENGINES.get(key)
    if engine is not None and engine._device_ref() is device:
        return engine
    engine = AllocationEngine(device)
    _ENGINES[key] = engine
    weakref.finalize(device, _ENGINES.pop, key, None)
    return engine


# ----------------------------------------------------------------------
# the strategy interface
# ----------------------------------------------------------------------

class Allocator(ABC):
    """A qubit-partition allocation policy.

    Subclasses implement :meth:`score` (lower is better) and inherit the
    shared largest-first greedy loop in :meth:`allocate`.  Methods that
    do not fit the candidate-scoring mould (CNA compiles onto the whole
    free chip) override :meth:`allocate` and set
    ``supports_incremental = False`` — the service layer only batches
    with incremental allocators.
    """

    #: Registry name (class attribute, set by subclasses).
    name: str = ""
    #: Whether the scheduler may place programs one at a time with it.
    supports_incremental: bool = True

    # -- identity ------------------------------------------------------
    def method_label(self) -> str:
        """Label recorded on :class:`AllocationResult` (paper naming)."""
        return self.name

    def cache_token(self) -> Hashable:
        """Engine-cache namespace for this scoring policy.

        Subclasses whose score is fully determined by constructor
        parameters should return those (e.g. ``("qucp", sigma)``) so
        equivalent instances share cache entries.  The default isolates
        each instance by returning the instance itself — the cache key
        then pins the allocator alive, so a recycled ``id`` can never
        alias another instance's entries.
        """
        return self

    # -- the policy ----------------------------------------------------
    @abstractmethod
    def score(self, engine: AllocationEngine, ctx: PlacementContext,
              candidate: PartitionCandidate, suspects: Tuple[Edge, ...],
              n2q: int, n1q: int) -> float:
        """EFS-style cost of placing a program on *candidate* (lower
        wins) given the batch in *ctx*."""

    # -- shared mechanics ----------------------------------------------
    def best_placement(self, circuit: QuantumCircuit, device: Device,
                       ctx: PlacementContext = EMPTY_CONTEXT,
                       ) -> Optional[Placement]:
        """Best placement of *circuit* on *device* given *ctx*."""
        return allocation_engine(device).best_placement(self, circuit, ctx)

    def allocate(self, circuits: Sequence[QuantumCircuit],
                 device: Device) -> AllocationResult:
        """Shared allocation loop: largest program first, best score.

        Bit-for-bit the historical ``allocate_greedy`` semantics —
        stable largest-first order, first-minimum candidate choice —
        now with every sub-step memoized in the device engine.
        """
        engine = allocation_engine(device)
        order = sorted(range(len(circuits)),
                       key=lambda i: -circuits[i].num_qubits)
        result = AllocationResult(method=self.method_label(), device=device)
        ctx = EMPTY_CONTEXT
        for idx in order:
            circuit = circuits[idx]
            placement = engine.best_placement(self, circuit, ctx)
            if placement is None:
                raise RuntimeError(
                    f"no free partition of size {circuit.num_qubits} left "
                    f"on {device.name} for program {idx}")
            result.allocations.append(ProgramAllocation(
                idx, circuit, placement.partition, placement.efs,
                placement.suspects))
            ctx = ctx.extended(placement.partition, device)
        return result


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Type[Allocator]] = {}


class UnknownAllocatorError(KeyError):
    """An allocator name that matches nothing in the registry.

    Subclasses :class:`KeyError` so historical ``except KeyError``
    handlers keep working, but renders as the plain message
    (``KeyError.__str__`` would repr-quote it) and always names the
    registered methods, with a close-match suggestion for typos.
    """

    def __init__(self, name: str, known: Sequence[str]) -> None:
        hint = ""
        close = difflib.get_close_matches(name, known, n=1)
        if close:
            hint = f" — did you mean {close[0]!r}?"
        super().__init__(
            f"unknown allocator {name!r}; available: "
            f"{', '.join(repr(k) for k in known)}{hint}")
        self.name = name
        self.known = tuple(known)

    def __str__(self) -> str:
        return self.args[0]


def register_allocator(cls: Type[Allocator]) -> Type[Allocator]:
    """Class decorator: register an :class:`Allocator` under its name."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a registry name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"allocator {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_allocator(name: str, **params) -> Allocator:
    """Instantiate the allocation method registered under *name*.

    ``get_allocator("qucp", sigma=6.0)`` forwards keyword parameters to
    the method's constructor.
    """
    # The five built-in methods register at package import; a direct
    # submodule import may reach here first, so make sure they loaded.
    if name not in _REGISTRY:
        from . import cna, multiqc, qucloud, qucp, qumc  # noqa: F401
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise UnknownAllocatorError(name, available_allocators()) from None
    return cls(**params)


def available_allocators() -> List[str]:
    """Registered method names, sorted."""
    if not _REGISTRY:
        from . import cna, multiqc, qucloud, qucp, qumc  # noqa: F401
    return sorted(_REGISTRY)


def resolve_allocator(
    allocator: Union["Allocator", str, None] = None,
    sigma: Optional[float] = None,
    require_incremental: bool = False,
) -> "Allocator":
    """Resolve the user-facing ``allocator=``/``sigma=`` parameter pair.

    ``None`` yields the default QuCP strategy (parameterized by *sigma*
    when given); a string resolves through the registry; an instance
    passes through.  *sigma* combined with an explicit allocator is an
    error — the parameter belongs to the allocator, not the caller.
    """
    if allocator is None:
        from .qucp import DEFAULT_SIGMA, QucpAllocator
        allocator = QucpAllocator(
            sigma=DEFAULT_SIGMA if sigma is None else sigma)
    elif sigma is not None:
        raise ValueError(
            "sigma only parameterizes the default QuCP allocator; "
            "configure the explicit allocator instead, e.g. "
            "get_allocator('qucp', sigma=...)")
    elif isinstance(allocator, str):
        allocator = get_allocator(allocator)
    if require_incremental and not allocator.supports_incremental:
        raise ValueError(
            f"allocator {allocator.name!r} cannot place programs "
            "incrementally")
    return allocator

"""Extrapolation factories (Mitiq-style) for zero-noise extrapolation.

Each factory consumes ``(scale_factor, expectation)`` pairs and returns
the zero-noise estimate — the fitted curve evaluated at scale 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "LinearFactory",
    "PolyFactory",
    "RichardsonFactory",
    "ExpFactory",
    "all_factories",
]


@dataclass(frozen=True)
class LinearFactory:
    """Ordinary least-squares line through the data, evaluated at 0."""

    name: str = "linear"

    def extrapolate(self, scales: Sequence[float],
                    values: Sequence[float]) -> float:
        """Zero-noise estimate."""
        if len(scales) < 2:
            raise ValueError("linear extrapolation needs >= 2 points")
        coeffs = np.polyfit(scales, values, 1)
        return float(np.polyval(coeffs, 0.0))


@dataclass(frozen=True)
class PolyFactory:
    """Least-squares polynomial of the given order, evaluated at 0."""

    order: int = 2
    name: str = "poly"

    def extrapolate(self, scales: Sequence[float],
                    values: Sequence[float]) -> float:
        """Zero-noise estimate."""
        if len(scales) <= self.order:
            raise ValueError(
                f"poly order {self.order} needs > {self.order} points")
        coeffs = np.polyfit(scales, values, self.order)
        return float(np.polyval(coeffs, 0.0))


@dataclass(frozen=True)
class RichardsonFactory:
    """Richardson extrapolation: the interpolating polynomial through
    *all* points (degree n-1), evaluated at 0."""

    name: str = "richardson"

    def extrapolate(self, scales: Sequence[float],
                    values: Sequence[float]) -> float:
        """Zero-noise estimate."""
        if len(scales) < 2:
            raise ValueError("richardson needs >= 2 points")
        if len(set(scales)) != len(scales):
            raise ValueError("scale factors must be distinct")
        coeffs = np.polyfit(scales, values, len(scales) - 1)
        return float(np.polyval(coeffs, 0.0))


@dataclass(frozen=True)
class ExpFactory:
    """Exponential-decay model ``a + b * exp(-c * scale)``.

    Falls back to linear extrapolation when the nonlinear fit fails —
    the same pragmatic behaviour Mitiq exposes.
    """

    name: str = "exp"

    def extrapolate(self, scales: Sequence[float],
                    values: Sequence[float]) -> float:
        """Zero-noise estimate."""
        from scipy.optimize import curve_fit

        s = np.asarray(scales, dtype=float)
        v = np.asarray(values, dtype=float)

        def model(x: np.ndarray, a: float, b: float, c: float) -> np.ndarray:
            return a + b * np.exp(-c * x)

        try:
            popt, _ = curve_fit(
                model, s, v, p0=(v[-1], v[0] - v[-1], 0.5), maxfev=5000)
            return float(model(0.0, *popt))
        except (RuntimeError, TypeError):
            return LinearFactory().extrapolate(scales, values)


def all_factories() -> Tuple[object, ...]:
    """The three factories the paper compares (best-of is reported)."""
    return (LinearFactory(), PolyFactory(order=2), RichardsonFactory())

"""Measurement error mitigation (paper ref. [2], Bravyi et al.).

The tensored mitigator: calibrate a 2x2 confusion matrix per qubit by
preparing |0> and |1> and measuring, then apply the tensor-product inverse
to measured distributions.  The paper lists this alongside ZNE as a NISQ
error-mitigation technique; it composes naturally with parallel execution
because calibration circuits for disjoint partitions can share a job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..hardware.devices import Device
from ..sim.executor import Program, run_parallel

__all__ = ["ReadoutMitigator", "calibrate_readout"]


@dataclass(frozen=True)
class ReadoutMitigator:
    """Per-qubit confusion matrices plus the inversion routine.

    ``confusions[i]`` is the column-stochastic matrix ``M[read, true]``
    for string position *i* of the distributions it will mitigate.
    """

    confusions: Tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        for mat in self.confusions:
            if mat.shape != (2, 2):
                raise ValueError("confusion matrices must be 2x2")
            if not np.allclose(mat.sum(axis=0), 1.0, atol=1e-6):
                raise ValueError("confusion matrices must be column-"
                                 "stochastic")

    @property
    def num_bits(self) -> int:
        """Number of measured bits handled."""
        return len(self.confusions)

    def assignment_fidelity(self) -> float:
        """Mean of the diagonal confusion entries (1 = perfect readout)."""
        return float(np.mean([
            0.5 * (m[0, 0] + m[1, 1]) for m in self.confusions
        ]))

    def apply(self, probabilities: Mapping[str, float]
              ) -> Dict[str, float]:
        """Invert the confusion model on a measured distribution.

        Applies each qubit's inverse matrix along its axis, clips the
        (possibly slightly negative) quasi-probabilities to zero, and
        renormalizes — the standard pragmatic recipe.
        """
        if not probabilities:
            return {}
        width = len(next(iter(probabilities)))
        if width != self.num_bits:
            raise ValueError(
                f"mitigator calibrated for {self.num_bits} bits, "
                f"distribution has {width}")
        vec = np.zeros(2 ** width)
        for key, p in probabilities.items():
            vec[int(key, 2)] += p
        tens = vec.reshape((2,) * width)
        for axis, mat in enumerate(self.confusions):
            inv = np.linalg.inv(mat)
            tens = np.moveaxis(
                np.tensordot(inv, tens, axes=(1, axis)), 0, axis)
        flat = np.clip(tens.reshape(-1), 0.0, None)
        total = flat.sum()
        if total <= 0:
            raise ValueError("mitigation produced an empty distribution")
        flat = flat / total
        return {
            format(idx, f"0{width}b"): float(p)
            for idx, p in enumerate(flat) if p > 1e-12
        }


def _prep_circuit(num_qubits: int, pattern: int) -> QuantumCircuit:
    """|pattern> preparation + measure-all (big-endian pattern bits)."""
    qc = QuantumCircuit(num_qubits, num_qubits,
                        name=f"readout_cal_{pattern:0{num_qubits}b}")
    for q in range(num_qubits):
        if (pattern >> (num_qubits - 1 - q)) & 1:
            qc.x(q)
    qc.measure_all()
    return qc


def calibrate_readout(
    device: Device,
    partition: Sequence[int],
    shots: int = 8192,
    seed: Optional[int] = None,
) -> ReadoutMitigator:
    """Measure per-qubit confusion matrices on a partition.

    Runs the all-zeros and all-ones preparation circuits (the tensored
    calibration needs only these two) and extracts each qubit's marginal
    flip rates.
    """
    partition = tuple(partition)
    n = len(partition)
    zeros = _prep_circuit(n, 0)
    ones = _prep_circuit(n, (1 << n) - 1)
    res0 = run_parallel([Program(zeros, partition)], device,
                        shots=shots, seed=seed)[0]
    res1 = run_parallel([Program(ones, partition)], device,
                        shots=shots,
                        seed=None if seed is None else seed + 1)[0]

    def marginal_one(probs: Mapping[str, float], bit: int) -> float:
        return sum(p for key, p in probs.items() if key[bit] == "1")

    confusions: List[np.ndarray] = []
    for bit in range(n):
        p01 = marginal_one(res0.probabilities, bit)       # read 1 | true 0
        p10 = 1.0 - marginal_one(res1.probabilities, bit)  # read 0 | true 1
        confusions.append(
            np.array([[1.0 - p01, p10], [p01, 1.0 - p10]]))
    return ReadoutMitigator(tuple(confusions))

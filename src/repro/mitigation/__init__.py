"""Quantum error mitigation: digital zero-noise extrapolation with
unitary folding and Mitiq-style extrapolation factories (Sec. IV-D)."""

from .factories import (
    ExpFactory,
    LinearFactory,
    PolyFactory,
    RichardsonFactory,
    all_factories,
)
from .measurement import ReadoutMitigator, calibrate_readout
from .folding import fold_gates_at_random, fold_global, folded_scale_factors
from .zne import (
    ZNEComparison,
    parity_expectation,
    run_zne_comparison,
    zero_noise_estimate,
)

__all__ = [
    "ExpFactory",
    "LinearFactory",
    "PolyFactory",
    "ReadoutMitigator",
    "RichardsonFactory",
    "ZNEComparison",
    "all_factories",
    "calibrate_readout",
    "fold_gates_at_random",
    "fold_global",
    "folded_scale_factors",
    "parity_expectation",
    "run_zne_comparison",
    "zero_noise_estimate",
]

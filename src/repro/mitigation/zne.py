"""Zero-noise extrapolation drivers (paper Sec. IV-D, Fig. 6).

Three flows are compared on each benchmark:

- **Baseline**: the circuit runs once on its best QuCP partition, no
  mitigation;
- **ZNE**: the folded circuits (scale factors 1.0–2.5) run independently,
  one job each, and the expectation is extrapolated to zero noise;
- **QuCP+ZNE**: the folded circuits run *simultaneously* on partitions
  chosen by QuCP — same number of circuit executions as the baseline,
  ~4x the throughput of sequential ZNE.

The observable is the Z...Z parity of the measured bits; the reported
error is ``|ideal expectation - obtained expectation|``, and (as in the
paper) the best result across the extrapolation factories is shown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..core.executor import execute_allocation
from ..core.qucp import DEFAULT_SIGMA, qucp_allocate
from ..hardware.devices import Device
from ..sim.statevector import ideal_probabilities
from .factories import all_factories
from .folding import fold_gates_at_random, folded_scale_factors

__all__ = [
    "ZNEComparison",
    "parity_expectation",
    "zero_noise_estimate",
    "run_zne_comparison",
]


def parity_expectation(probabilities: Mapping[str, float]) -> float:
    """<Z...Z> over all measured bits of a distribution."""
    total = 0.0
    for key, p in probabilities.items():
        parity = key.count("1") % 2
        total += p * (1.0 if parity == 0 else -1.0)
    return total


def zero_noise_estimate(
    scales: Sequence[float],
    expectations: Sequence[float],
    ideal: Optional[float] = None,
) -> Tuple[float, str]:
    """Extrapolate to zero noise; returns ``(estimate, factory_name)``.

    With *ideal* given, the factory whose estimate lands closest to the
    ideal value is selected — the paper's "best estimated result among
    these methods" protocol.  Without it, Richardson is used.
    """
    candidates = []
    for factory in all_factories():
        try:
            candidates.append(
                (factory.extrapolate(scales, expectations), factory.name))
        except (ValueError, FloatingPointError):
            continue
    if not candidates:
        raise ValueError("no factory could extrapolate")
    if ideal is None:
        for estimate, name in candidates:
            if name == "richardson":
                return estimate, name
        return candidates[0]
    return min(candidates, key=lambda en: abs(en[0] - ideal))


@dataclass
class ZNEComparison:
    """Fig. 6 data for one benchmark."""

    name: str
    ideal_expectation: float
    baseline_error: float
    qucp_zne_error: float
    zne_error: float
    qucp_zne_throughput: float
    zne_factory: str
    qucp_factory: str

    def rows(self) -> Dict[str, float]:
        """The three bars of Fig. 6 for this benchmark."""
        return {
            "Baseline": self.baseline_error,
            "QuCP+ZNE": self.qucp_zne_error,
            "ZNE": self.zne_error,
        }


def _folded_set(circuit: QuantumCircuit,
                scales: Sequence[float], seed: int) -> List[QuantumCircuit]:
    return [
        fold_gates_at_random(circuit, s, seed=seed + i)
        for i, s in enumerate(scales)
    ]


def run_zne_comparison(
    circuit: QuantumCircuit,
    device: Device,
    shots: int = 8192,
    seed: int = 0,
    scales: Sequence[float] = (),
    sigma: float = DEFAULT_SIGMA,
) -> ZNEComparison:
    """Run Baseline / QuCP+ZNE / ZNE on one benchmark circuit."""
    if not any(inst.name == "measure" for inst in circuit):
        raise ValueError("circuit must contain measurements")
    scales = tuple(scales) or folded_scale_factors()
    ideal = parity_expectation(ideal_probabilities(circuit))

    # Baseline: one unmitigated run on the best partition.
    base_alloc = qucp_allocate([circuit], device, sigma=sigma)
    base_out = execute_allocation(base_alloc, shots=shots, seed=seed)[0]
    baseline_error = abs(
        ideal - parity_expectation(base_out.result.probabilities))

    folded = _folded_set(circuit, scales, seed=seed + 1000)

    # QuCP+ZNE: all folded circuits in one simultaneous job.
    par_alloc = qucp_allocate(folded, device, sigma=sigma)
    par_outs = execute_allocation(par_alloc, shots=shots, seed=seed + 1)
    par_expect = [
        parity_expectation(o.result.probabilities) for o in par_outs
    ]
    par_est, par_factory = zero_noise_estimate(scales, par_expect, ideal)
    qucp_zne_error = abs(ideal - par_est)

    # ZNE: folded circuits run independently (sequential jobs).
    seq_expect = []
    for k, fc in enumerate(folded):
        alloc = qucp_allocate([fc], device, sigma=sigma)
        out = execute_allocation(alloc, shots=shots, seed=seed + 2 + k)[0]
        seq_expect.append(parity_expectation(out.result.probabilities))
    seq_est, seq_factory = zero_noise_estimate(scales, seq_expect, ideal)
    zne_error = abs(ideal - seq_est)

    return ZNEComparison(
        name=circuit.name,
        ideal_expectation=ideal,
        baseline_error=baseline_error,
        qucp_zne_error=qucp_zne_error,
        zne_error=zne_error,
        qucp_zne_throughput=par_alloc.throughput(),
        zne_factory=seq_factory,
        qucp_factory=par_factory,
    )

"""Unitary folding for digital zero-noise extrapolation.

Folding replaces a gate ``G`` by ``G Gdag G`` — logically the identity
around the original gate, but three times the physical noise.  The two
Mitiq methods the paper uses are implemented:

- :func:`fold_global`: fold the whole circuit ``C -> C (Cdag C)^k`` with a
  partial final fold for fractional scale factors;
- :func:`fold_gates_at_random`: fold randomly-selected individual gates
  until the gate count reaches ``scale * len(circuit)``.

Only unitary gates participate; measurements/barriers/delays pass through.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..circuits.circuit import Instruction, QuantumCircuit

__all__ = ["fold_gates_at_random", "fold_global", "folded_scale_factors"]


def _split(circuit: QuantumCircuit
           ) -> Tuple[List[Instruction], List[Instruction]]:
    """Separate foldable body from trailing measurement directives."""
    body: List[Instruction] = []
    tail: List[Instruction] = []
    for inst in circuit:
        if inst.name in ("measure", "barrier", "delay", "reset"):
            tail.append(inst)
        else:
            body.append(inst)
    return body, tail


def fold_gates_at_random(
    circuit: QuantumCircuit,
    scale: float,
    seed: Optional[int] = None,
) -> QuantumCircuit:
    """Randomly fold gates until the size reaches ``scale * original``.

    ``scale`` must be >= 1.  Each fold of gate ``G`` inserts
    ``Gdag G`` right after it (2 extra gates), so the number of folds is
    ``round((scale - 1) * n / 2)``.  Gates may be folded more than once
    when ``scale > 3``.
    """
    if scale < 1.0:
        raise ValueError("scale factor must be >= 1")
    body, tail = _split(circuit)
    n = len(body)
    num_folds = int(round((scale - 1.0) * n / 2.0))
    rng = np.random.default_rng(seed)
    # folds[i] = how many times body[i] is folded.
    folds = [0] * n
    if n:
        for idx in rng.integers(0, n, size=num_folds):
            folds[int(idx)] += 1
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                         f"{circuit.name}_fold{scale:g}")
    for inst, k in zip(body, folds):
        out._instructions.append(inst)  # noqa: SLF001
        for _ in range(k):
            out.append(inst.gate.inverse(), inst.qubits)
            out._instructions.append(inst)  # noqa: SLF001
    for inst in tail:
        out._instructions.append(inst)  # noqa: SLF001
    return out


def fold_global(circuit: QuantumCircuit, scale: float) -> QuantumCircuit:
    """Fold the whole circuit: ``C -> C (Cdag C)^k`` plus a partial fold.

    For ``scale = 1 + 2k`` the fold is exact; fractional parts fold the
    trailing portion of the circuit once more (Mitiq's convention).
    """
    if scale < 1.0:
        raise ValueError("scale factor must be >= 1")
    body, tail = _split(circuit)
    n = len(body)
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                         f"{circuit.name}_gfold{scale:g}")
    for inst in body:
        out._instructions.append(inst)  # noqa: SLF001
    if n:
        num_full = int((scale - 1.0) / 2.0)
        for _ in range(num_full):
            for inst in reversed(body):
                out.append(inst.gate.inverse(), inst.qubits)
            for inst in body:
                out._instructions.append(inst)  # noqa: SLF001
        # Partial fold of the last `m` gates for the fractional remainder.
        remainder = scale - 1.0 - 2.0 * num_full
        m = int(round(remainder * n / 2.0))
        if m > 0:
            for inst in reversed(body[n - m:]):
                out.append(inst.gate.inverse(), inst.qubits)
            for inst in body[n - m:]:
                out._instructions.append(inst)  # noqa: SLF001
    for inst in tail:
        out._instructions.append(inst)  # noqa: SLF001
    return out


def folded_scale_factors(start: float = 1.0, stop: float = 2.5,
                         step: float = 0.5) -> Tuple[float, ...]:
    """The paper's scale-factor grid: 1.0, 1.5, 2.0, 2.5."""
    out = []
    value = start
    while value <= stop + 1e-9:
        out.append(round(value, 10))
        value += step
    return tuple(out)

"""Simulators: ideal statevector, circuit unitaries, and noisy
density-matrix evolution with calibration-driven Kraus channels."""

from .channels import (
    KrausChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    error_rate_to_depolarizing_param,
    identity_channel,
    pauli_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_channel,
)
from .estimator import (
    EstimationResult,
    estimate_expectation,
    estimate_expectation_on_device,
)
from .fidelity import (
    counts_fidelity,
    hellinger_fidelity,
    purity,
    state_fidelity,
    trace_distance,
)
from .density_matrix import (
    SimulationResult,
    run_circuit,
    simulate_density_matrix,
)
from .noise_model import NoiseModel
from .readout import apply_readout_confusion, counts_to_probs, sample_counts
from .statevector import ideal_counts, ideal_probabilities, simulate_statevector
from .unitary import basis_index, bitstring_of, circuit_unitary, embed_gate

__all__ = [
    "KrausChannel",
    "NoiseModel",
    "EstimationResult",
    "SimulationResult",
    "amplitude_damping_channel",
    "apply_readout_confusion",
    "basis_index",
    "bit_flip_channel",
    "bitstring_of",
    "circuit_unitary",
    "counts_fidelity",
    "counts_to_probs",
    "depolarizing_channel",
    "embed_gate",
    "estimate_expectation",
    "estimate_expectation_on_device",
    "error_rate_to_depolarizing_param",
    "ideal_counts",
    "ideal_probabilities",
    "hellinger_fidelity",
    "identity_channel",
    "pauli_channel",
    "phase_damping_channel",
    "phase_flip_channel",
    "purity",
    "run_circuit",
    "sample_counts",
    "simulate_density_matrix",
    "simulate_statevector",
    "state_fidelity",
    "trace_distance",
    "thermal_relaxation_channel",
]

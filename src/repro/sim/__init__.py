"""Simulators: ideal statevector, circuit unitaries, and noisy
density-matrix evolution with calibration-driven Kraus channels.

Performance note
----------------
Both simulators run on the **local tensor-contraction backend** in
:mod:`repro.sim.kernels`: the state is a ``(2,)*n`` tensor (density matrix
``(2,)*2n``) and each k-qubit unitary or Kraus operator is contracted
against its target axes only.  Per-operator cost is ``O(2^n * 4^k)`` for
states and ``O(4^n * 4^k)`` for density matrices — versus ``O(4^n)`` /
``O(8^n)`` for the old full-space embedding + dense matmul — roughly an
order of magnitude on the 6-8 qubit partitions the parallel executor
sweeps (see ``benchmarks/bench_kernels.py``).  The dense path survives as
``simulate_density_matrix(..., backend="dense")`` purely for verification;
``tests/test_kernels_equivalence.py`` pins both backends to each other at
1e-10 over randomized circuits."""

from .channels import (
    KrausChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    error_rate_to_depolarizing_param,
    identity_channel,
    pauli_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_channel,
)
from .estimator import (
    EstimationResult,
    estimate_expectation,
    estimate_expectation_on_device,
)
from .feedforward import dynamic_probabilities, run_dynamic
from .fidelity import (
    counts_fidelity,
    hellinger_fidelity,
    purity,
    state_fidelity,
    trace_distance,
)
from .density_matrix import (
    SimulationResult,
    run_circuit,
    simulate_density_matrix,
)
from .kernels import (
    apply_kraus,
    apply_to_statevector,
    apply_unitary,
    initial_density_tensor,
    initial_state_tensor,
)
from .noise_model import NoiseModel
from .readout import apply_readout_confusion, counts_to_probs, sample_counts
from .statevector import ideal_counts, ideal_probabilities, simulate_statevector
from .unitary import basis_index, bitstring_of, circuit_unitary, embed_gate

__all__ = [
    "KrausChannel",
    "NoiseModel",
    "EstimationResult",
    "SimulationResult",
    "amplitude_damping_channel",
    "apply_kraus",
    "apply_readout_confusion",
    "apply_to_statevector",
    "apply_unitary",
    "basis_index",
    "bit_flip_channel",
    "bitstring_of",
    "circuit_unitary",
    "counts_fidelity",
    "counts_to_probs",
    "depolarizing_channel",
    "dynamic_probabilities",
    "embed_gate",
    "estimate_expectation",
    "estimate_expectation_on_device",
    "error_rate_to_depolarizing_param",
    "ideal_counts",
    "ideal_probabilities",
    "hellinger_fidelity",
    "identity_channel",
    "initial_density_tensor",
    "initial_state_tensor",
    "pauli_channel",
    "phase_damping_channel",
    "phase_flip_channel",
    "purity",
    "run_circuit",
    "run_dynamic",
    "sample_counts",
    "simulate_density_matrix",
    "simulate_statevector",
    "state_fidelity",
    "trace_distance",
    "thermal_relaxation_channel",
]

"""Kraus channel constructors for the noisy simulator.

All constructors return a :class:`KrausChannel`, a validated list of Kraus
operators satisfying the completeness relation ``sum(K^dag K) = I``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "KrausChannel",
    "depolarizing_channel",
    "amplitude_damping_channel",
    "phase_damping_channel",
    "thermal_relaxation_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "pauli_channel",
    "identity_channel",
    "error_rate_to_depolarizing_param",
]

_PAULIS = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


@dataclass(frozen=True)
class KrausChannel:
    """A CPTP map given by Kraus operators, all of equal square shape."""

    operators: Tuple[np.ndarray, ...]
    _embed_cache: dict = field(default_factory=dict, compare=False,
                               repr=False)

    def __post_init__(self) -> None:
        if not self.operators:
            raise ValueError("channel needs at least one Kraus operator")
        dim = self.operators[0].shape[0]
        total = np.zeros((dim, dim), dtype=complex)
        for op in self.operators:
            if op.shape != (dim, dim):
                raise ValueError("Kraus operators must share a square shape")
            total += op.conj().T @ op
        if not np.allclose(total, np.eye(dim), atol=1e-8):
            raise ValueError("Kraus operators violate completeness")

    @property
    def num_qubits(self) -> int:
        """Number of qubits the channel acts on."""
        return int(math.log2(self.operators[0].shape[0]))

    def apply(self, rho: np.ndarray) -> np.ndarray:
        """Apply the channel to a density matrix of matching dimension."""
        out = np.zeros_like(rho)
        for op in self.operators:
            out += op @ rho @ op.conj().T
        return out

    def compose(self, other: "KrausChannel") -> "KrausChannel":
        """Return ``other ∘ self`` (self applied first)."""
        ops = tuple(
            b @ a for a in self.operators for b in other.operators
        )
        return KrausChannel(ops)

    def superop(self) -> np.ndarray:
        """The channel folded into a local superoperator tensor (cached).

        See :func:`repro.sim.kernels.superop_tensor`; channel instances
        are themselves cached by the constructors, so a run's repeated
        error rates fold exactly once.
        """
        cached = self._embed_cache.get("superop")
        if cached is None:
            from .kernels import superop_tensor

            cached = superop_tensor(self.operators)
            self._embed_cache["superop"] = cached
        return cached

    def apply_local(self, rho: np.ndarray, qubits: Tuple[int, ...],
                    num_qubits: int) -> np.ndarray:
        """Apply the channel on local axes of a ``(2,)*2n`` density tensor.

        This is the hot path of the noisy simulator: the folded
        superoperator is contracted against the target axes only (see
        :mod:`repro.sim.kernels`), never embedded into the full space.
        """
        from .kernels import apply_superop

        return apply_superop(rho, self.superop(), qubits, num_qubits)

    def embedded(self, qubits: Tuple[int, ...],
                 num_qubits: int) -> Tuple[np.ndarray, ...]:
        """Kraus operators embedded into the full *num_qubits* space.

        Cached per (qubits, num_qubits).  Off the simulation hot path —
        only the dense reference backend and full-matrix consumers use
        these embeddings.
        """
        from .unitary import embed_gate

        key = (qubits, num_qubits)
        cached = self._embed_cache.get(key)
        if cached is None:
            cached = tuple(
                embed_gate(op, qubits, num_qubits) for op in self.operators
            )
            self._embed_cache[key] = cached
        return cached


def identity_channel(num_qubits: int = 1) -> KrausChannel:
    """The do-nothing channel."""
    return KrausChannel((np.eye(2 ** num_qubits, dtype=complex),))


def error_rate_to_depolarizing_param(error_rate: float,
                                     num_qubits: int) -> float:
    """Convert a calibration *average gate error* to a depolarizing prob.

    For the channel ``E(rho) = (1-p) rho + p I/d`` the average gate
    infidelity is ``p (d-1)/d``, hence ``p = error * d/(d-1)``.
    The result is clipped to [0, 1].
    """
    d = 2 ** num_qubits
    p = error_rate * d / (d - 1)
    return min(max(p, 0.0), 1.0)


def depolarizing_channel(p: float, num_qubits: int = 1) -> KrausChannel:
    """Depolarizing channel ``E(rho) = (1-p) rho + p I/d``.

    Realized as the uniform Pauli channel: identity with probability
    ``1 - p (d^2-1)/d^2`` and each non-identity Pauli with ``p/d^2``.
    Instances are cached (the simulator requests the same error rates for
    every gate of a run).
    """
    return _depolarizing_cached(round(float(p), 14), num_qubits)


@lru_cache(maxsize=4096)
def _depolarizing_cached(p: float, num_qubits: int) -> KrausChannel:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"depolarizing parameter {p} outside [0, 1]")
    d2 = 4 ** num_qubits
    ops: List[np.ndarray] = []
    labels = ["".join(t) for t in itertools.product("IXYZ",
                                                    repeat=num_qubits)]
    for label in labels:
        mat = np.eye(1, dtype=complex)
        for ch in label:
            mat = np.kron(mat, _PAULIS[ch])
        if label == "I" * num_qubits:
            weight = 1.0 - p * (d2 - 1) / d2
        else:
            weight = p / d2
        ops.append(math.sqrt(weight) * mat)
    return KrausChannel(tuple(ops))


def pauli_channel(probabilities: dict) -> KrausChannel:
    """Pauli channel from a {pauli_label: probability} map.

    Missing probability mass is assigned to the identity.
    """
    num_qubits = len(next(iter(probabilities)))
    total = sum(probabilities.values())
    if total > 1.0 + 1e-12:
        raise ValueError("Pauli probabilities exceed 1")
    ops: List[np.ndarray] = []
    ident = "I" * num_qubits
    probs = dict(probabilities)
    probs[ident] = probs.get(ident, 0.0) + (1.0 - total)
    for label, prob in probs.items():
        if prob <= 0:
            continue
        mat = np.eye(1, dtype=complex)
        for ch in label:
            mat = np.kron(mat, _PAULIS[ch])
        ops.append(math.sqrt(prob) * mat)
    return KrausChannel(tuple(ops))


def bit_flip_channel(p: float) -> KrausChannel:
    """X error with probability *p*."""
    return pauli_channel({"X": p})


def phase_flip_channel(p: float) -> KrausChannel:
    """Z error with probability *p*."""
    return pauli_channel({"Z": p})


def amplitude_damping_channel(gamma: float) -> KrausChannel:
    """T1 relaxation toward |0> with damping probability *gamma*."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError(f"gamma {gamma} outside [0, 1]")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return KrausChannel((k0, k1))


def phase_damping_channel(lam: float) -> KrausChannel:
    """Pure dephasing with damping probability *lam*."""
    if not 0.0 <= lam <= 1.0:
        raise ValueError(f"lambda {lam} outside [0, 1]")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    return KrausChannel((k0, k1))


def thermal_relaxation_channel(t1: float, t2: float,
                               duration: float) -> KrausChannel:
    """Combined T1/T2 relaxation over *duration* (same units as t1/t2).

    Requires ``t2 <= 2 t1``.  Implemented as amplitude damping followed by
    the extra pure dephasing needed to hit the target T2.  Instances are
    cached (the simulator requests the same qubit coherence times and
    delay durations for every run of a sweep), so validation and the
    superoperator fold happen once per distinct parameter triple.  The
    key uses the exact float values — the function is unit-agnostic, so
    no rounding is safe across magnitudes.
    """
    if t2 > 2 * t1 + 1e-12:
        raise ValueError("t2 must be <= 2*t1")
    if duration < 0:
        raise ValueError("duration must be non-negative")
    return _thermal_relaxation_cached(float(t1), float(t2), float(duration))


@lru_cache(maxsize=4096)
def _thermal_relaxation_cached(t1: float, t2: float,
                               duration: float) -> KrausChannel:
    gamma = 1.0 - math.exp(-duration / t1) if t1 > 0 else 1.0
    # Total dephasing factor exp(-t/T2) = sqrt(1-gamma) * sqrt(1-lam)
    # where sqrt(1-gamma) is the coherence decay from amplitude damping.
    decay_t2 = math.exp(-duration / t2) if t2 > 0 else 0.0
    decay_t1_part = math.sqrt(1.0 - gamma)
    if decay_t1_part <= 0:
        lam = 1.0
    else:
        ratio = decay_t2 / decay_t1_part
        lam = 1.0 - min(1.0, ratio) ** 2
    damp = amplitude_damping_channel(gamma)
    dephase = phase_damping_channel(min(max(lam, 0.0), 1.0))
    return damp.compose(dephase)

"""Readout-error handling: confusion matrices and shot sampling."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

__all__ = ["apply_readout_confusion", "sample_counts", "counts_to_probs",
           "SeedLike"]

#: Anything accepted as an RNG seed: an int, a spawned
#: :class:`numpy.random.SeedSequence` child stream, or None (OS entropy).
SeedLike = Optional[Union[int, np.random.SeedSequence]]


def apply_readout_confusion(
    probs: Dict[str, float],
    confusions: Sequence[np.ndarray],
) -> Dict[str, float]:
    """Apply per-bit 2x2 confusion matrices to an output distribution.

    ``confusions[i]`` is the column-stochastic matrix ``M[read, true]`` for
    the bit at string position *i*.  Applied as an independent tensor
    product, which is the standard uncorrelated readout model.
    """
    if not probs:
        return {}
    num_bits = len(next(iter(probs)))
    if len(confusions) != num_bits:
        raise ValueError("one confusion matrix per measured bit required")
    vec = np.zeros(2 ** num_bits)
    for key, p in probs.items():
        vec[int(key, 2)] += p
    # Apply M_i on each bit axis of the probability tensor.
    tens = vec.reshape((2,) * num_bits)
    for axis, mat in enumerate(confusions):
        tens = np.moveaxis(
            np.tensordot(mat, tens, axes=(1, axis)), 0, axis)
    flat = tens.reshape(-1)
    out: Dict[str, float] = {}
    for idx, p in enumerate(flat):
        if p > 1e-15:
            out[format(idx, f"0{num_bits}b")] = float(p)
    return out


def sample_counts(probs: Dict[str, float], shots: int,
                  seed: SeedLike = None) -> Dict[str, int]:
    """Multinomial-sample *shots* outcomes from a distribution."""
    if shots <= 0:
        return {}
    keys: List[str] = sorted(probs)
    pvals = np.array([max(probs[k], 0.0) for k in keys])
    total = pvals.sum()
    if total <= 0:
        raise ValueError("distribution has no probability mass")
    pvals = pvals / total
    rng = np.random.default_rng(seed)
    draws = rng.multinomial(shots, pvals)
    return {k: int(c) for k, c in zip(keys, draws) if c}


def counts_to_probs(counts: Dict[str, int]) -> Dict[str, float]:
    """Normalize a counts dictionary into a probability distribution."""
    total = sum(counts.values())
    if total <= 0:
        return {}
    return {k: v / total for k, v in counts.items()}

"""Observable estimation: <H> for arbitrary Pauli operators.

Generalizes the VQE measurement machinery into a reusable Estimator: give
it a state-preparation circuit and a :class:`PauliOperator`; it groups
commuting terms, builds the rotated measurement circuits, runs them
(optionally in parallel on disjoint partitions via QuCP), and combines
the expectations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit

__all__ = ["EstimationResult", "estimate_expectation",
           "estimate_expectation_on_device"]


@dataclass
class EstimationResult:
    """An expectation estimate plus its measurement breakdown."""

    value: float
    num_circuits: int
    group_values: Tuple[float, ...]


def _grouped_circuits(preparation: QuantumCircuit, operator):
    from ..vqe.grouping import group_commuting_terms
    from ..vqe.measurement import measurement_circuit

    if preparation.num_qubits != operator.num_qubits:
        raise ValueError("circuit/operator qubit mismatch")
    groups = group_commuting_terms(operator)
    circuits = [
        measurement_circuit(preparation.without_measurements(), group)
        for group in groups
    ]
    return groups, circuits


def estimate_expectation(
    preparation: QuantumCircuit,
    operator,
    shots: int = 0,
    seed: Optional[int] = None,
) -> EstimationResult:
    """Noiseless <operator> on the state *preparation* prepares."""
    from ..sim.statevector import ideal_probabilities
    from ..vqe.measurement import group_energy

    groups, circuits = _grouped_circuits(preparation, operator)
    values = []
    for group, circuit in zip(groups, circuits):
        probs = ideal_probabilities(circuit)
        values.append(group_energy(probs, group))
    return EstimationResult(
        value=float(sum(values)),
        num_circuits=len(circuits),
        group_values=tuple(values),
    )


def estimate_expectation_on_device(
    preparation: QuantumCircuit,
    operator,
    device,
    shots: int = 8192,
    seed: Optional[int] = None,
    parallel: bool = True,
    sigma: Optional[float] = None,
) -> EstimationResult:
    """<operator> measured on *device*.

    With ``parallel=True`` every commuting group's circuit runs in one
    QuCP-partitioned job; otherwise the groups run sequentially on the
    best partition.
    """
    from ..core.executor import execute_allocation
    from ..core.qucp import DEFAULT_SIGMA, qucp_allocate
    from ..vqe.measurement import group_energy

    groups, circuits = _grouped_circuits(preparation, operator)
    sigma = DEFAULT_SIGMA if sigma is None else sigma
    values: List[float] = []
    if parallel and len(circuits) > 1:
        allocation = qucp_allocate(circuits, device, sigma=sigma)
        outcomes = execute_allocation(allocation, shots=shots, seed=seed)
        for group, outcome in zip(groups, outcomes):
            values.append(
                group_energy(outcome.result.probabilities, group))
    else:
        for k, (group, circuit) in enumerate(zip(groups, circuits)):
            allocation = qucp_allocate([circuit], device, sigma=sigma)
            run_seed = None if seed is None else seed + 13 * k
            outcome = execute_allocation(allocation, shots=shots,
                                         seed=run_seed)[0]
            values.append(
                group_energy(outcome.result.probabilities, group))
    return EstimationResult(
        value=float(sum(values)),
        num_circuits=len(circuits),
        group_values=tuple(values),
    )

"""Ideal statevector simulation.

Applies gates on a tensor-reshaped state through the local contraction
kernels in :mod:`repro.sim.kernels` — O(2^n * 4^k) per k-qubit gate, no
full-space embeddings.  Measurement instructions are ignored here (the
statevector before measurement is returned); use :mod:`repro.sim.readout`
or the executor for shot sampling.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.controlflow import has_control_flow
from .kernels import apply_to_statevector, initial_state_tensor
from .unitary import bitstring_of

__all__ = ["simulate_statevector", "ideal_probabilities", "ideal_counts"]


def simulate_statevector(circuit: QuantumCircuit,
                         initial_state: Optional[np.ndarray] = None
                         ) -> np.ndarray:
    """Return the final statevector of *circuit* (big-endian).

    Measurements and barriers are skipped; resets are rejected (they are
    non-unitary — use the density-matrix simulator).
    """
    n = circuit.num_qubits
    if initial_state is None:
        state = initial_state_tensor(n)
    else:
        if initial_state.size != 2 ** n:
            raise ValueError("initial state size mismatch")
        state = np.array(initial_state, dtype=complex).reshape((2,) * n)
    for inst in circuit:
        if inst.name in ("measure", "barrier", "delay"):
            continue
        if inst.name == "reset":
            raise ValueError("reset requires the density-matrix simulator")
        state = apply_to_statevector(state, inst.gate.matrix(),
                                     inst.qubits, n)
    return state.reshape(2 ** n)


def ideal_probabilities(circuit: QuantumCircuit) -> Dict[str, float]:
    """Exact output distribution over measured clbits (or all qubits).

    If the circuit contains measurements, probabilities are marginalized
    onto the measured clbits (clbit 0 is the leftmost character of the
    key); otherwise all qubits are reported in qubit order.

    Control-flow circuits, circuits with resets, and circuits with
    genuine mid-circuit measurements are routed to the exact tree-walk
    engine (:func:`repro.sim.feedforward.dynamic_probabilities`), which
    collapses the state at each measurement instead of deferring.
    """
    if (has_control_flow(circuit) or circuit.has_midcircuit_measurement()
            or any(inst.name == "reset" for inst in circuit)):
        from .feedforward import dynamic_probabilities

        return dynamic_probabilities(circuit)
    n = circuit.num_qubits
    amps = simulate_statevector(circuit.without_measurements())
    probs = np.abs(amps) ** 2

    measure_map = [
        (inst.qubits[0], inst.clbits[0])
        for inst in circuit if inst.name == "measure"
    ]
    if not measure_map:
        return {
            bitstring_of(i, n): float(p)
            for i, p in enumerate(probs) if p > 1e-14
        }
    clbits = sorted({c for _, c in measure_map})
    qubit_for_clbit = {}
    for q, c in measure_map:
        qubit_for_clbit[c] = q  # last measure into a clbit wins
    out: Dict[str, float] = {}
    for idx, p in enumerate(probs):
        if p <= 1e-14:
            continue
        key = "".join(
            str((idx >> (n - 1 - qubit_for_clbit[c])) & 1) for c in clbits
        )
        out[key] = out.get(key, 0.0) + float(p)
    return out


def ideal_counts(circuit: QuantumCircuit, shots: int,
                 seed: Optional[int] = None) -> Dict[str, int]:
    """Sample *shots* noiseless measurement outcomes."""
    probs = ideal_probabilities(circuit)
    keys = sorted(probs)
    pvals = np.array([probs[k] for k in keys])
    pvals = pvals / pvals.sum()
    rng = np.random.default_rng(seed)
    draws = rng.multinomial(shots, pvals)
    return {k: int(c) for k, c in zip(keys, draws) if c}

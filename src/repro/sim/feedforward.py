"""Per-shot feed-forward execution of dynamic circuits.

Two engines for circuits whose control flow survives static expansion:

- :func:`run_dynamic` — the *noisy* engine.  Each shot evolves its own
  density matrix; a mid-circuit ``measure`` samples the marginal
  probability, projects and renormalizes the state, and records the
  clbit (readout confusion is applied to the recorded bit, matching the
  static path's end-of-circuit confusion model); conditions then steer
  which bodies run.  Statically-resolvable circuits take a fast path:
  they are expanded and delegated to the ordinary distribution-sampling
  simulator, which makes unrolled and feed-forward execution
  **bit-identical** under the same seed — the equivalence the
  randomized suite in ``tests/test_controlflow_equivalence.py`` locks.

- :func:`dynamic_probabilities` — the *exact noiseless* engine.  A
  statevector tree walk forks at every measurement/reset with the
  branch probabilities as weights, so the returned distribution is
  exact (no sampling noise); it is the dynamic analogue of
  :func:`repro.sim.statevector.ideal_probabilities` and backs the
  execution cache's ideal-reference lookups for dynamic programs.

Seed discipline matches the executor: *seed* is an int or a spawned
``SeedSequence`` child; one ``default_rng`` stream drives all shots of a
program sequentially, so co-scheduled programs stay independent through
``spawn_seeds`` exactly as in the static path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.controlflow import (ControlFlowOp, ForLoopOp, IfElseOp,
                                    WhileLoopOp, has_control_flow,
                                    written_clbits_of)
from .density_matrix import SimulationResult, _TensorOps
from .kernels import apply_kraus, apply_to_statevector, initial_state_tensor
from .noise_model import NoiseModel
from .readout import SeedLike

__all__ = ["run_dynamic", "dynamic_probabilities", "needs_feedforward"]

_PROJECTORS = (
    np.array([[1.0, 0.0], [0.0, 0.0]], dtype=complex),
    np.array([[0.0, 0.0], [0.0, 1.0]], dtype=complex),
)
_X_MATRIX = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex)

#: Branches lighter than this probability are pruned from the tree walk.
_PRUNE = 1e-12


def _expand(circuit: QuantumCircuit) -> QuantumCircuit:
    # Local import: the transpiler package imports the sim layer.
    from ..transpiler.controlflow import expand_control_flow

    return expand_control_flow(circuit)


def needs_feedforward(circuit: QuantumCircuit) -> bool:
    """True when the deferred-measurement simulators would be wrong.

    Either unresolved control flow or a mid-circuit measurement (a
    measured qubit operated on again) forces per-shot execution; plain
    end-measured circuits keep the distribution-sampling fast path.
    """
    return (has_control_flow(circuit)
            or circuit.has_midcircuit_measurement())


# ----------------------------------------------------------------------
# noisy per-shot trajectories
# ----------------------------------------------------------------------
def _prob_one(rho: np.ndarray, qubit: int, n: int) -> float:
    """Marginal P(qubit = 1) from a density tensor's diagonal."""
    diag = np.real(np.diagonal(rho.reshape(2 ** n, 2 ** n)))
    diag = diag.clip(min=0.0).reshape((2,) * n)
    axes = tuple(a for a in range(n) if a != qubit)
    marginal = diag.sum(axis=axes) if axes else diag
    total = float(marginal[0] + marginal[1])
    if total <= 0.0:
        return 0.0
    return float(marginal[1]) / total


def _trace(rho: np.ndarray, n: int) -> float:
    return float(np.real(np.trace(rho.reshape(2 ** n, 2 ** n))))


class _TrajectoryRunner:
    """One program's shot-by-shot feed-forward executor."""

    def __init__(self, circuit: QuantumCircuit,
                 noise_model: Optional[NoiseModel],
                 error_scales: Dict[int, float],
                 rng: np.random.Generator) -> None:
        self.circuit = circuit
        self.n = circuit.num_qubits
        self.ops = _TensorOps(self.n)
        self.noise_model = noise_model
        self.error_scales = error_scales
        self.rng = rng
        # for_loop bodies with a loop parameter are rebound per index
        # value; memoize per (op, value) so the binding cost is paid
        # once per program, not once per shot.
        self._bound_bodies: Dict[Tuple[int, int], QuantumCircuit] = {}

    # -- static-instruction evolution (mirrors simulate_density_matrix)
    def _apply_static(self, rho: np.ndarray, inst, scale: float
                      ) -> np.ndarray:
        if inst.name == "barrier":
            return rho
        if inst.name == "reset":
            # Reset is a deterministic channel, not a sampling event.
            return self.ops.reset(rho, inst.qubits[0])
        if inst.name != "delay":
            rho = self.ops.unitary(rho, inst.name, inst.params,
                                   inst.qubits)
        elif self.noise_model is not None:
            delta = self.noise_model.detuning_of(inst.qubits[0])
            if delta != 0.0:
                angle = delta * float(inst.params[0])
                rho = self.ops.unitary(rho, "rz", (angle,), inst.qubits)
        if self.noise_model is not None:
            channel = self.noise_model.channel_for(inst, error_scale=scale)
            if channel is not None:
                rho = self.ops.channel(rho, channel,
                                       inst.qubits[:channel.num_qubits])
        return rho

    def _measure(self, rho: np.ndarray, qubit: int, clbit: int,
                 bits: Dict[int, int]) -> np.ndarray:
        p_one = _prob_one(rho, qubit, self.n)
        outcome = 1 if self.rng.random() < p_one else 0
        rho = apply_kraus(rho, (_PROJECTORS[outcome],), (qubit,), self.n)
        trace = _trace(rho, self.n)
        if trace > 0.0:
            rho = rho / trace
        recorded = outcome
        if self.noise_model is not None:
            confusion = self.noise_model.confusion_matrix(qubit)
            p_read_one = float(confusion[1, outcome])
            recorded = 1 if self.rng.random() < p_read_one else 0
        bits[clbit] = recorded
        return rho

    def _iteration_body(self, op: ForLoopOp, value: int) -> QuantumCircuit:
        if op.loop_parameter is None:
            return op.body
        key = (id(op), value)
        body = self._bound_bodies.get(key)
        if body is None:
            body = op.iteration_body(value)
            self._bound_bodies[key] = body
        return body

    def _run_sequence(self, rho: np.ndarray, instructions,
                      bits: Dict[int, int], top_level: bool) -> np.ndarray:
        for idx, inst in enumerate(instructions):
            op = inst.gate
            if isinstance(op, IfElseOp):
                body = op.body_for(op.condition.evaluate(bits))
                if body is not None:
                    rho = self._run_sequence(rho, body.instructions, bits,
                                             False)
                continue
            if isinstance(op, ForLoopOp):
                for value in op.indexset:
                    rho = self._run_sequence(
                        rho, self._iteration_body(op, value).instructions,
                        bits, False)
                continue
            if isinstance(op, WhileLoopOp):
                iterations = 0
                while (iterations < op.max_iterations
                       and op.condition.evaluate(bits)):
                    rho = self._run_sequence(rho, op.body.instructions,
                                             bits, False)
                    iterations += 1
                continue
            if inst.name == "measure":
                rho = self._measure(rho, inst.qubits[0], inst.clbits[0],
                                    bits)
                continue
            # Crosstalk error scales are keyed by *top-level* instruction
            # index (the joint schedule never sees inside bodies).
            scale = self.error_scales.get(idx, 1.0) if top_level else 1.0
            rho = self._apply_static(rho, inst, scale)
        return rho

    def run(self, shots: int, measured: Tuple[int, ...]) -> Dict[str, int]:
        instructions = self.circuit.instructions
        # Shared-prefix optimization: everything before the first
        # measurement or control-flow op is branch-independent, so its
        # (noisy, deterministic) evolution is computed once.
        split = len(instructions)
        for idx, inst in enumerate(instructions):
            if inst.name == "measure" or isinstance(inst.gate,
                                                    ControlFlowOp):
                split = idx
                break
        prefix_rho = self.ops.initial()
        for idx, inst in enumerate(instructions[:split]):
            prefix_rho = self._apply_static(
                prefix_rho, inst, self.error_scales.get(idx, 1.0))
        suffix = instructions[split:]
        # Re-key the error scales onto suffix-relative indices.
        suffix_scales = {i - split: s for i, s in self.error_scales.items()
                         if i >= split}
        outer_scales, self.error_scales = self.error_scales, suffix_scales

        counts: Dict[str, int] = {}
        for _ in range(shots):
            bits: Dict[int, int] = {}
            rho = self._run_sequence(prefix_rho.copy(), suffix, bits, True)
            key = "".join(str(bits.get(c, 0)) for c in measured)
            counts[key] = counts.get(key, 0) + 1
        self.error_scales = outer_scales
        return counts


def run_dynamic(
    circuit: QuantumCircuit,
    noise_model: Optional[NoiseModel] = None,
    shots: int = 0,
    seed: SeedLike = None,
    error_scales: Optional[Dict[int, float]] = None,
    allow_unroll: bool = True,
) -> SimulationResult:
    """Execute a control-flow circuit shot by shot with feed-forward.

    With ``allow_unroll=True`` (default) statically-resolvable circuits
    are expanded and delegated to the distribution-sampling path, whose
    output is then bit-identical to transpiling the unrolled circuit —
    per-shot trajectories only pay their cost where branches genuinely
    depend on data.  ``allow_unroll=False`` forces trajectories (used by
    the benchmark to price the two strategies honestly).

    ``probabilities`` on the returned result are the empirical shot
    frequencies (a trajectory engine has no closed-form distribution).
    """
    from .density_matrix import run_circuit

    if allow_unroll:
        expanded = _expand(circuit)
        if not needs_feedforward(expanded):
            return run_circuit(expanded, noise_model=noise_model,
                               shots=shots, seed=seed,
                               error_scales=error_scales)
        target = expanded
    else:
        target = circuit
    if shots <= 0:
        raise ValueError(
            "per-shot feed-forward execution needs shots > 0 (there is "
            "no closed-form output distribution for data-dependent "
            "branches)")
    measured = written_clbits_of(target)
    if not measured:
        raise ValueError(
            "dynamic circuit has unresolved control flow but no "
            "measurements — nothing can feed the conditions")
    runner = _TrajectoryRunner(target, noise_model, error_scales or {},
                               np.random.default_rng(seed))
    counts = runner.run(shots, measured)
    probabilities = {k: v / shots for k, v in counts.items()}
    return SimulationResult(
        probabilities=probabilities,
        counts=counts,
        shots=shots,
        density_matrix=None,
        measured_clbits=measured,
    )


# ----------------------------------------------------------------------
# exact noiseless tree walk
# ----------------------------------------------------------------------
def _split_state(state: np.ndarray, qubit: int, n: int
                 ) -> List[Tuple[int, float, np.ndarray]]:
    """Project onto |0>/|1> of *qubit*: ``(outcome, prob, state)`` list."""
    branches: List[Tuple[int, float, np.ndarray]] = []
    for outcome in (0, 1):
        index = [slice(None)] * n
        index[qubit] = outcome
        amplitude = state[tuple(index)]
        prob = float(np.sum(np.abs(amplitude) ** 2))
        if prob <= _PRUNE:
            continue
        projected = np.zeros_like(state)
        projected[tuple(index)] = amplitude / np.sqrt(prob)
        branches.append((outcome, prob, projected))
    return branches


def dynamic_probabilities(circuit: QuantumCircuit) -> Dict[str, float]:
    """Exact noiseless output distribution of a dynamic circuit.

    Forks the statevector at every measurement and reset, weighting each
    branch by its Born probability and steering conditions with the
    branch's recorded clbits.  Key-string position *i* holds the clbit
    ``measured_clbits[i]`` in sorted order, matching the static path.
    """
    expanded = _expand(circuit)
    if not needs_feedforward(expanded) and not any(
            inst.name == "reset" for inst in expanded):
        from .statevector import ideal_probabilities

        return ideal_probabilities(expanded)
    circuit = expanded
    n = circuit.num_qubits
    measured = written_clbits_of(circuit)
    results: Dict[str, float] = {}

    def finish(state, bits, weight) -> None:
        key = "".join(str(bits.get(c, 0)) for c in measured)
        results[key] = results.get(key, 0.0) + weight

    def run_seq(instructions, i, state, bits, weight, cont) -> None:
        while i < len(instructions):
            inst = instructions[i]
            op = inst.gate
            if isinstance(op, IfElseOp):
                body = op.body_for(op.condition.evaluate(bits))
                if body is None:
                    i += 1
                    continue
                return run_seq(
                    body.instructions, 0, state, bits, weight,
                    lambda s, b, w, i=i: run_seq(instructions, i + 1, s,
                                                 b, w, cont))
            if isinstance(op, ForLoopOp):
                unrolled: List = []
                for value in op.indexset:
                    unrolled.extend(op.iteration_body(value).instructions)
                return run_seq(
                    tuple(unrolled), 0, state, bits, weight,
                    lambda s, b, w, i=i: run_seq(instructions, i + 1, s,
                                                 b, w, cont))
            if isinstance(op, WhileLoopOp):
                return run_while(
                    op, 0, state, bits, weight,
                    lambda s, b, w, i=i: run_seq(instructions, i + 1, s,
                                                 b, w, cont))
            if inst.name == "measure":
                qubit, clbit = inst.qubits[0], inst.clbits[0]
                for outcome, prob, branch in _split_state(state, qubit, n):
                    if weight * prob <= _PRUNE:
                        continue
                    branch_bits = dict(bits)
                    branch_bits[clbit] = outcome
                    run_seq(instructions, i + 1, branch, branch_bits,
                            weight * prob, cont)
                return
            if inst.name == "reset":
                qubit = inst.qubits[0]
                for outcome, prob, branch in _split_state(state, qubit, n):
                    if weight * prob <= _PRUNE:
                        continue
                    if outcome == 1:
                        branch = apply_to_statevector(
                            branch, _X_MATRIX, (qubit,), n)
                    run_seq(instructions, i + 1, branch, dict(bits),
                            weight * prob, cont)
                return
            if inst.name in ("barrier", "delay"):
                i += 1
                continue
            state = apply_to_statevector(state, op.matrix(), inst.qubits,
                                         n)
            i += 1
        cont(state, bits, weight)

    def run_while(op, iterations, state, bits, weight, cont) -> None:
        if (iterations >= op.max_iterations
                or not op.condition.evaluate(bits)):
            return cont(state, bits, weight)
        run_seq(op.body.instructions, 0, state, bits, weight,
                lambda s, b, w: run_while(op, iterations + 1, s, b, w,
                                          cont))

    run_seq(circuit.instructions, 0, initial_state_tensor(n), {}, 1.0,
            finish)
    total = sum(results.values())
    if total > 0.0:
        results = {k: v / total for k, v in results.items()}
    return results

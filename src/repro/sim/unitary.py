"""Unitary construction: gate embedding and circuit-to-unitary.

Conventions (used consistently across the whole package):

- **big-endian qubit order**: qubit 0 is the most significant bit of a basis
  state index, i.e. basis index ``b`` assigns qubit ``q`` the bit
  ``(b >> (n - 1 - q)) & 1``.
- a gate's matrix is expressed in the big-endian order of its *instruction
  qubit list* (so ``cx`` with qubits ``(c, t)`` has control = first factor).

:func:`embed_gate` builds the dense full-space operator.  It is **not** on
the simulation hot path anymore — the simulators contract gates locally via
:mod:`repro.sim.kernels` — and survives as the reference construction for
verification and for code that genuinely needs the full matrix.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit

__all__ = ["embed_gate", "circuit_unitary", "basis_index", "bitstring_of"]


def basis_index(bits: Sequence[int]) -> int:
    """Convert a big-endian bit list (qubit 0 first) to a basis index."""
    idx = 0
    for b in bits:
        idx = (idx << 1) | int(b)
    return idx


def bitstring_of(index: int, num_bits: int) -> str:
    """Render a basis index as a big-endian bitstring (qubit 0 leftmost)."""
    return format(index, f"0{num_bits}b")


def embed_gate(matrix: np.ndarray, qubits: Sequence[int],
               num_qubits: int) -> np.ndarray:
    """Embed a k-qubit gate matrix into the full n-qubit unitary.

    *qubits* gives, in order, which circuit qubit each tensor factor of
    *matrix* acts on.
    """
    k = len(qubits)
    if matrix.shape != (2 ** k, 2 ** k):
        raise ValueError("matrix shape does not match qubit count")
    if len(set(qubits)) != k:
        raise ValueError("duplicate qubits in embedding")
    if any(not 0 <= q < num_qubits for q in qubits):
        raise ValueError("qubit index out of range")
    rest = [q for q in range(num_qubits) if q not in qubits]
    full = np.kron(matrix, np.eye(2 ** (num_qubits - k), dtype=complex))
    # `full` acts on tensor axes ordered [qubits..., rest...]; permute to
    # natural order [0, 1, ..., n-1].
    current_order = list(qubits) + rest
    # perm[i] = where natural axis i currently lives.
    perm = [current_order.index(q) for q in range(num_qubits)]
    tens = full.reshape((2,) * (2 * num_qubits))
    row_axes = perm
    col_axes = [num_qubits + p for p in perm]
    tens = tens.transpose(row_axes + col_axes)
    return np.ascontiguousarray(
        tens.reshape(2 ** num_qubits, 2 ** num_qubits))


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Compose a circuit's gates into a single unitary matrix.

    Measurements and resets are rejected; barriers and delays are skipped.
    Each gate is contracted locally against the row axes of the running
    unitary (every column is a statevector), so no full-space embedding is
    built — O(8^n) per gate becomes O(4^n * 4^k).
    """
    from .kernels import apply_to_statevector

    n = circuit.num_qubits
    dim = 2 ** n
    # (2,)*n ket axes + one flat column axis; column j is U |j>.
    unitary = np.eye(dim, dtype=complex).reshape((2,) * n + (dim,))
    for inst in circuit:
        if inst.name in ("barrier", "delay"):
            continue
        if inst.gate.is_directive:
            raise ValueError(
                f"cannot take the unitary of a circuit with {inst.name!r}")
        unitary = apply_to_statevector(unitary, inst.gate.matrix(),
                                       inst.qubits, n)
    return unitary.reshape(dim, dim)

"""Noisy density-matrix simulation.

Evolves the full density matrix, applying each gate's unitary followed by
the noise channel the :class:`~repro.sim.noise_model.NoiseModel` assigns to
it.  Suitable for the partition sizes that occur in parallel circuit
execution (<= ~8 qubits); the executor never simulates a whole 65-qubit
chip at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from .channels import KrausChannel
from .noise_model import NoiseModel
from .readout import apply_readout_confusion, sample_counts
from .unitary import embed_gate

__all__ = ["SimulationResult", "simulate_density_matrix", "run_circuit"]


@lru_cache(maxsize=4096)
def _embedded_unitary(name: str, params: Tuple[float, ...],
                      qubits: Tuple[int, ...], num_qubits: int) -> np.ndarray:
    """Cache of full-space gate unitaries keyed by gate identity."""
    g = Gate(name, len(qubits), params)
    return embed_gate(g.matrix(), qubits, num_qubits)


@dataclass
class SimulationResult:
    """Output of a noisy simulation run.

    ``probabilities`` maps classical-bit strings (clbit 0 leftmost) to
    probabilities *after readout error*; ``counts`` are sampled from it.
    """

    probabilities: Dict[str, float]
    counts: Dict[str, int] = field(default_factory=dict)
    shots: int = 0
    density_matrix: Optional[np.ndarray] = None

    def expectation_z(self, clbits: Sequence[int]) -> float:
        """<Z...Z> over the given clbits, from the probabilities."""
        total = 0.0
        for key, p in self.probabilities.items():
            parity = sum(int(key[c]) for c in clbits) % 2
            total += p * (1.0 if parity == 0 else -1.0)
        return total


def _apply_channel(rho: np.ndarray, channel: KrausChannel,
                   qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    out = np.zeros_like(rho)
    for full in channel.embedded(tuple(qubits), num_qubits):
        out += full @ rho @ full.conj().T
    return out


def _apply_reset(rho: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
    zero = np.array([[1, 0], [0, 0]], dtype=complex)
    lower = np.array([[0, 1], [0, 0]], dtype=complex)
    k0 = embed_gate(zero, [qubit], num_qubits)
    k1 = embed_gate(lower, [qubit], num_qubits)
    return k0 @ rho @ k0.conj().T + k1 @ rho @ k1.conj().T


def simulate_density_matrix(
    circuit: QuantumCircuit,
    noise_model: Optional[NoiseModel] = None,
    error_scales: Optional[Dict[int, float]] = None,
) -> np.ndarray:
    """Return the pre-measurement density matrix of *circuit*.

    *error_scales* maps instruction indices to multiplicative error-rate
    boosts (the crosstalk hook); unlisted instructions use scale 1.
    """
    n = circuit.num_qubits
    dim = 2 ** n
    rho = np.zeros((dim, dim), dtype=complex)
    rho[0, 0] = 1.0
    error_scales = error_scales or {}
    for idx, inst in enumerate(circuit):
        if inst.name in ("measure", "barrier"):
            continue
        if inst.name == "reset":
            rho = _apply_reset(rho, inst.qubits[0], n)
            continue
        if inst.name != "delay":
            unitary = _embedded_unitary(inst.name, inst.params,
                                        inst.qubits, n)
            rho = unitary @ rho @ unitary.conj().T
        elif noise_model is not None:
            # Idling under a residual detuning accumulates a coherent Z
            # rotation — the error dynamical decoupling echoes away.
            delta = noise_model.detuning_of(inst.qubits[0])
            if delta != 0.0:
                angle = delta * float(inst.params[0])
                unitary = _embedded_unitary("rz", (angle,), inst.qubits, n)
                rho = unitary @ rho @ unitary.conj().T
        if noise_model is not None:
            channel = noise_model.channel_for(
                inst, error_scale=error_scales.get(idx, 1.0))
            if channel is not None:
                rho = _apply_channel(rho, channel, inst.qubits, n)
    return rho


def _measured_probabilities(
    circuit: QuantumCircuit,
    rho: np.ndarray,
    noise_model: Optional[NoiseModel],
) -> Dict[str, float]:
    """Project the density matrix onto the measured clbits."""
    n = circuit.num_qubits
    diag = np.real(np.diag(rho)).clip(min=0.0)
    diag = diag / diag.sum() if diag.sum() > 0 else diag
    measure_map = [
        (inst.qubits[0], inst.clbits[0])
        for inst in circuit if inst.name == "measure"
    ]
    if not measure_map:
        measure_map = [(q, q) for q in range(n)]
    clbits = sorted({c for _, c in measure_map})
    qubit_for_clbit = {c: q for q, c in measure_map}
    measured_qubits = [qubit_for_clbit[c] for c in clbits]

    # Marginalize the diagonal onto the measured qubits.
    probs: Dict[str, float] = {}
    for idx, p in enumerate(diag):
        if p <= 0.0:
            continue
        key = "".join(str((idx >> (n - 1 - q)) & 1) for q in measured_qubits)
        probs[key] = probs.get(key, 0.0) + float(p)

    if noise_model is not None:
        confusions = [noise_model.confusion_matrix(q)
                      for q in measured_qubits]
        probs = apply_readout_confusion(probs, confusions)
    return probs


def run_circuit(
    circuit: QuantumCircuit,
    noise_model: Optional[NoiseModel] = None,
    shots: int = 0,
    seed: Optional[int] = None,
    error_scales: Optional[Dict[int, float]] = None,
    keep_density_matrix: bool = False,
) -> SimulationResult:
    """Simulate *circuit* end-to-end: evolution, readout error, sampling."""
    rho = simulate_density_matrix(circuit, noise_model, error_scales)
    probs = _measured_probabilities(circuit, rho, noise_model)
    counts: Dict[str, int] = {}
    if shots > 0:
        counts = sample_counts(probs, shots, seed=seed)
    return SimulationResult(
        probabilities=probs,
        counts=counts,
        shots=shots,
        density_matrix=rho if keep_density_matrix else None,
    )

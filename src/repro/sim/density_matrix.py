"""Noisy density-matrix simulation.

Evolves the full density matrix, applying each gate's unitary followed by
the noise channel the :class:`~repro.sim.noise_model.NoiseModel` assigns to
it.  Suitable for the partition sizes that occur in parallel circuit
execution (<= ~8 qubits); the executor never simulates a whole 65-qubit
chip at once.

Two backends share one evolution loop:

- ``backend="tensor"`` (default) keeps rho as a ``(2,)*2n`` tensor and
  applies every k-qubit unitary and Kraus operator through the local
  contraction kernels in :mod:`repro.sim.kernels` — O(2^n * 4^k) per
  operator, never materializing a full-space embedding.
- ``backend="dense"`` is the original full-space reference: each operator
  is embedded into a 2^n x 2^n matrix and applied by dense matmuls
  (O(4^n) per operator).  Kept for verification; the randomized
  equivalence suite checks the two agree to 1e-10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.controlflow import has_control_flow
from ..circuits.gates import Gate
from .channels import KrausChannel
from .kernels import (
    RESET_KRAUS,
    apply_kraus,
    apply_unitary,
    density_tensor_to_matrix,
    initial_density_tensor,
)
from .noise_model import NoiseModel
from .readout import SeedLike, apply_readout_confusion, sample_counts
from .unitary import embed_gate

__all__ = ["SimulationResult", "simulate_density_matrix", "run_circuit"]


@lru_cache(maxsize=4096)
def _local_unitary(name: str, params: Tuple[float, ...],
                   num_gate_qubits: int) -> np.ndarray:
    """Cache of *local* k-qubit gate matrices keyed by gate identity.

    Shared process-wide, so repeated programs in a batched sweep reuse the
    same matrices.
    """
    return Gate(name, num_gate_qubits, params).matrix()


@lru_cache(maxsize=4096)
def _embedded_unitary(name: str, params: Tuple[float, ...],
                      qubits: Tuple[int, ...], num_qubits: int) -> np.ndarray:
    """Cache of full-space gate unitaries (dense reference backend only)."""
    g = Gate(name, len(qubits), params)
    return embed_gate(g.matrix(), qubits, num_qubits)


@dataclass
class SimulationResult:
    """Output of a noisy simulation run.

    ``probabilities`` maps classical-bit strings to probabilities *after
    readout error*; ``counts`` are sampled from it.  String position *i*
    holds the clbit ``measured_clbits[i]`` (the measured clbits in sorted
    order — the lowest measured clbit is leftmost).
    """

    probabilities: Dict[str, float]
    counts: Dict[str, int] = field(default_factory=dict)
    shots: int = 0
    density_matrix: Optional[np.ndarray] = None
    measured_clbits: Tuple[int, ...] = ()

    def _positions(self, clbits: Sequence[int]) -> Sequence[int]:
        """Map clbit numbers to their key-string positions."""
        if not self.measured_clbits:
            # Legacy results (no clbit record): positions == clbit numbers.
            return list(clbits)
        index = {c: i for i, c in enumerate(self.measured_clbits)}
        try:
            return [index[c] for c in clbits]
        except KeyError as exc:
            raise ValueError(
                f"clbit {exc.args[0]} was not measured "
                f"(measured clbits: {self.measured_clbits})") from None

    def expectation_z(self, clbits: Sequence[int]) -> float:
        """<Z...Z> over the given clbits, from the probabilities.

        Clbit numbers are mapped to key positions via ``measured_clbits``;
        non-contiguous measured clbits (e.g. ``{0, 2}``) are handled
        correctly.
        """
        positions = self._positions(clbits)
        total = 0.0
        for key, p in self.probabilities.items():
            parity = sum(int(key[i]) for i in positions) % 2
            total += p * (1.0 if parity == 0 else -1.0)
        return total


class _TensorOps:
    """Contraction-kernel backend: rho is a ``(2,)*2n`` tensor."""

    def __init__(self, num_qubits: int) -> None:
        self.n = num_qubits

    def initial(self) -> np.ndarray:
        return initial_density_tensor(self.n)

    def unitary(self, rho: np.ndarray, name: str, params: Tuple[float, ...],
                qubits: Tuple[int, ...]) -> np.ndarray:
        mat = _local_unitary(name, params, len(qubits))
        return apply_unitary(rho, mat, qubits, self.n)

    def channel(self, rho: np.ndarray, channel: KrausChannel,
                qubits: Tuple[int, ...]) -> np.ndarray:
        return channel.apply_local(rho, qubits, self.n)

    def reset(self, rho: np.ndarray, qubit: int) -> np.ndarray:
        return apply_kraus(rho, RESET_KRAUS, (qubit,), self.n)

    def finalize(self, rho: np.ndarray) -> np.ndarray:
        return density_tensor_to_matrix(rho, self.n)


class _DenseOps:
    """Full-space reference backend: rho is a ``2^n x 2^n`` matrix."""

    def __init__(self, num_qubits: int) -> None:
        self.n = num_qubits

    def initial(self) -> np.ndarray:
        dim = 2 ** self.n
        rho = np.zeros((dim, dim), dtype=complex)
        rho[0, 0] = 1.0
        return rho

    def unitary(self, rho: np.ndarray, name: str, params: Tuple[float, ...],
                qubits: Tuple[int, ...]) -> np.ndarray:
        full = _embedded_unitary(name, params, qubits, self.n)
        return full @ rho @ full.conj().T

    def channel(self, rho: np.ndarray, channel: KrausChannel,
                qubits: Tuple[int, ...]) -> np.ndarray:
        out = np.zeros_like(rho)
        for full in channel.embedded(tuple(qubits), self.n):
            out += full @ rho @ full.conj().T
        return out

    def reset(self, rho: np.ndarray, qubit: int) -> np.ndarray:
        out = np.zeros_like(rho)
        for op in RESET_KRAUS:
            full = embed_gate(op, [qubit], self.n)
            out += full @ rho @ full.conj().T
        return out

    def finalize(self, rho: np.ndarray) -> np.ndarray:
        return rho


def _backend_ops(backend: str, num_qubits: int):
    if backend == "tensor":
        return _TensorOps(num_qubits)
    if backend == "dense":
        return _DenseOps(num_qubits)
    raise ValueError(f"unknown simulation backend {backend!r}")


def simulate_density_matrix(
    circuit: QuantumCircuit,
    noise_model: Optional[NoiseModel] = None,
    error_scales: Optional[Dict[int, float]] = None,
    backend: str = "tensor",
) -> np.ndarray:
    """Return the pre-measurement density matrix of *circuit*.

    *error_scales* maps instruction indices to multiplicative error-rate
    boosts (the crosstalk hook); unlisted instructions use scale 1.
    *backend* selects the contraction kernels (``"tensor"``, default) or
    the dense full-space reference (``"dense"``).
    """
    if has_control_flow(circuit):
        from ..circuits.circuit import CircuitError

        raise CircuitError(
            "simulate_density_matrix cannot evolve control-flow ops (the "
            "pre-measurement state is branch-dependent); use "
            "repro.sim.feedforward.run_dynamic, or statically unroll with "
            "repro.transpiler.expand_control_flow first")
    ops = _backend_ops(backend, circuit.num_qubits)
    rho = ops.initial()
    error_scales = error_scales or {}
    for idx, inst in enumerate(circuit):
        if inst.name in ("measure", "barrier"):
            continue
        if inst.name == "reset":
            rho = ops.reset(rho, inst.qubits[0])
            continue
        if inst.name != "delay":
            rho = ops.unitary(rho, inst.name, inst.params, inst.qubits)
        elif noise_model is not None:
            # Idling under a residual detuning accumulates a coherent Z
            # rotation — the error dynamical decoupling echoes away.
            delta = noise_model.detuning_of(inst.qubits[0])
            if delta != 0.0:
                angle = delta * float(inst.params[0])
                rho = ops.unitary(rho, "rz", (angle,), inst.qubits)
        if noise_model is not None:
            channel = noise_model.channel_for(
                inst, error_scale=error_scales.get(idx, 1.0))
            if channel is not None:
                # The channel may act on fewer qubits than the gate (3q+
                # gates get an approximate 2q channel on the first pair).
                rho = ops.channel(rho, channel,
                                  inst.qubits[:channel.num_qubits])
    return ops.finalize(rho)


def _measured_probabilities(
    circuit: QuantumCircuit,
    rho: np.ndarray,
    noise_model: Optional[NoiseModel],
) -> Tuple[Dict[str, float], Tuple[int, ...]]:
    """Project the density matrix onto the measured clbits.

    Returns ``(probabilities, measured_clbits)`` where the key-string
    position *i* corresponds to ``measured_clbits[i]``.
    """
    n = circuit.num_qubits
    diag = np.real(np.diag(rho)).clip(min=0.0)
    diag = diag / diag.sum() if diag.sum() > 0 else diag
    measure_map = [
        (inst.qubits[0], inst.clbits[0])
        for inst in circuit if inst.name == "measure"
    ]
    if not measure_map:
        measure_map = [(q, q) for q in range(n)]
    clbits = tuple(sorted({c for _, c in measure_map}))
    qubit_for_clbit = {c: q for q, c in measure_map}
    measured_qubits = [qubit_for_clbit[c] for c in clbits]

    # Marginalize the diagonal onto the measured qubits.
    probs: Dict[str, float] = {}
    for idx, p in enumerate(diag):
        if p <= 0.0:
            continue
        key = "".join(str((idx >> (n - 1 - q)) & 1) for q in measured_qubits)
        probs[key] = probs.get(key, 0.0) + float(p)

    if noise_model is not None:
        confusions = [noise_model.confusion_matrix(q)
                      for q in measured_qubits]
        probs = apply_readout_confusion(probs, confusions)
    return probs, clbits


def run_circuit(
    circuit: QuantumCircuit,
    noise_model: Optional[NoiseModel] = None,
    shots: int = 0,
    seed: SeedLike = None,
    error_scales: Optional[Dict[int, float]] = None,
    keep_density_matrix: bool = False,
    backend: str = "tensor",
) -> SimulationResult:
    """Simulate *circuit* end-to-end: evolution, readout error, sampling.

    *seed* may be an int or a :class:`numpy.random.SeedSequence` (the
    batched executor spawns independent child sequences per program).

    Control-flow circuits and circuits with genuine mid-circuit
    measurements are routed to the feed-forward engine
    (:func:`repro.sim.feedforward.run_dynamic`), which delegates right
    back here once static expansion flattens them — so resolvable
    dynamic circuits cost one extra pass and produce bit-identical
    samples to their unrolled form.
    """
    if has_control_flow(circuit) or circuit.has_midcircuit_measurement():
        from .feedforward import run_dynamic

        return run_dynamic(circuit, noise_model=noise_model, shots=shots,
                           seed=seed, error_scales=error_scales)
    rho = simulate_density_matrix(circuit, noise_model, error_scales,
                                  backend=backend)
    probs, measured_clbits = _measured_probabilities(circuit, rho,
                                                     noise_model)
    counts: Dict[str, int] = {}
    if shots > 0:
        counts = sample_counts(probs, shots, seed=seed)
    return SimulationResult(
        probabilities=probs,
        counts=counts,
        shots=shots,
        density_matrix=rho if keep_density_matrix else None,
        measured_clbits=measured_clbits,
    )

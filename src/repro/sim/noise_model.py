"""Noise model: maps instructions to Kraus channels.

A :class:`NoiseModel` carries per-qubit 1q gate error, per-edge 2q (CX)
error, per-qubit readout confusion, and optional T1/T2 coherence data.  The
density-matrix simulator asks it for the channel to apply after each
instruction; the parallel-execution layer passes per-instruction *error
scale factors* to inject crosstalk boosts computed from the joint schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..circuits.circuit import Instruction
from .channels import (
    KrausChannel,
    depolarizing_channel,
    error_rate_to_depolarizing_param,
    thermal_relaxation_channel,
)

__all__ = ["NoiseModel"]


def _edge(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)


@dataclass
class NoiseModel:
    """Calibration-driven noise description.

    Attributes
    ----------
    oneq_error:
        Average 1-qubit gate error per qubit.
    twoq_error:
        Average CX error per undirected edge ``(low, high)``.
    readout_error:
        Per qubit ``(p_read1_given0, p_read0_given1)``.
    t1, t2:
        Coherence times (in the same unit as gate durations; we use ns).
    gate_duration:
        Durations per gate name (ns); used for idle/thermal noise.
    """

    oneq_error: Dict[int, float] = field(default_factory=dict)
    twoq_error: Dict[Tuple[int, int], float] = field(default_factory=dict)
    readout_error: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    t1: Dict[int, float] = field(default_factory=dict)
    t2: Dict[int, float] = field(default_factory=dict)
    detuning: Dict[int, float] = field(default_factory=dict)
    gate_duration: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def oneq_error_of(self, qubit: int) -> float:
        """1q gate error of *qubit* (0 when unknown)."""
        return self.oneq_error.get(qubit, 0.0)

    def twoq_error_of(self, a: int, b: int) -> float:
        """CX error of edge ``(a, b)`` (0 when unknown)."""
        return self.twoq_error.get(_edge(a, b), 0.0)

    def readout_error_of(self, qubit: int) -> float:
        """Symmetrized readout error of *qubit*."""
        p01, p10 = self.readout_error.get(qubit, (0.0, 0.0))
        return 0.5 * (p01 + p10)

    def detuning_of(self, qubit: int) -> float:
        """Residual frequency detuning of *qubit* (rad/ns; 0 if unknown)."""
        return self.detuning.get(qubit, 0.0)

    def confusion_matrix(self, qubit: int) -> np.ndarray:
        """2x2 column-stochastic confusion matrix ``M[read, true]``."""
        p01, p10 = self.readout_error.get(qubit, (0.0, 0.0))
        return np.array([[1.0 - p01, p10], [p01, 1.0 - p10]])

    # ------------------------------------------------------------------
    # channel construction
    # ------------------------------------------------------------------
    def channel_for(self, inst: Instruction,
                    error_scale: float = 1.0) -> Optional[KrausChannel]:
        """The noise channel to apply after *inst* (None = noiseless).

        *error_scale* multiplies the calibration error rate before the
        conversion to a depolarizing parameter; the crosstalk layer uses it
        to boost simultaneously-driven CX pairs.
        """
        name = inst.name
        if name in ("barrier", "measure", "reset"):
            return None
        if name == "delay":
            return self._delay_channel(inst.qubits[0], inst.params[0])
        if len(inst.qubits) == 1:
            err = self.oneq_error_of(inst.qubits[0]) * error_scale
            if err <= 0.0:
                return None
            p = error_rate_to_depolarizing_param(min(err, 0.75), 1)
            return depolarizing_channel(p, 1)
        if len(inst.qubits) == 2:
            err = self.twoq_error_of(*inst.qubits) * error_scale
            if err <= 0.0:
                return None
            p = error_rate_to_depolarizing_param(min(err, 0.9375), 2)
            return depolarizing_channel(p, 2)
        # 3q+ gates should have been decomposed; approximate with a strong
        # channel on the first two qubits to avoid silently ignoring noise.
        err = max(
            self.twoq_error_of(inst.qubits[i], inst.qubits[j])
            for i in range(len(inst.qubits))
            for j in range(i + 1, len(inst.qubits))
        ) * error_scale
        if err <= 0.0:
            return None
        p = error_rate_to_depolarizing_param(min(err, 0.9375), 2)
        return depolarizing_channel(p, 2)

    def _delay_channel(self, qubit: int,
                       duration: float) -> Optional[KrausChannel]:
        t1 = self.t1.get(qubit, 0.0)
        t2 = self.t2.get(qubit, 0.0)
        if t1 <= 0.0 or duration <= 0.0:
            return None
        t2 = min(t2 if t2 > 0 else 2 * t1, 2 * t1)
        return thermal_relaxation_channel(t1, t2, duration)

    # ------------------------------------------------------------------
    # restriction / remapping (per-partition simulation)
    # ------------------------------------------------------------------
    def restricted(self, physical_qubits: Tuple[int, ...]) -> "NoiseModel":
        """Project onto a partition: local index i = physical_qubits[i].

        Used by the parallel executor: each program is simulated on its own
        partition with the physical calibration data pulled in.
        """
        index_of = {p: i for i, p in enumerate(physical_qubits)}
        sub = NoiseModel(gate_duration=dict(self.gate_duration))
        for p, i in index_of.items():
            if p in self.oneq_error:
                sub.oneq_error[i] = self.oneq_error[p]
            if p in self.readout_error:
                sub.readout_error[i] = self.readout_error[p]
            if p in self.t1:
                sub.t1[i] = self.t1[p]
            if p in self.t2:
                sub.t2[i] = self.t2[p]
            if p in self.detuning:
                sub.detuning[i] = self.detuning[p]
        for (a, b), err in self.twoq_error.items():
            if a in index_of and b in index_of:
                sub.twoq_error[_edge(index_of[a], index_of[b])] = err
        return sub

"""State-comparison utilities: fidelity, trace distance, purity,
Hellinger distance between distributions."""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np
import scipy.linalg

__all__ = [
    "state_fidelity",
    "trace_distance",
    "purity",
    "hellinger_fidelity",
    "counts_fidelity",
]


def _as_density(state: np.ndarray) -> np.ndarray:
    state = np.asarray(state, dtype=complex)
    if state.ndim == 1:
        return np.outer(state, state.conj())
    if state.ndim == 2 and state.shape[0] == state.shape[1]:
        return state
    raise ValueError("expected a statevector or a square density matrix")


def state_fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """Uhlmann fidelity F(a, b) in [0, 1] (1 iff identical states).

    Accepts statevectors or density matrices in any combination; pure
    inputs use the cheap overlap formulas.
    """
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.ndim == 1 and b.ndim == 1:
        if a.shape != b.shape:
            raise ValueError("dimension mismatch")
        return float(min(abs(np.vdot(a, b)) ** 2, 1.0))
    if a.ndim == 1 or b.ndim == 1:
        psi = a if a.ndim == 1 else b
        rho = _as_density(b if a.ndim == 1 else a)
        if rho.shape[0] != psi.size:
            raise ValueError("dimension mismatch")
        return float(min(np.real(psi.conj() @ rho @ psi), 1.0))
    rho = _as_density(a)
    sigma = _as_density(b)
    if rho.shape != sigma.shape:
        raise ValueError("dimension mismatch")
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # sqrtm warns on rank deficiency
        sqrt_rho = scipy.linalg.sqrtm(rho)
        inner = scipy.linalg.sqrtm(sqrt_rho @ sigma @ sqrt_rho)
    value = float(np.real(np.trace(inner)) ** 2)
    return min(max(value, 0.0), 1.0)


def trace_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Trace distance T(a, b) = 0.5 ||a - b||_1 in [0, 1]."""
    rho = _as_density(a)
    sigma = _as_density(b)
    if rho.shape != sigma.shape:
        raise ValueError("dimension mismatch")
    eigs = np.linalg.eigvalsh(rho - sigma)
    return float(0.5 * np.sum(np.abs(eigs)))


def purity(state: np.ndarray) -> float:
    """Tr(rho^2): 1 for pure states, 1/d for the maximally mixed state."""
    rho = _as_density(state)
    return float(np.real(np.trace(rho @ rho)))


def hellinger_fidelity(p: Mapping[str, float],
                       q: Mapping[str, float]) -> float:
    """Classical fidelity ``(sum sqrt(p q))^2`` between distributions.

    The standard proxy for output-state fidelity from measurement counts.
    """
    keys = set(p) | set(q)
    total_p = sum(p.values())
    total_q = sum(q.values())
    if total_p <= 0 or total_q <= 0:
        raise ValueError("empty distribution")
    bc = sum(
        math.sqrt(max(p.get(k, 0.0), 0.0) / total_p
                  * max(q.get(k, 0.0), 0.0) / total_q)
        for k in keys
    )
    return min(max(bc * bc, 0.0), 1.0)


def counts_fidelity(counts: Mapping[str, int],
                    ideal: Mapping[str, float]) -> float:
    """Hellinger fidelity between raw counts and an ideal distribution."""
    return hellinger_fidelity(dict(counts), dict(ideal))

"""Parallel-job execution on a simulated device.

This is the "hardware access" layer of the reproduction.  A *job* is a set
of programs, each bound to a disjoint partition of physical qubits.  The
executor:

1. aligns the programs' gate layers in time (ALAP by default — programs
   finish together, as in the paper and in the Qiskit scheduler);
2. looks up, for every CX layer, which other partitions drive CXs in the
   same layer, and boosts the CX error by the device's *ground-truth*
   crosstalk factor for one-hop link pairs;
3. simulates each program on its own partition with the device
   calibration noise (per-partition density matrix — the physics couples
   only through the error rates, which is exactly the crosstalk model).

Under ``scheduling="asap"`` shorter programs idle *after* finishing and
accumulate T1/T2 decoherence — the effect ALAP exists to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.controlflow import ControlFlowOp, has_control_flow
from ..hardware.devices import Device
from .density_matrix import SimulationResult, run_circuit
from .readout import SeedLike

__all__ = ["Program", "run_parallel", "run_single", "program_duration",
           "prepare_parallel", "spawn_seeds"]


@dataclass(frozen=True)
class Program:
    """A circuit bound to a partition of physical qubits.

    The circuit is expressed over *local* qubit indices ``0..k-1``;
    ``partition[i]`` is the physical qubit local index *i* runs on.
    """

    circuit: QuantumCircuit
    partition: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.circuit.num_qubits > len(self.partition):
            raise ValueError(
                f"circuit needs {self.circuit.num_qubits} qubits but the "
                f"partition has {len(self.partition)}")
        if len(set(self.partition)) != len(self.partition):
            raise ValueError("partition has duplicate physical qubits")

    def physical_edge(self, a: int, b: int) -> Tuple[int, int]:
        """Map a local qubit pair to the physical link it occupies."""
        pa, pb = self.partition[a], self.partition[b]
        return (pa, pb) if pa <= pb else (pb, pa)


def program_duration(circuit: QuantumCircuit,
                     gate_duration: Dict[str, float]) -> float:
    """Wall-clock makespan of *circuit* under ASAP scheduling.

    Computed from the same per-instruction timing as
    :func:`timed_intervals`, so ``delay`` instructions are priced at their
    actual ``params[0]`` duration (not the 35 ns fallback) and barriers
    take no time — ALAP/ASAP duration estimates agree with the schedule
    the crosstalk-overlap computation uses.
    """
    intervals = timed_intervals(circuit, gate_duration, mode="asap")
    return max((end for _, end in intervals), default=0.0)


def timed_intervals(
    circuit: QuantumCircuit,
    gate_duration: Dict[str, float],
    mode: str = "alap",
) -> List[Tuple[float, float]]:
    """Per-instruction ``(start, end)`` times in nanoseconds.

    Under ``mode="alap"`` times count **backwards from the common finish
    time** (0 = end of the job), which is the natural frame for parallel
    programs that finish together; under ``"asap"`` they count forward
    from the start.
    """

    def asap_times(instructions) -> List[Tuple[float, float]]:
        avail: Dict[int, float] = {}
        cavail: Dict[int, float] = {}
        out: List[Tuple[float, float]] = []
        for inst in instructions:
            if isinstance(inst.gate, ControlFlowOp):
                # A control-flow block occupies its whole qubit/clbit
                # footprint for its *worst-case* duration: the deepest
                # branch for if/else, iterations x body makespan for
                # loops.  That is the bound the scheduler must reserve.
                dur = inst.gate.duration_bound(
                    lambda body: _body_makespan(body, gate_duration))
            elif inst.name == "delay":
                dur = float(inst.params[0])
            else:
                dur = gate_duration.get(inst.name, 35.0)
            if inst.name == "barrier":
                dur = 0.0
            start = max(
                [avail.get(q, 0.0) for q in inst.qubits]
                + [cavail.get(c, 0.0) for c in inst.clbits]
                + [0.0]
            )
            end = start + dur
            for q in inst.qubits:
                avail[q] = end
            for c in inst.clbits:
                cavail[c] = end
            out.append((start, end))
        return out

    if mode == "asap":
        return asap_times(circuit.instructions)
    if mode == "alap":
        rev = asap_times(list(reversed(circuit.instructions)))
        return list(reversed(rev))
    raise ValueError(f"unknown scheduling mode {mode!r}")


def _body_makespan(body: QuantumCircuit,
                   gate_duration: Dict[str, float]) -> float:
    """ASAP makespan of a control-flow body (recursive via intervals)."""
    intervals = timed_intervals(body, gate_duration, mode="asap")
    return max((end for _, end in intervals), default=0.0)


def _crosstalk_scales(
    programs: Sequence[Program],
    device: Device,
    scheduling: str,
) -> List[Dict[int, float]]:
    """Per-program {instruction index: error scale} from the joint schedule.

    CX gates of different programs that *overlap in time* receive a
    multiplicative error boost given by the device's ground-truth
    crosstalk factor for their link pair, weighted by the fraction of the
    gate duration during which the aggressor is active.
    """
    durations = device.calibration.gate_duration
    # Collect (program, inst index, interval, physical edge) for every CX.
    active: List[Tuple[int, int, float, float, Tuple[int, int]]] = []
    for p_idx, prog in enumerate(programs):
        intervals = timed_intervals(prog.circuit, durations,
                                    mode=scheduling)
        for i_idx, inst in enumerate(prog.circuit):
            if (inst.gate.is_directive or len(inst.qubits) != 2
                    or isinstance(inst.gate, ControlFlowOp)):
                # Control-flow blocks are neither crosstalk aggressors
                # nor victims: their internal CX timing is shot-dependent
                # so the joint-schedule overlap model cannot place them.
                continue
            edge = prog.physical_edge(*inst.qubits)
            start, end = intervals[i_idx]
            active.append((p_idx, i_idx, start, end, edge))

    scales: List[Dict[int, float]] = [dict() for _ in programs]
    for p_idx, i_idx, start, end, edge in active:
        duration = max(end - start, 1e-9)
        factor = 1.0
        for q_idx, _, s2, e2, other in active:
            if q_idx == p_idx:
                continue
            overlap = min(end, e2) - max(start, s2)
            if overlap <= 0.0:
                continue
            pair_factor = device.crosstalk.factor(edge, other)
            if pair_factor <= 1.0:
                continue
            weight = min(overlap / duration, 1.0)
            factor *= 1.0 + (pair_factor - 1.0) * weight
        if factor > 1.0:
            scales[p_idx][i_idx] = factor
    return scales


def _validate_program_edges(instructions, prog: Program,
                            device: Device) -> None:
    """Check every 2q gate — control-flow bodies included — is on a link."""
    for inst in instructions:
        if isinstance(inst.gate, ControlFlowOp):
            for body in inst.gate.bodies:
                _validate_program_edges(body.instructions, prog, device)
            continue
        if inst.gate.is_directive or len(inst.qubits) != 2:
            continue
        edge = prog.physical_edge(*inst.qubits)
        if not device.coupling.is_edge(*edge):
            raise ValueError(
                f"2q gate on {edge} but the device has no such link")


def _with_trailing_idle(circuit: QuantumCircuit, idle_ns: float
                        ) -> QuantumCircuit:
    """Insert a pre-measurement delay on every qubit (ASAP penalty).

    Dynamic and mid-circuit-measurement circuits get the idle appended
    at the very end instead: moving a mid-circuit measure past the
    control flow (or the later gates) it feeds would change which
    branches run / what the bit reads.
    """
    if idle_ns <= 0:
        return circuit
    if has_control_flow(circuit) or circuit.has_midcircuit_measurement():
        out = circuit.copy()
        for q in range(circuit.num_qubits):
            out.delay(q, idle_ns)
        return out
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                         circuit.name)
    measures = [inst for inst in circuit if inst.name == "measure"]
    for inst in circuit:
        if inst.name == "measure":
            continue
        out._instructions.append(inst)  # noqa: SLF001
    for q in range(circuit.num_qubits):
        out.delay(q, idle_ns)
    for inst in measures:
        out._instructions.append(inst)  # noqa: SLF001
    return out


def spawn_seeds(seed: SeedLike,
                count: int) -> List[Optional[np.random.SeedSequence]]:
    """Derive *count* independent RNG streams from one base seed.

    Accepts an int or an existing :class:`numpy.random.SeedSequence` and
    spawns statistically-independent children, one per program — shot
    sampling of co-scheduled programs must not share a stream, or their
    multinomial draws correlate.  ``None`` stays ``None`` (fresh OS
    entropy per program).

    A caller-supplied SeedSequence is never mutated (``spawn`` advances
    its child counter): children are derived from a private namespace
    under it, so the same object yields the same streams on every call
    and stays usable for the caller's own spawning.
    """
    if seed is None:
        return [None] * count
    if isinstance(seed, np.random.SeedSequence):
        base = np.random.SeedSequence(
            entropy=seed.entropy,
            spawn_key=tuple(seed.spawn_key) + (0x9E3779B9,))
    else:
        base = np.random.SeedSequence(seed)
    return list(base.spawn(count))


def prepare_parallel(
    programs: Sequence[Program],
    device: Device,
    scheduling: str = "alap",
    include_crosstalk: bool = True,
    noisy: bool = True,
) -> Tuple[List[Program], List[Dict[int, float]]]:
    """The joint (cross-program) half of :func:`run_parallel`.

    Validates the partitions, applies the ASAP trailing-idle padding,
    and computes the per-program crosstalk error scales from the joint
    schedule.  Returns ``(effective_programs, error_scales)`` — after
    this point each program's simulation depends only on its own
    ``(circuit, partition, seed, scales)`` tuple, which is what lets
    :class:`~repro.core.execution_service.ExecutionService` shard the
    per-program work across processes without changing a single bit of
    the output.
    """
    seen: set = set()
    for prog in programs:
        overlap = seen & set(prog.partition)
        if overlap:
            raise ValueError(f"partitions overlap on qubits {sorted(overlap)}")
        seen.update(prog.partition)
        _validate_program_edges(prog.circuit.instructions, prog, device)

    durations = device.calibration.gate_duration
    # Under ASAP, pad shorter programs with trailing idle (decoherence)
    # *before* computing crosstalk scales so instruction indices agree.
    effective = list(programs)
    if scheduling == "asap" and noisy and len(programs) > 1:
        total_duration = max(
            program_duration(p.circuit, durations) for p in programs)
        effective = []
        for prog in programs:
            idle = total_duration - program_duration(prog.circuit, durations)
            effective.append(
                Program(_with_trailing_idle(prog.circuit, idle),
                        prog.partition))

    if include_crosstalk and noisy and len(programs) > 1:
        scales = _crosstalk_scales(effective, device, scheduling)
    else:
        scales = [dict() for _ in effective]
    return effective, scales


def run_parallel(
    programs: Sequence[Program],
    device: Device,
    shots: int = 4096,
    seed: SeedLike = None,
    scheduling: str = "alap",
    include_crosstalk: bool = True,
    noisy: bool = True,
) -> List[SimulationResult]:
    """Execute *programs* simultaneously on *device* and return results.

    Partitions must be pairwise disjoint.  With ``noisy=False`` this is an
    ideal run (useful for reference distributions).  The joint crosstalk
    schedule is computed once for the whole job; *seed* (int or
    :class:`numpy.random.SeedSequence`) is spawned into independent
    per-program child streams so co-scheduled programs sample
    independently.
    """
    effective, scales = prepare_parallel(
        programs, device, scheduling=scheduling,
        include_crosstalk=include_crosstalk, noisy=noisy)

    full_noise = device.noise_model() if noisy else None

    seeds = spawn_seeds(seed, len(effective))
    results: List[SimulationResult] = []
    for k, prog in enumerate(effective):
        noise = None
        if noisy:
            noise = full_noise.restricted(prog.partition)
        results.append(
            run_circuit(prog.circuit, noise_model=noise, shots=shots,
                        seed=seeds[k], error_scales=scales[k]))
    return results


def run_single(
    circuit: QuantumCircuit,
    partition: Tuple[int, ...],
    device: Device,
    shots: int = 4096,
    seed: SeedLike = None,
    noisy: bool = True,
) -> SimulationResult:
    """Execute one program alone on its partition (no crosstalk)."""
    return run_parallel(
        [Program(circuit, partition)], device, shots=shots, seed=seed,
        noisy=noisy,
    )[0]

"""Local tensor-contraction kernels for state and density-matrix updates.

The simulators store an n-qubit pure state as a ``(2,)*n`` tensor and a
density matrix as a ``(2,)*2n`` tensor (the first n axes are ket indices,
the last n are bra indices, both in big-endian qubit order).  A k-qubit
operator is applied by contracting its ``2^k x 2^k`` matrix against the
target axes only, which costs ``O(2^n * 4^k)`` per contraction instead of
the ``O(4^n)`` of a full-space matrix product — the difference between
simulating an 8-qubit partition in milliseconds and in seconds.

Nothing here ever materializes a full-space embedding; see
:func:`repro.sim.unitary.embed_gate` for the dense construction, which the
package keeps only as a reference/verification path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "initial_state_tensor",
    "initial_density_tensor",
    "apply_to_statevector",
    "apply_unitary",
    "apply_kraus",
    "superop_tensor",
    "apply_superop",
    "density_tensor_to_matrix",
    "RESET_KRAUS",
]

#: Kraus operators of the reset-to-|0> channel: |0><0| and |0><1|.
RESET_KRAUS = (
    np.array([[1, 0], [0, 0]], dtype=complex),
    np.array([[0, 1], [0, 0]], dtype=complex),
)


def initial_state_tensor(num_qubits: int) -> np.ndarray:
    """The |0...0> state as a ``(2,)*n`` tensor."""
    state = np.zeros((2,) * num_qubits, dtype=complex)
    state[(0,) * num_qubits] = 1.0
    return state


def initial_density_tensor(num_qubits: int) -> np.ndarray:
    """The |0...0><0...0| density matrix as a ``(2,)*2n`` tensor."""
    rho = np.zeros((2,) * (2 * num_qubits), dtype=complex)
    rho[(0,) * (2 * num_qubits)] = 1.0
    return rho


def density_tensor_to_matrix(rho: np.ndarray, num_qubits: int) -> np.ndarray:
    """Reshape a ``(2,)*2n`` density tensor back to ``2^n x 2^n``."""
    dim = 2 ** num_qubits
    return rho.reshape(dim, dim)


def apply_to_statevector(state: np.ndarray, matrix: np.ndarray,
                         qubits: Sequence[int],
                         num_qubits: int) -> np.ndarray:
    """Apply a k-qubit *matrix* to a ``(2,)*n`` state tensor.

    *qubits* lists, in order, the circuit qubit each tensor factor of
    *matrix* acts on; the tuple need not be sorted or contiguous.  The
    state may carry extra trailing axes (e.g. the column axis of a
    unitary-in-progress); only the first *num_qubits* axes are qubit
    axes.
    """
    k = len(qubits)
    if any(not 0 <= q < num_qubits for q in qubits):
        raise ValueError(f"qubits {tuple(qubits)} outside 0..{num_qubits - 1}")
    gmat = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))
    # Contract the gate's column axes with the state's target axes; the
    # gate's row axes land in front, so move them back to the targets.
    state = np.tensordot(gmat, state, axes=(list(range(k, 2 * k)),
                                            list(qubits)))
    return np.moveaxis(state, list(range(k)), list(qubits))


def apply_unitary(rho: np.ndarray, matrix: np.ndarray,
                  qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Apply ``U rho U^dag`` on a ``(2,)*2n`` density tensor.

    Two local contractions: the ket axes against ``U`` and the bra axes
    against ``conj(U)``.  Cost ``O(2^(2n) * 4^k)`` versus the ``O(8^n)``
    of a full-space matrix sandwich.
    """
    k = len(qubits)
    if any(not 0 <= q < num_qubits for q in qubits):
        raise ValueError(f"qubits {tuple(qubits)} outside 0..{num_qubits - 1}")
    gmat = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))
    ket_axes = list(qubits)
    bra_axes = [num_qubits + q for q in qubits]
    cols = list(range(k, 2 * k))
    # U rho : contract U columns with ket axes.
    rho = np.tensordot(gmat, rho, axes=(cols, ket_axes))
    rho = np.moveaxis(rho, list(range(k)), ket_axes)
    # rho U^dag : contract bra axes with conj(U) columns; the appended row
    # axes become the new bra axes.
    rho = np.tensordot(rho, gmat.conj(), axes=(bra_axes, cols))
    tail = list(range(2 * num_qubits - k, 2 * num_qubits))
    return np.moveaxis(rho, tail, bra_axes)


def apply_kraus(rho: np.ndarray, operators: Sequence[np.ndarray],
                qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Apply ``sum_i K_i rho K_i^dag`` on local axes of a density tensor."""
    out = np.zeros_like(rho)
    for op in operators:
        out += apply_unitary(rho, op, qubits, num_qubits)
    return out


def superop_tensor(operators: Sequence[np.ndarray]) -> np.ndarray:
    """Fold Kraus operators into one local superoperator tensor.

    Returns ``S = sum_i K_i (x) conj(K_i)`` reshaped to ``(2,)*4k`` with
    axis blocks ``[ket-out, bra-out, ket-in, bra-in]``.  Applying S is a
    *single* contraction per channel, instead of two per Kraus operator —
    a 2q depolarizing channel (16 operators) drops from 32 tensordot calls
    to 1.
    """
    d = operators[0].shape[0]
    k = int(np.log2(d))
    s = np.zeros((d * d, d * d), dtype=complex)
    for op in operators:
        s += np.kron(op, op.conj())
    return s.reshape((2,) * (4 * k))


def apply_superop(rho: np.ndarray, sop: np.ndarray,
                  qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Apply a folded channel (:func:`superop_tensor`) to a density tensor.

    Contracts the superoperator's input axes against the ket *and* bra
    target axes in one ``tensordot``.
    """
    k = sop.ndim // 4
    if any(not 0 <= q < num_qubits for q in qubits):
        raise ValueError(f"qubits {tuple(qubits)} outside 0..{num_qubits - 1}")
    targets = list(qubits) + [num_qubits + q for q in qubits]
    rho = np.tensordot(sop, rho, axes=(list(range(2 * k, 4 * k)), targets))
    return np.moveaxis(rho, list(range(2 * k)), targets)

"""Setup shim: allows legacy editable installs in offline environments
where the `wheel` package (needed for PEP 517 editable wheels) is absent."""
from setuptools import setup

setup()

"""Overload-protection benchmark: the gateway past the saturation knee.

Drives synthetic multi-user traffic (three users across the three
priority classes) through the :class:`repro.service.Gateway` at a
sustained past-knee arrival rate and gates the properties the
admission-control subsystem promises:

1. **Accounting invariant** — every submission is accepted, shed, or
   rejected (``accepted + shed + rejected == submitted``); every
   accepted program completes exactly once; every refusal is stored
   terminally.  Nothing is lost, nothing double-served.
2. **Deterministic refusal** — the accept/shed/reject partition (and
   every decision payload) replays bit-identically on a second run of
   the same trace through a fresh provider.
3. **Bounded interactive tail** — backpressure sheds enough load that
   the p99 turnaround of *accepted* interactive traffic stays within
   ``P99_FACTOR`` (default 2x) of its uncontended value.
4. **Unscripted degradation** — a scripted device-failure burst trips
   the per-device circuit breaker, re-queues in-flight work to the
   surviving device, and readmits the failed device after half-open
   probes; the breaker trajectory also replays bit-identically.

Results land in ``BENCH_overload.json`` (accept rate and accepted-
traffic p99 per priority class, plus the breaker scenario summary).

Run:  PYTHONPATH=../src python bench_overload.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Sequence

import numpy as np

from conftest import print_table

from repro.core import CloudScheduler, DeviceFailurePlan, HealthPolicy
from repro.hardware import DeviceFleet, linear_device
from repro.service import (
    AdmissionPolicy,
    Gateway,
    QuantumProvider,
    UserQuota,
)
from repro.workloads import synthesize_traffic

#: CI override knob: accepted-interactive p99 must stay within this
#: factor of its uncontended value.
P99_FACTOR = float(os.environ.get("OVERLOAD_P99_FACTOR", "2.0"))

ARTIFACT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "BENCH_overload.json")

TOKENS = {"tok-int": "iris", "tok-bat": "bram", "tok-eff": "ezra"}
CLASSES = {"iris": "interactive", "bram": "batch", "ezra": "best_effort"}
BY_USER = {user: token for token, user in TOKENS.items()}


def fleet_devices():
    """Two small seeded devices: quick to simulate, distinct names."""
    return [linear_device(5, seed=0), linear_device(6, seed=1)]


def make_policy(max_queue_depth: int) -> AdmissionPolicy:
    return AdmissionPolicy(
        quotas={
            "iris": UserQuota(4000.0, 6, "interactive"),
            "bram": UserQuota(4000.0, 6, "batch"),
            "ezra": UserQuota(4000.0, 6, "best_effort"),
        },
        max_queue_depth=max_queue_depth,
    )


def make_gateway(provider: QuantumProvider,
                 max_queue_depth: int) -> Gateway:
    backend = provider.fleet_backend(
        fleet_devices(), name="overload-fleet",
        batch_window_ns=0.0, max_batch_size=1, priority_aging_ns=2e5)
    return Gateway(backend, make_policy(max_queue_depth), TOKENS,
                   shots=0, execute=False)


def drive(gateway: Gateway, stream, only_user: str | None = None):
    """Submit the stream round-robin over the three users; returns the
    (response, priority_class) rows in submission order."""
    users = list(CLASSES)
    rows = []
    for i, sub in enumerate(stream):
        user = users[i % len(users)]
        if only_user is not None and user != only_user:
            continue
        response = gateway.submit(BY_USER[user], sub.circuit,
                                  sub.arrival_ns)
        rows.append((response, CLASSES[user]))
    return rows


def collect_turnarounds(gateway: Gateway, rows) -> Dict[str, List[float]]:
    """Per-class turnarounds of every accepted program (post-flush)."""
    per_class: Dict[str, List[float]] = {c: [] for c in CLASSES.values()}
    for response, cls in rows:
        if not response["ok"]:
            continue
        ticket = gateway.ticket(response["job_id"])
        result = gateway.result(BY_USER[ticket.user], response["job_id"])
        assert result["ok"], result
        for turnaround in result["turnaround_ns"]:
            assert turnaround is not None and turnaround > 0
            per_class[cls].append(float(turnaround))
    return per_class


def p99(values: Sequence[float]) -> float:
    return float(np.percentile(np.asarray(values), 99)) if values else 0.0


def run_trace(num_programs: int, interarrival_ns: float, seed: int,
              max_queue_depth: int):
    """One full gateway run; returns everything the gates consume."""
    with QuantumProvider() as provider:
        gateway = make_gateway(provider, max_queue_depth)
        stream = synthesize_traffic(
            num_programs, pattern="poisson",
            mean_interarrival_ns=interarrival_ns, mix="heavy_tail",
            seed=seed, num_users=1)
        rows = drive(gateway, stream)
        gateway.flush(seed=seed)
        partition = [
            (resp["job_id"], resp["ok"],
             resp.get("status") or resp.get("error"), cls)
            for resp, cls in rows]
        decisions = [gateway.ticket(job_id).decision.to_dict()
                     for job_id, _, _, _ in partition]
        turnarounds = collect_turnarounds(gateway, rows)
        counts = gateway.summary()["counts"]
        per_class = gateway.controller.summary()["per_class"]
        # Completion accounting: every accepted program appears exactly
        # once in the carrier schedule.
        accepted_programs = sum(
            len(gateway.ticket(job_id).circuits)
            for job_id, ok, _, _ in partition if ok)
        carriers = gateway.carriers
        served = sum(len(job.result().schedule.completion_ns)
                     for job in carriers)
    return {
        "partition": partition,
        "decisions": decisions,
        "turnarounds": turnarounds,
        "counts": counts,
        "per_class": per_class,
        "accepted_programs": accepted_programs,
        "served_programs": served,
    }


def breaker_scenario(num_programs: int):
    """Scripted failure burst -> trip -> re-queue -> readmission."""
    # The burst ends well inside the arrival span (num_programs x 1 ms),
    # so post-burst traffic feeds the half-open probes and the breaker
    # earns readmission before the queue drains.
    scheduler_kwargs = dict(
        batch_window_ns=0.0, max_batch_size=1,
        failure_plan=DeviceFailurePlan.burst(0, 0.0, 8e6),
        health_policy=HealthPolicy(failure_threshold=2, cooldown_ns=3e6,
                                   probe_successes=2),
    )
    subs = synthesize_traffic(num_programs, pattern="poisson",
                              mean_interarrival_ns=1e6, seed=3,
                              num_users=3)

    def run():
        scheduler = CloudScheduler(DeviceFleet(fleet_devices()),
                                   **scheduler_kwargs)
        return scheduler.schedule(subs)

    first, second = run(), run()
    return first, second.to_dict() == first.to_dict()


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI configuration")
    parser.add_argument("--programs", type=int, default=None,
                        help="submissions in the overload trace "
                             "(default 90; 45 with --smoke)")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    num_programs = args.programs or (45 if args.smoke else 90)
    # Service time per program is ~1.1 ms virtual (1 ms job overhead +
    # circuit duration) on each of 2 devices => capacity ~1 program per
    # 0.55 ms.  A 0.25 ms mean interarrival offers ~2.2x saturation.
    interarrival_ns = 2.5e5
    max_queue_depth = 6
    failures: List[str] = []

    # --- 1+2: overloaded run, accounting + bit-identical replay -------
    first = run_trace(num_programs, interarrival_ns, args.seed,
                      max_queue_depth)
    second = run_trace(num_programs, interarrival_ns, args.seed,
                       max_queue_depth)
    counts = first["counts"]
    accounted = (counts["accepted"] + counts["shed"] + counts["rejected"]
                 == counts["submitted"] == num_programs)
    if not accounted:
        failures.append(f"accounting invariant violated: {counts}")
    if first["served_programs"] != first["accepted_programs"]:
        failures.append(
            f"served {first['served_programs']} != accepted "
            f"{first['accepted_programs']} (lost or double-served work)")
    replay_ok = (first["partition"] == second["partition"]
                 and first["decisions"] == second["decisions"])
    if not replay_ok:
        failures.append("accept/shed partition did not replay "
                        "bit-identically")
    if not (counts["shed"] > 0 or counts["rejected"] > 0):
        failures.append("trace never saturated admission: no refusals "
                        "(raise the arrival rate)")

    # --- 3: accepted-interactive p99 vs uncontended -------------------
    # Uncontended reference: only the interactive user's submissions
    # (same arrival instants) through an otherwise idle gateway.
    with QuantumProvider() as provider:
        gateway = make_gateway(provider, max_queue_depth)
        stream = synthesize_traffic(
            num_programs, pattern="poisson",
            mean_interarrival_ns=interarrival_ns, mix="heavy_tail",
            seed=args.seed, num_users=1)
        solo_rows = drive(gateway, stream, only_user="iris")
        gateway.flush(seed=args.seed)
        solo = collect_turnarounds(gateway, solo_rows)
    solo_p99 = p99(solo["interactive"])
    loaded_p99 = p99(first["turnarounds"]["interactive"])
    tail_ok = (loaded_p99 <= P99_FACTOR * solo_p99
               and first["turnarounds"]["interactive"])
    if not tail_ok:
        failures.append(
            f"accepted interactive p99 {loaded_p99 / 1e6:.2f} ms exceeds "
            f"{P99_FACTOR:g}x uncontended {solo_p99 / 1e6:.2f} ms")

    rows = []
    artifact_classes: Dict[str, Dict[str, object]] = {}
    for cls in ("interactive", "batch", "best_effort"):
        tally = first["per_class"][cls]
        submitted = sum(tally.values())
        accept_rate = tally["accepted"] / submitted if submitted else 0.0
        cls_p99 = p99(first["turnarounds"][cls])
        rows.append([cls, submitted, tally["accepted"], tally["shed"],
                     tally["rejected"], f"{accept_rate:.0%}",
                     f"{cls_p99 / 1e6:.2f}"])
        artifact_classes[cls] = {
            "submitted": submitted,
            "accepted": tally["accepted"],
            "shed": tally["shed"],
            "rejected": tally["rejected"],
            "accept_rate": accept_rate,
            "accepted_p99_ns": cls_p99,
        }
    print_table(
        f"Gateway overload: {num_programs} programs at "
        f"{interarrival_ns / 1e6:g} ms interarrival (~2x saturation), "
        f"queue-depth limit {max_queue_depth}",
        ["class", "submitted", "accepted", "shed", "rejected",
         "accept rate", "p99(ms)"],
        rows)
    print(f"interactive p99: loaded {loaded_p99 / 1e6:.2f} ms vs "
          f"uncontended {solo_p99 / 1e6:.2f} ms "
          f"(factor {loaded_p99 / solo_p99 if solo_p99 else 0:.2f}, "
          f"limit {P99_FACTOR:g}x); partition replay identical: "
          f"{replay_ok}")

    # --- 4: breaker trip -> re-queue -> readmission -------------------
    outcome, breaker_replay_ok = breaker_scenario(
        20 if args.smoke else 30)
    breaker = outcome.breakers.get("0", {})
    completions_ok = (len(outcome.completion_ns)
                      == (20 if args.smoke else 30))
    if not (outcome.batch_failures > 0 and outcome.breaker_trips >= 1):
        failures.append("failure burst never tripped the breaker")
    if outcome.breaker_readmissions < 1:
        failures.append("breaker was never readmitted after half-open "
                        "probes")
    if not completions_ok:
        failures.append(
            f"breaker scenario lost work: {len(outcome.completion_ns)} "
            f"completions of {20 if args.smoke else 30}")
    if not breaker_replay_ok:
        failures.append("breaker trajectory did not replay "
                        "bit-identically")
    print(f"breaker scenario: {outcome.batch_failures} failed batches, "
          f"{outcome.breaker_trips} trips, "
          f"{outcome.breaker_readmissions} readmissions, "
          f"{len(outcome.completion_ns)} completions, state "
          f"{breaker.get('state')!r}, replay identical: "
          f"{breaker_replay_ok}")

    with open(ARTIFACT, "w") as fh:
        json.dump({
            "programs": num_programs,
            "interarrival_ns": interarrival_ns,
            "max_queue_depth": max_queue_depth,
            "seed": args.seed,
            "counts": counts,
            "per_class": artifact_classes,
            "interactive_p99": {
                "uncontended_ns": solo_p99,
                "loaded_ns": loaded_p99,
                "factor": (loaded_p99 / solo_p99 if solo_p99 else None),
                "limit": P99_FACTOR,
            },
            "replay_identical": replay_ok,
            "breaker": {
                "summary": breaker.copy() if breaker else {},
                "batch_failures": outcome.batch_failures,
                "trips": outcome.breaker_trips,
                "readmissions": outcome.breaker_readmissions,
                "replay_identical": breaker_replay_ok,
            },
        }, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {ARTIFACT}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("\nOK: accounting invariant holds, the accept/shed partition "
          "replays bit-identically, the accepted interactive tail is "
          f"within {P99_FACTOR:g}x of uncontended, and the breaker "
          "trips, re-queues, and readmits deterministically")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Compile-latency benchmark: cold vs warm-context vs parallel service.

The multi-programming service transpiles every incoming program onto its
allocated partition.  This bench quantifies the three compile paths on
fleet-scale traffic (:mod:`repro.workloads.traffic`, heavy-tail mix —
small repeated programs dominate, exactly the cloud profile):

- **cold** — the seed behaviour: every call rebuilds the
  partition-induced coupling/calibration and re-runs the Dijkstra
  distance tables (a fresh :class:`DeviceContext` per call, no result
  cache);
- **warm** — one shared :class:`DeviceContext` (memoized partition
  sub-contexts, cached tables) plus the shared
  :class:`~repro.core.ExecutionCache`, so repeated (program, partition)
  pairs are cache hits;
- **service** — :class:`~repro.core.CompileService` batch submission
  over its persistent worker pool, same shared caches.

Two cold-path sections ride along: a process-pool shard of unique
programs on a wide (65q) device — chunked tasks, fingerprint-rehydrated
contexts — against the same compile run serially, and a scheduler-dedup
check driving :class:`~repro.core.CloudScheduler` with repeated
programs at distinct queue indices through a compile service, gating on
**zero re-transpiles** (the structural cache key dedups across
submissions).

A persistent-store section exercises the layered cache across process
boundaries: one process compiles the full mix into a SQLite WAL store,
then a **fresh spawned process** (empty in-memory tiers) replays the
identical mix against that store.  The gate: the cold process must
compile **zero** programs — every request is served by promoting the
stored equivalence-class artifact.

The acceptance gate (also run in CI via ``--smoke``): warm-context
service compilation must beat cold per-call transpilation by >= 5x on
the repeated-program mix.  Timings land in ``BENCH_transpile.json`` so
the compile-latency trajectory accumulates across PRs.

Run:  PYTHONPATH=../src python bench_transpile.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import tempfile
import time
from typing import Dict, List, Sequence, Tuple

from conftest import connected_subset, print_table

from repro.circuits import QuantumCircuit, random_circuit
from repro.core import AllocationResult, CloudScheduler, CompileService, \
    ExecutionCache, ProgramAllocation, SubmittedProgram, \
    allocation_engine, get_allocator
from repro.core.executor import _circuit_key
from repro.hardware import Device, ibm_manhattan, ibm_toronto
from repro.transpiler import DeviceContext, transpile_for_partition
from repro.workloads import synthesize_traffic

#: CI override knob (mirrors KERNEL_SPEEDUP_FLOOR/SCHEDULER_SPEEDUP_FLOOR).
SPEEDUP_FLOOR = float(os.environ.get("TRANSPILE_SPEEDUP_FLOOR", "5.0"))

ARTIFACT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "BENCH_transpile.json")


def placed_traffic(device: Device, num_programs: int, seed: int
                   ) -> List[Tuple[QuantumCircuit, Tuple[int, ...]]]:
    """(circuit, solo-best partition) pairs for a synthetic stream."""
    subs = synthesize_traffic(num_programs, pattern="poisson",
                              mean_interarrival_ns=2e5, mix="heavy_tail",
                              seed=seed)
    engine = allocation_engine(device)
    allocator = get_allocator("qucp")
    out = []
    for sub in subs:
        placement = engine.solo_best(allocator, sub.circuit)
        if placement is not None:
            out.append((sub.circuit, placement.partition))
    return out


def allocations(device: Device,
                traffic: Sequence[Tuple[QuantumCircuit, Tuple[int, ...]]]
                ) -> List[ProgramAllocation]:
    """Service-style compile requests: one per submission.

    Requests carry their real queue indices: the structural cache key
    ignores ``index`` for index-insensitive hooks, so identical
    (program, partition) requests dedup without the old index-0
    normalization workaround.
    """
    return [ProgramAllocation(i, circuit, partition, 0.0)
            for i, (circuit, partition) in enumerate(traffic)]


def bench_cold(device: Device, traffic) -> float:
    """Seed behaviour: fresh context per call, no result cache."""
    start = time.perf_counter()
    for circuit, partition in traffic:
        transpile_for_partition(
            circuit, device, partition,
            context=DeviceContext(device.coupling, device.calibration))
    return time.perf_counter() - start


def bench_warm(device: Device, traffic) -> Tuple[float, ExecutionCache]:
    """Shared DeviceContext + shared ExecutionCache, serial."""
    svc = CompileService(mode="serial")
    context = DeviceContext(device.coupling, device.calibration)

    def hook(circuit, dev, alloc):
        return transpile_for_partition(circuit, dev, alloc.partition,
                                       context=context)

    allocs = allocations(device, traffic)
    start = time.perf_counter()
    for alloc in allocs:
        svc.transpile(alloc.circuit, device, alloc, hook)
    return time.perf_counter() - start, svc.cache


def bench_warm_context_only(device: Device, traffic) -> float:
    """Shared DeviceContext, but no result cache (every call compiles)."""
    context = DeviceContext(device.coupling, device.calibration)
    start = time.perf_counter()
    for circuit, partition in traffic:
        transpile_for_partition(circuit, device, partition,
                                context=context)
    return time.perf_counter() - start


def bench_service(device: Device, traffic, workers: int) -> float:
    """Parallel batch compile through the persistent worker pool."""
    context = DeviceContext(device.coupling, device.calibration)

    def hook(circuit, dev, alloc):
        return transpile_for_partition(circuit, dev, alloc.partition,
                                       context=context)

    allocs = allocations(device, traffic)
    with CompileService(max_workers=workers, mode="thread") as svc:
        start = time.perf_counter()
        futures = [svc.submit(a.circuit, device, a, hook) for a in allocs]
        for fut in futures:
            fut.result()
        return time.perf_counter() - start


def unique_cold_job(device: Device, num_programs: int, seed: int
                    ) -> AllocationResult:
    """*Unique* heavy programs on BFS-grown partitions: a pure cold-miss
    batch (no result-cache dedup possible), the process-pool's target
    load — per-program compile time must dominate chunk pickling."""
    import numpy as np

    rng = np.random.default_rng(seed)
    job = AllocationResult(method="bench-cold", device=device)
    for i in range(num_programs):
        size = int(rng.integers(5, 8))
        circuit = random_circuit(size - 1,
                                 int(rng.integers(25, 40)),
                                 seed=seed * 7919 + i)
        circuit.measure_all()
        start = int(rng.integers(device.num_qubits))
        partition = connected_subset(device.coupling, start, size)
        job.allocations.append(ProgramAllocation(
            i, circuit, partition, 0.0))
    return job


def bench_cold_process(device: Device, num_programs: int, workers: int,
                       seed: int) -> Tuple[float, float, float, int]:
    """Serial vs chunk-sharded process-pool vs measured-auto compile.

    Returns ``(serial_s, process_s, auto_s, chunks)`` for the timed
    runs only.  All paths start from an empty result cache; the process
    pool is warmed (fork + per-worker context tables) before timing,
    matching its persistent-service usage.  On single-core runners the
    explicit process path measures the sharding overhead (a known
    loss), and the ``auto`` path must *route around it* — that is the
    tuned :meth:`CompileService.choose_route` gate.
    """
    job = unique_cold_job(device, num_programs, seed)
    with CompileService(mode="serial") as ser:
        start = time.perf_counter()
        ser.compile_allocation(job)
        serial_s = time.perf_counter() - start
    with CompileService(max_workers=workers, mode="process") as svc:
        warm = unique_cold_job(device, workers, seed + 1)
        svc.compile_allocation(warm)  # spin up workers, warm contexts
        chunks_before = svc.stats["chunks"]
        start = time.perf_counter()
        svc.compile_allocation(job)
        process_s = time.perf_counter() - start
        chunks = svc.stats["chunks"] - chunks_before
    with CompileService(max_workers=workers, mode="auto") as auto:
        if CompileService.choose_route(num_programs,
                                       device.num_qubits) == "process":
            auto.compile_allocation(unique_cold_job(device, workers,
                                                    seed + 1))
        start = time.perf_counter()
        auto.compile_allocation(job)
        auto_s = time.perf_counter() - start
    return serial_s, process_s, auto_s, chunks


def request_payload_bytes(device: Device, num_programs: int,
                          workers: int, seed: int) -> Tuple[int, int]:
    """Pickled request bytes shipped to workers: per-task vs chunked.

    CPU-noise-free view of what fingerprint sharding removes — the
    per-task path pickles the full device (with its warmed distance
    caches) for every program; a chunk ships one plain-data fingerprint
    per shard.
    """
    import pickle

    from repro.core.compile_service import _device_fingerprint_spec

    job = unique_cold_job(device, num_programs, seed)
    # Warm the lazy coupling caches the way a long-running service has
    # them (they ride along in the Device pickle).
    device.coupling.distance(0, 1)
    device.coupling.all_one_hop_edge_pairs()
    per_task = sum(
        len(pickle.dumps((a.circuit, device, a)))
        for a in job.allocations)
    spec = _device_fingerprint_spec(device)
    shards = [job.allocations[i::workers] for i in range(workers)]
    chunked = sum(
        len(pickle.dumps((spec, [(a.circuit, a.partition)
                                 for a in shard])))
        for shard in shards if shard)
    return per_task, chunked


def bench_cold_process_per_task(device: Device, num_programs: int,
                                workers: int, seed: int) -> float:
    """The pre-sharding process path: one pool task per program, each
    pickling the full device — what chunked fingerprints replace."""
    from repro.core.executor import _default_transpiler

    job = unique_cold_job(device, num_programs, seed)
    with CompileService(max_workers=workers, mode="process") as svc:
        svc.compile_allocation(unique_cold_job(device, workers, seed + 1))
        start = time.perf_counter()
        futures = [
            svc.submit(a.circuit, device, a, _default_transpiler,
                       route="process")
            for a in job.allocations
        ]
        for fut in futures:
            fut.result()
        return time.perf_counter() - start


def _store_compile_pass(store_path: str, num_programs: int, seed: int
                        ) -> Tuple[int, int, float]:
    """Compile the standard traffic mix through a store-backed cache.

    Top-level so it doubles as a ``spawn`` target: the cold phase runs
    this exact function in a fresh interpreter whose only shared state
    with the warm phase is the on-disk store.  Returns
    ``(submitted, promotions, elapsed_s)``.
    """
    device = ibm_toronto()
    traffic = placed_traffic(device, num_programs, seed)
    job = AllocationResult(method="bench-store", device=device)
    job.allocations.extend(allocations(device, traffic))
    cache = ExecutionCache(store_path=store_path)
    with CompileService(mode="serial", cache=cache) as svc:
        start = time.perf_counter()
        svc.compile_allocation(job)
        elapsed = time.perf_counter() - start
        stats = svc.stats
    return stats["submitted"], stats["promotions"], elapsed


def bench_cold_process_warm_store(num_programs: int, seed: int,
                                  store_dir: str) -> Dict[str, float]:
    """Warm a persistent store in-process, then replay the identical
    mix from a spawned cold process (empty L1 tiers, shared store)."""
    store_path = os.path.join(store_dir, "bench_store.db")
    warm_compiled, _, warm_s = _store_compile_pass(
        store_path, num_programs, seed)
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(1) as pool:
        cold_compiled, cold_promotions, cold_s = pool.apply(
            _store_compile_pass, (store_path, num_programs, seed))
    return {
        "warm_compiled": warm_compiled,
        "warm_s": warm_s,
        "cold_compiled": cold_compiled,
        "cold_promotions": cold_promotions,
        "cold_s": cold_s,
        "speedup": warm_s / cold_s if cold_s else float("inf"),
    }


def scheduler_dedup(device: Device, num_programs: int, seed: int
                    ) -> Tuple[int, int, int]:
    """Drive the cloud scheduler through a compile service and count
    re-transpiles of structurally identical submissions.

    Serial service (one program per job) over a heavy-tail mix: every
    repeated circuit arrives at a distinct queue index and must hit the
    structural cache instead of re-compiling.  Returns
    ``(requests, compiled, unique_structural)``.
    """
    subs = synthesize_traffic(num_programs, pattern="poisson",
                              mean_interarrival_ns=2e5, mix="heavy_tail",
                              seed=seed)
    with CompileService(mode="serial") as svc:
        scheduler = CloudScheduler(device, max_batch_size=1,
                                   fidelity_threshold=0.0,
                                   compile_service=svc)
        outcome = scheduler.schedule(subs)
        compiled = svc.stats["submitted"]
    unique = len({
        (_circuit_key(a.circuit), a.partition)
        for job in outcome.jobs for a in job.allocation.allocations
    })
    return outcome.compile_requests, compiled, unique


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI configuration with the >=5x gate")
    parser.add_argument("--programs", type=int, default=None,
                        help="number of submissions (default 150; 60 "
                             "with --smoke)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    num_programs = args.programs or (60 if args.smoke else 150)
    device = ibm_toronto()
    traffic = placed_traffic(device, num_programs, args.seed)
    unique = len({(_circuit_key(c), p) for c, p in traffic})

    # Untimed warm-up pass: the first timed path in a process otherwise
    # wins from interpreter/allocator warm-up regardless of merit.
    bench_cold(device, traffic)

    cold_s = bench_cold(device, traffic)
    warm_ctx_s = bench_warm_context_only(device, traffic)
    warm_s, cache = bench_warm(device, traffic)
    service_s = bench_service(device, traffic, args.workers)

    n = len(traffic)
    rows = [
        ["cold (per-call rebuild)", n, f"{cold_s * 1e3:.1f}",
         f"{cold_s / n * 1e3:.2f}", "1.00x"],
        ["warm context only", n, f"{warm_ctx_s * 1e3:.1f}",
         f"{warm_ctx_s / n * 1e3:.2f}", f"{cold_s / warm_ctx_s:.2f}x"],
        ["warm (context + result cache)", n, f"{warm_s * 1e3:.1f}",
         f"{warm_s / n * 1e3:.2f}", f"{cold_s / warm_s:.2f}x"],
        [f"service ({args.workers} workers)", n, f"{service_s * 1e3:.1f}",
         f"{service_s / n * 1e3:.2f}", f"{cold_s / service_s:.2f}x"],
    ]
    print_table(
        f"Compile latency, {n} programs ({unique} unique placements), "
        f"heavy-tail Poisson mix on {device.name}",
        ["path", "programs", "total(ms)", "per-program(ms)", "vs cold"],
        rows)
    print(f"result cache on warm pass: {cache.transpile_hits} hits / "
          f"{cache.transpile_misses} misses")

    # --- cold path: process-pool sharding on a wide device -------------
    wide = ibm_manhattan()
    n_cold = 12 if args.smoke else 48
    serial_s, process_s, auto_s, chunks = bench_cold_process(
        wide, n_cold, args.workers, args.seed)
    per_task_s = bench_cold_process_per_task(
        wide, n_cold, args.workers, args.seed)
    process_speedup = serial_s / process_s
    auto_speedup = serial_s / auto_s
    chunking_speedup = per_task_s / process_s
    cores = os.cpu_count() or 1
    auto_route = CompileService.choose_route(n_cold, wide.num_qubits)
    print_table(
        f"Cold-miss compile of {n_cold} unique programs on {wide.name} "
        f"({wide.num_qubits}q, {cores} cores)",
        ["path", "total(ms)", "per-program(ms)", "vs serial"],
        [
            ["serial (one process)", f"{serial_s * 1e3:.1f}",
             f"{serial_s / n_cold * 1e3:.2f}", "1.00x"],
            ["process, per-task (full device pickled per program)",
             f"{per_task_s * 1e3:.1f}", f"{per_task_s / n_cold * 1e3:.2f}",
             f"{serial_s / per_task_s:.2f}x"],
            [f"process, chunked ({args.workers} workers, {chunks} "
             f"chunks, fingerprint rehydration)",
             f"{process_s * 1e3:.1f}", f"{process_s / n_cold * 1e3:.2f}",
             f"{process_speedup:.2f}x"],
            [f"auto (measured route: {auto_route})",
             f"{auto_s * 1e3:.1f}", f"{auto_s / n_cold * 1e3:.2f}",
             f"{auto_speedup:.2f}x"],
        ])
    per_task_bytes, chunked_bytes = request_payload_bytes(
        wide, n_cold, args.workers, args.seed)
    print(f"chunked sharding vs per-task process submission: "
          f"{chunking_speedup:.2f}x wall-clock, "
          f"{per_task_bytes / 1e6:.2f} MB -> {chunked_bytes / 1e6:.2f} MB "
          f"request payload ({per_task_bytes / chunked_bytes:.1f}x fewer "
          f"bytes shipped)")

    # --- cold process on a warm persistent store -----------------------
    with tempfile.TemporaryDirectory(prefix="bench-store-") as store_dir:
        store = bench_cold_process_warm_store(
            num_programs, args.seed, store_dir)
    print(f"cold process on warm store: warm pass compiled "
          f"{store['warm_compiled']} programs in "
          f"{store['warm_s'] * 1e3:.1f} ms; spawned cold process "
          f"compiled {store['cold_compiled']} "
          f"({store['cold_promotions']} store promotions) in "
          f"{store['cold_s'] * 1e3:.1f} ms "
          f"({store['speedup']:.2f}x vs warm compile pass)")

    # --- scheduler-path structural dedup -------------------------------
    requests, compiled, unique_structural = scheduler_dedup(
        device, num_programs, args.seed)
    retranspiles = compiled - unique_structural
    print(f"scheduler dedup: {requests} compile requests at distinct "
          f"queue indices -> {compiled} compiled "
          f"({unique_structural} unique programs, "
          f"{retranspiles} re-transpiles)")

    warm_speedup = cold_s / warm_s
    payload = {
        "bench": "bench_transpile",
        "device": device.name,
        "programs": n,
        "seed": args.seed,
        "smoke": bool(args.smoke),
        "workers": args.workers,
        "cold_s": cold_s,
        "warm_context_only_s": warm_ctx_s,
        "warm_s": warm_s,
        "service_s": service_s,
        "warm_speedup": warm_speedup,
        "warm_context_only_speedup": cold_s / warm_ctx_s,
        "service_speedup": cold_s / service_s,
        "floor": SPEEDUP_FLOOR,
        "cold_process": {
            "device": wide.name,
            "programs": n_cold,
            "cores": cores,
            "serial_s": serial_s,
            "per_task_s": per_task_s,
            "process_s": process_s,
            "auto_s": auto_s,
            "auto_route": auto_route,
            "chunks": chunks,
            "speedup": process_speedup,
            "auto_speedup": auto_speedup,
            "chunking_speedup": chunking_speedup,
            "per_task_request_bytes": per_task_bytes,
            "chunked_request_bytes": chunked_bytes,
        },
        "scheduler_dedup": {
            "compile_requests": requests,
            "compiled": compiled,
            "unique_structural": unique_structural,
            "retranspiles": retranspiles,
        },
        "cold_process_warm_store": store,
    }
    with open(ARTIFACT, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {ARTIFACT}")

    if store["cold_compiled"] != 0:
        print(f"FAIL: cold process on warm store compiled "
              f"{store['cold_compiled']} programs (expected 0: every "
              "equivalence class was already in the persistent store)",
              file=sys.stderr)
        return 1
    print("OK: cold process on warm store compiled 0 programs "
          f"({store['cold_promotions']} artifacts promoted from the "
          "persistent store)")

    if retranspiles != 0:
        print(f"FAIL: {retranspiles} re-transpiles of structurally "
              "identical submissions at distinct queue indices "
              "(expected 0)", file=sys.stderr)
        return 1
    print("OK: warm-equivalent submissions at distinct queue indices "
          "hit the cache (0 re-transpiles)")

    # The retuned-routing gate: whatever the measured table picked, the
    # auto route must never *lose* to serial (15% noise margin) — on a
    # 1-core host that means routing around the 0.47x process-pool
    # regression this bench used to record.
    if auto_s > serial_s * 1.15:
        print(f"FAIL: auto route ({auto_route}) ran at "
              f"{auto_speedup:.2f}x serial — choose_route picked a "
              "losing worker kind", file=sys.stderr)
        return 1
    print(f"OK: auto route ({auto_route}) at {auto_speedup:.2f}x serial "
          "on the cold-miss batch (never loses)")

    print(f"\nwarm-context speedup over cold per-call transpile: "
          f"{warm_speedup:.2f}x (floor {SPEEDUP_FLOOR:g}x)")
    if warm_speedup < SPEEDUP_FLOOR:
        print("FAIL: warm-context compilation did not reach the "
              f"{SPEEDUP_FLOOR:g}x floor", file=sys.stderr)
        return 1
    print(f"OK: warm-context compilation beats cold per-call "
          f"transpilation by >= {SPEEDUP_FLOOR:g}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

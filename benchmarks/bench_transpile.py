"""Compile-latency benchmark: cold vs warm-context vs parallel service.

The multi-programming service transpiles every incoming program onto its
allocated partition.  This bench quantifies the three compile paths on
fleet-scale traffic (:mod:`repro.workloads.traffic`, heavy-tail mix —
small repeated programs dominate, exactly the cloud profile):

- **cold** — the seed behaviour: every call rebuilds the
  partition-induced coupling/calibration and re-runs the Dijkstra
  distance tables (a fresh :class:`DeviceContext` per call, no result
  cache);
- **warm** — one shared :class:`DeviceContext` (memoized partition
  sub-contexts, cached tables) plus the shared
  :class:`~repro.core.ExecutionCache`, so repeated (program, partition)
  pairs are cache hits;
- **service** — :class:`~repro.core.CompileService` batch submission
  over its persistent worker pool, same shared caches.

The acceptance gate (also run in CI via ``--smoke``): warm-context
service compilation must beat cold per-call transpilation by >= 5x on
the repeated-program mix.  Timings land in ``BENCH_transpile.json`` so
the compile-latency trajectory accumulates across PRs.

Run:  PYTHONPATH=../src python bench_transpile.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Sequence, Tuple

from conftest import print_table

from repro.circuits import QuantumCircuit
from repro.core import CompileService, ExecutionCache, ProgramAllocation, \
    allocation_engine, get_allocator
from repro.core.executor import _circuit_key
from repro.hardware import Device, ibm_toronto
from repro.transpiler import DeviceContext, transpile_for_partition
from repro.workloads import synthesize_traffic

#: CI override knob (mirrors KERNEL_SPEEDUP_FLOOR/SCHEDULER_SPEEDUP_FLOOR).
SPEEDUP_FLOOR = float(os.environ.get("TRANSPILE_SPEEDUP_FLOOR", "5.0"))

ARTIFACT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "BENCH_transpile.json")


def placed_traffic(device: Device, num_programs: int, seed: int
                   ) -> List[Tuple[QuantumCircuit, Tuple[int, ...]]]:
    """(circuit, solo-best partition) pairs for a synthetic stream."""
    subs = synthesize_traffic(num_programs, pattern="poisson",
                              mean_interarrival_ns=2e5, mix="heavy_tail",
                              seed=seed)
    engine = allocation_engine(device)
    allocator = get_allocator("qucp")
    out = []
    for sub in subs:
        placement = engine.solo_best(allocator, sub.circuit)
        if placement is not None:
            out.append((sub.circuit, placement.partition))
    return out


def allocations(device: Device,
                traffic: Sequence[Tuple[QuantumCircuit, Tuple[int, ...]]]
                ) -> List[ProgramAllocation]:
    """Service-style compile requests: one per submission.

    ``index`` is part of the placement-sensitive cache key (transpiler
    hooks may observe it), so identical (program, partition) requests
    share index 0 — the dedup a real admission queue performs.
    """
    return [ProgramAllocation(0, circuit, partition, 0.0)
            for circuit, partition in traffic]


def bench_cold(device: Device, traffic) -> float:
    """Seed behaviour: fresh context per call, no result cache."""
    start = time.perf_counter()
    for circuit, partition in traffic:
        transpile_for_partition(
            circuit, device, partition,
            context=DeviceContext(device.coupling, device.calibration))
    return time.perf_counter() - start


def bench_warm(device: Device, traffic) -> Tuple[float, ExecutionCache]:
    """Shared DeviceContext + shared ExecutionCache, serial."""
    svc = CompileService(mode="serial")
    context = DeviceContext(device.coupling, device.calibration)

    def hook(circuit, dev, alloc):
        return transpile_for_partition(circuit, dev, alloc.partition,
                                       context=context)

    allocs = allocations(device, traffic)
    start = time.perf_counter()
    for alloc in allocs:
        svc.transpile(alloc.circuit, device, alloc, hook)
    return time.perf_counter() - start, svc.cache


def bench_warm_context_only(device: Device, traffic) -> float:
    """Shared DeviceContext, but no result cache (every call compiles)."""
    context = DeviceContext(device.coupling, device.calibration)
    start = time.perf_counter()
    for circuit, partition in traffic:
        transpile_for_partition(circuit, device, partition,
                                context=context)
    return time.perf_counter() - start


def bench_service(device: Device, traffic, workers: int) -> float:
    """Parallel batch compile through the persistent worker pool."""
    context = DeviceContext(device.coupling, device.calibration)

    def hook(circuit, dev, alloc):
        return transpile_for_partition(circuit, dev, alloc.partition,
                                       context=context)

    allocs = allocations(device, traffic)
    with CompileService(max_workers=workers, mode="thread") as svc:
        start = time.perf_counter()
        futures = [svc.submit(a.circuit, device, a, hook) for a in allocs]
        for fut in futures:
            fut.result()
        return time.perf_counter() - start


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI configuration with the >=5x gate")
    parser.add_argument("--programs", type=int, default=None,
                        help="number of submissions (default 150; 60 "
                             "with --smoke)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    num_programs = args.programs or (60 if args.smoke else 150)
    device = ibm_toronto()
    traffic = placed_traffic(device, num_programs, args.seed)
    unique = len({(_circuit_key(c), p) for c, p in traffic})

    # Untimed warm-up pass: the first timed path in a process otherwise
    # wins from interpreter/allocator warm-up regardless of merit.
    bench_cold(device, traffic)

    cold_s = bench_cold(device, traffic)
    warm_ctx_s = bench_warm_context_only(device, traffic)
    warm_s, cache = bench_warm(device, traffic)
    service_s = bench_service(device, traffic, args.workers)

    n = len(traffic)
    rows = [
        ["cold (per-call rebuild)", n, f"{cold_s * 1e3:.1f}",
         f"{cold_s / n * 1e3:.2f}", "1.00x"],
        ["warm context only", n, f"{warm_ctx_s * 1e3:.1f}",
         f"{warm_ctx_s / n * 1e3:.2f}", f"{cold_s / warm_ctx_s:.2f}x"],
        ["warm (context + result cache)", n, f"{warm_s * 1e3:.1f}",
         f"{warm_s / n * 1e3:.2f}", f"{cold_s / warm_s:.2f}x"],
        [f"service ({args.workers} workers)", n, f"{service_s * 1e3:.1f}",
         f"{service_s / n * 1e3:.2f}", f"{cold_s / service_s:.2f}x"],
    ]
    print_table(
        f"Compile latency, {n} programs ({unique} unique placements), "
        f"heavy-tail Poisson mix on {device.name}",
        ["path", "programs", "total(ms)", "per-program(ms)", "vs cold"],
        rows)
    print(f"result cache on warm pass: {cache.transpile_hits} hits / "
          f"{cache.transpile_misses} misses")

    warm_speedup = cold_s / warm_s
    payload = {
        "bench": "bench_transpile",
        "device": device.name,
        "programs": n,
        "seed": args.seed,
        "smoke": bool(args.smoke),
        "workers": args.workers,
        "cold_s": cold_s,
        "warm_context_only_s": warm_ctx_s,
        "warm_s": warm_s,
        "service_s": service_s,
        "warm_speedup": warm_speedup,
        "warm_context_only_speedup": cold_s / warm_ctx_s,
        "service_speedup": cold_s / service_s,
        "floor": SPEEDUP_FLOOR,
    }
    with open(ARTIFACT, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {ARTIFACT}")

    print(f"\nwarm-context speedup over cold per-call transpile: "
          f"{warm_speedup:.2f}x (floor {SPEEDUP_FLOOR:g}x)")
    if warm_speedup < SPEEDUP_FLOOR:
        print("FAIL: warm-context compilation did not reach the "
              f"{SPEEDUP_FLOOR:g}x floor", file=sys.stderr)
        return 1
    print(f"OK: warm-context compilation beats cold per-call "
          f"transpilation by >= {SPEEDUP_FLOOR:g}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Kernel smoke benchmark — tensor contraction vs dense embedding.

Asserts the contraction backend beats the old full-space dense path by
>= 5x on a noisy 8-qubit workload (the largest partition size the parallel
executor sweeps), while producing the same distribution to 1e-10.  Runs in
CI as a regression gate for the simulation hot path.
"""

import os
import time

import numpy as np
from conftest import print_table

from repro.circuits import QuantumCircuit
from repro.sim import NoiseModel, run_circuit

#: Default 5x (the local acceptance target; measured headroom is ~26-30x).
#: CI sets a conservative floor via the env var, since wall-clock ratios
#: on shared runners carry scheduling noise.
SPEEDUP_FLOOR = float(os.environ.get("KERNEL_SPEEDUP_FLOOR", "5.0"))


def _workload_circuit(num_qubits: int, layers: int = 6) -> QuantumCircuit:
    """A brickwork circuit: rotation layer + CX chain, all qubits measured."""
    rng = np.random.default_rng(1234)
    qc = QuantumCircuit(num_qubits, num_qubits)
    for layer in range(layers):
        for q in range(num_qubits):
            qc.ry(float(rng.uniform(0, 2 * np.pi)), q)
        for a in range(layer % 2, num_qubits - 1, 2):
            qc.cx(a, a + 1)
    qc.measure_all()
    return qc


def _noise(num_qubits: int) -> NoiseModel:
    return NoiseModel(
        oneq_error={q: 1e-3 for q in range(num_qubits)},
        twoq_error={(a, a + 1): 0.015 for a in range(num_qubits - 1)},
        readout_error={q: (0.02, 0.02) for q in range(num_qubits)},
        t1={q: 80_000.0 for q in range(num_qubits)},
        t2={q: 70_000.0 for q in range(num_qubits)},
    )


def _best_time(fn, repeats: int) -> float:
    fn()  # warm gate/channel caches so both backends are measured hot
    return min(
        (lambda t0: (fn(), time.perf_counter() - t0)[1])(time.perf_counter())
        for _ in range(repeats)
    )


def test_contraction_beats_dense_8q():
    """The acceptance gate: >= 5x on an 8-qubit noisy workload."""
    qc = _workload_circuit(8)
    nm = _noise(8)
    tensor = run_circuit(qc, noise_model=nm)
    dense = run_circuit(qc, noise_model=nm, backend="dense")
    for key in set(tensor.probabilities) | set(dense.probabilities):
        assert abs(tensor.probabilities.get(key, 0.0)
                   - dense.probabilities.get(key, 0.0)) < 1e-10

    t_tensor = _best_time(lambda: run_circuit(qc, noise_model=nm), 3)
    t_dense = _best_time(
        lambda: run_circuit(qc, noise_model=nm, backend="dense"), 3)
    speedup = t_dense / t_tensor
    print(f"\n8q noisy workload: dense {t_dense * 1e3:.1f} ms, "
          f"tensor {t_tensor * 1e3:.1f} ms, speedup {speedup:.1f}x")
    assert speedup >= SPEEDUP_FLOOR, (
        f"contraction path only {speedup:.1f}x faster than dense "
        f"(floor {SPEEDUP_FLOOR}x)")


def test_scaling_table():
    """Report the per-size speedup curve (informational; the 8q point is
    covered by the acceptance gate above)."""
    rows = []
    for n in (4, 5, 6, 7):
        qc = _workload_circuit(n)
        nm = _noise(n)
        t_tensor = _best_time(lambda: run_circuit(qc, noise_model=nm), 3)
        t_dense = _best_time(
            lambda: run_circuit(qc, noise_model=nm, backend="dense"), 3)
        rows.append([n, f"{t_dense * 1e3:.2f}", f"{t_tensor * 1e3:.2f}",
                     f"{t_dense / t_tensor:.1f}x"])
    print_table("Kernel speedup (noisy brickwork, 6 layers)",
                ["qubits", "dense ms", "tensor ms", "speedup"], rows)


if __name__ == "__main__":
    test_contraction_beats_dense_8q()
    test_scaling_table()

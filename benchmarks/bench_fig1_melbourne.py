"""Fig. 1 — parallel circuit execution on IBM Q 16 Melbourne.

One 4-qubit circuit occupies 26.7% of the chip; two occupy 53.3% and
halve the total runtime.  The bench allocates with QuCP on the Melbourne
device whose CX errors are pinned to the values printed in the paper's
figure, and verifies both throughput numbers and that the chosen regions
avoid the red (worst) links.
"""

from conftest import print_table

from repro.core import qucp_allocate
from repro.workloads import workload


def _allocate(melbourne, copies):
    circuits = [workload("adder").circuit() for _ in range(copies)]
    return qucp_allocate(circuits, melbourne)


def test_fig1_throughput(benchmark, melbourne):
    """Throughput 26.7% -> 53.3% going from one to two programs."""
    result = benchmark.pedantic(
        lambda: (_allocate(melbourne, 1), _allocate(melbourne, 2)),
        rounds=1, iterations=1)
    one, two = result

    rows = [
        ["(a) one circuit", str(one.partitions[0]), "",
         f"{one.throughput():.1%}"],
        ["(b) two circuits", str(two.partitions[0]),
         str(two.partitions[1]), f"{two.throughput():.1%}"],
    ]
    print_table("Fig. 1: Melbourne parallel execution",
                ["case", "partition 1", "partition 2", "throughput"],
                rows)

    assert one.throughput() == 4 / 15          # paper: 26.7%
    assert two.throughput() == 8 / 15          # paper: 53.3%

    # The first (unconstrained) region lands on a reliable area: its
    # average CX error beats the chip average.
    cal = melbourne.calibration
    chip_avg = sum(cal.twoq_error.values()) / len(cal.twoq_error)
    first_edges = melbourne.coupling.subgraph_edges(two.partitions[0])
    first_avg = sum(cal.cx_error(*e) for e in first_edges) \
        / len(first_edges)
    assert first_avg <= chip_avg

    # QuCP's actual guarantee for the second region: no internal link of
    # one program sits one hop from a link of the other (sigma = 4 made
    # that configuration too expensive), so simultaneous CNOTs cannot
    # interfere.
    p1_edges = melbourne.coupling.subgraph_edges(two.partitions[0])
    p2_edges = melbourne.coupling.subgraph_edges(two.partitions[1])
    for e1 in p1_edges:
        for e2 in p2_edges:
            assert melbourne.coupling.pair_distance(e1, e2) != 1

"""Fig. 4 — throughput vs fidelity on IBM Q 65 Manhattan.

For 4mod5-v1_22 (panel a) and alu-v0_27 (panel b), sweeps the fidelity
threshold; QuCP admits 1..6 simultaneous copies, spanning hardware
throughput 7.7% -> 46.2%.  The paper observes significant fidelity loss
past ~38% throughput — the shape assertions check the throughput
endpoints exactly and the fidelity decline directionally.
"""

import numpy as np
from conftest import print_table

from repro.core import execute_allocation, select_parallel_count
from repro.workloads import workload

THRESHOLDS = (0.0, 0.1, 0.2, 0.3, 0.5, 0.8, 1.2, 2.0)


def _sweep(name, device):
    circuit = workload(name).circuit()
    rows = []
    series = []
    for threshold in THRESHOLDS:
        decision = select_parallel_count(circuit, device,
                                         threshold=threshold,
                                         max_copies=6)
        outcomes = execute_allocation(decision.allocation, shots=0,
                                      seed=int(threshold * 100))
        avg_pst = float(np.mean([o.pst() for o in outcomes]))
        rows.append([f"{threshold:.2f}", decision.num_parallel,
                     f"{decision.throughput:.1%}", f"{avg_pst:.3f}"])
        series.append((decision.num_parallel, decision.throughput,
                       avg_pst))
    return rows, series


def _check_shape(series):
    counts = [s[0] for s in series]
    throughputs = [s[1] for s in series]
    # Threshold 0 admits one copy at 7.7%; the sweep reaches 6 at 46.2%.
    assert counts[0] == 1
    assert throughputs[0] == 5 / 65
    assert max(counts) == 6
    assert max(throughputs) == 30 / 65
    assert counts == sorted(counts)
    # Fidelity at max throughput is below fidelity at min throughput.
    assert series[-1][2] <= series[0][2] + 0.02


def test_fig4a_4mod5(benchmark, manhattan):
    """Panel (a): 4mod5-v1_22."""
    rows, series = benchmark.pedantic(
        lambda: _sweep("4mod5-v1_22", manhattan), rounds=1, iterations=1)
    print_table("Fig. 4a: 4mod5-v1_22 on Manhattan",
                ["threshold", "n_parallel", "throughput", "avg PST"],
                rows)
    _check_shape(series)


def test_fig4b_alu(benchmark, manhattan):
    """Panel (b): alu-v0_27."""
    rows, series = benchmark.pedantic(
        lambda: _sweep("alu-v0_27", manhattan), rounds=1, iterations=1)
    print_table("Fig. 4b: alu-v0_27 on Manhattan",
                ["threshold", "n_parallel", "throughput", "avg PST"],
                rows)
    _check_shape(series)

"""Error-suppression techniques the paper surveys alongside ZNE
(Sec. IV-D: "dynamical decoupling [23], measurement error mitigation
[2]"), exercised on the reproduction's stack.

1. **Dynamical decoupling** on a Ramsey-style idle-heavy workload:
   coherent detuning drift echoed away by XX sequences.
2. **Tensored readout mitigation** on parallel GHZ programs: calibrate
   per-partition confusion matrices, invert, measure the JSD gain.
"""

from conftest import print_table

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.core import jensen_shannon_divergence, qucp_allocate
from repro.core.executor import execute_allocation
from repro.mitigation import calibrate_readout
from repro.sim import NoiseModel, run_circuit
from repro.transpiler import insert_dd_sequences


def test_dynamical_decoupling_ramsey(benchmark):
    """DD recovers idle-heavy fidelity lost to detuning drift."""
    durations = {"x": 35.0}
    nm = NoiseModel(
        t1={0: 200_000.0}, t2={0: 180_000.0}, detuning={0: 2e-4},
        oneq_error={0: 3e-4}, gate_duration=dict(durations),
    )

    def run():
        rows = []
        for idle_us in (2.0, 5.0, 10.0, 15.0):
            qc = QuantumCircuit(1, 1)
            qc.h(0)
            qc.delay(0, idle_us * 1000.0)
            qc.h(0)
            qc.measure(0, 0)
            plain = run_circuit(qc, noise_model=nm, shots=0)
            dd = run_circuit(insert_dd_sequences(qc, durations),
                             noise_model=nm, shots=0)
            rows.append([
                f"{idle_us:g}",
                f"{plain.probabilities.get('0', 0.0):.3f}",
                f"{dd.probabilities.get('0', 0.0):.3f}",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Dynamical decoupling: Ramsey survival vs idle time",
                ["idle (us)", "no DD", "XX DD"], rows)
    # At the longest idle, DD must recover most of the lost fidelity.
    assert float(rows[-1][2]) > float(rows[-1][1]) + 0.3
    assert float(rows[-1][2]) > 0.85


def test_readout_mitigation_on_parallel_job(benchmark, toronto):
    """Tensored mitigation cuts JSD for simultaneously-run programs."""
    circuits = [ghz_circuit(3).measure_all() for _ in range(3)]
    allocation = qucp_allocate(circuits, toronto)

    def run():
        outcomes = execute_allocation(allocation, shots=0, seed=3)
        rows = []
        gains = []
        for out in outcomes:
            mitigator = calibrate_readout(
                toronto, out.allocation.partition, shots=0)
            raw = out.result.probabilities
            mitigated = mitigator.apply(raw)
            jsd_raw = jensen_shannon_divergence(raw, out.ideal)
            jsd_mit = jensen_shannon_divergence(mitigated, out.ideal)
            rows.append([
                str(out.allocation.partition), f"{jsd_raw:.4f}",
                f"{jsd_mit:.4f}",
                f"{mitigator.assignment_fidelity():.3f}",
            ])
            gains.append(jsd_raw - jsd_mit)
        return rows, gains

    rows, gains = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Readout mitigation on a 3-program parallel job (JSD, lower "
        "is better)",
        ["partition", "raw JSD", "mitigated JSD", "assign. fidelity"],
        rows)
    assert all(g > 0 for g in gains)

"""Service-level benchmark: serial vs multi-programmed cloud service.

Drives the provider facade's scheduler-backed fleet backends
(:class:`repro.service.CloudBackend`, ``execute=False`` — the queue is
the object of study, not the simulated counts) with synthetic Poisson
traffic over the Table II suite and quantifies what the paper's
end-state promises — "improve the hardware throughput and reduce the
overall runtime" — at the *service* level: mean turnaround across
allocators, fleet sizes, placement policies, and arrival rates.

The acceptance gate (also run in CI via ``--smoke``): a multi-programmed
device fleet must beat serial single-device service by >= 2x on mean
turnaround for a Poisson arrival workload.  Queue outcomes land in
``BENCH_scheduler.json`` via ``ScheduleOutcome.to_dict()`` — the same
JSON format facade job results serialize to.

Run:  PYTHONPATH=../src python bench_scheduler.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Sequence

from conftest import print_table

import repro
from repro.core import ScheduleOutcome, SubmittedProgram
from repro.hardware import Device, ibm_melbourne, ibm_toronto
from repro.service import QuantumProvider
from repro.workloads import synthesize_traffic, traffic_rate_sweep

#: CI override knob (mirrors bench_kernels.py's KERNEL_SPEEDUP_FLOOR).
TURNAROUND_FLOOR = float(os.environ.get("SCHEDULER_SPEEDUP_FLOOR", "2.0"))

ARTIFACT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "BENCH_scheduler.json")


def fleet_devices(size: int) -> List[Device]:
    """A heterogeneous fleet: Toronto twins with distinct calibrations
    plus a Melbourne — all seeded, so runs are reproducible."""
    pool = [ibm_toronto(), ibm_toronto(seed=28), ibm_melbourne(),
            ibm_toronto(seed=29), ibm_melbourne(seed=17)]
    return pool[:size]


def run_service(
    provider: QuantumProvider,
    submissions: Sequence[SubmittedProgram],
    devices: Sequence[Device],
    allocator: str,
    threshold: float,
    policy: str = "least_loaded",
    window_ns: float = 0.0,
    max_batch_size: int | None = None,
    race_allocators: tuple | None = None,
) -> ScheduleOutcome:
    backend = provider.fleet_backend(
        devices,
        policy=policy,
        allocator=allocator,
        fidelity_threshold=threshold,
        batch_window_ns=window_ns,
        max_batch_size=max_batch_size,
        race_allocators=race_allocators,
    )
    # Schedule-only jobs: the discrete-event outcome is the measurement.
    return backend.run(submissions, execute=False).result().schedule


def fmt_ms(ns: float) -> str:
    return f"{ns / 1e6:.2f}"


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI configuration (fewer programs, "
                             "one allocator) with the >=2x gate")
    parser.add_argument("--sweep-fleets", action="store_true",
                        help="also sweep the saturation knee over "
                             "heterogeneous fleet shapes beyond the "
                             "2-device config")
    parser.add_argument("--programs", type=int, default=None,
                        help="number of submissions (default 24; 12 "
                             "with --smoke)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--threshold", type=float, default=1.0,
                        help="fidelity threshold of the multi-programmed "
                             "services")
    args = parser.parse_args(argv)

    num_programs = args.programs or (12 if args.smoke else 24)
    allocators = ["qucp"] if args.smoke else [
        "qucp", "qumc", "qucloud", "multiqc"]
    rates_ns = [2e5] if args.smoke else [1e5, 2e5, 1e6]
    fleet_sizes = [1, 3] if args.smoke else [1, 2, 3]

    provider = repro.provider(job_workers=1)
    artifact: Dict[str, Dict] = {}
    best_overall = 0.0
    # One shared draw across rates: every stream submits the same
    # programs in the same order, so the rate axis isolates queueing
    # pressure from workload-mix variance.
    streams = traffic_rate_sweep(num_programs, rates_ns,
                                 mix="heavy_tail", seed=args.seed)
    for rate in rates_ns:
        subs = streams[float(rate)]
        # True serial baseline: one program per hardware job.
        serial = run_service(provider, subs, fleet_devices(1), "qucp",
                             0.0, max_batch_size=1)
        rate_key = f"rate_{rate:g}"
        artifact[rate_key] = {"serial": serial.to_dict()}
        rows: List[List[object]] = [[
            "serial", 1, "-", 0.0, serial.num_jobs,
            fmt_ms(serial.makespan_ns), fmt_ms(serial.mean_turnaround_ns),
            fmt_ms(serial.turnaround_p99_ns), serial.max_queue_depth,
            "1.00x",
        ]]
        best: Dict[str, float] = {}
        for allocator in allocators:
            for size in fleet_sizes:
                for policy in (["least_loaded"] if size == 1 or args.smoke
                               else ["round_robin", "least_loaded",
                                     "best_fidelity"]):
                    out = run_service(provider, subs, fleet_devices(size),
                                      allocator, args.threshold,
                                      policy=policy)
                    speedup = (serial.mean_turnaround_ns
                               / out.mean_turnaround_ns)
                    artifact[rate_key][
                        f"{allocator}/fleet{size}/{policy}"
                    ] = out.to_dict()
                    rows.append([
                        allocator, size,
                        policy if size > 1 else "-",
                        args.threshold, out.num_jobs,
                        fmt_ms(out.makespan_ns),
                        fmt_ms(out.mean_turnaround_ns),
                        fmt_ms(out.turnaround_p99_ns),
                        out.max_queue_depth,
                        f"{speedup:.2f}x",
                    ])
                    if size > 1:
                        key = f"{allocator}/fleet{size}"
                        best[key] = max(best.get(key, 0.0), speedup)
        print_table(
            f"Poisson traffic, {num_programs} programs, "
            f"mean interarrival {rate / 1e6:g} ms",
            ["allocator", "fleet", "policy", "threshold", "jobs",
             "makespan(ms)", "turnaround(ms)", "p99(ms)", "maxQ",
             "vs serial"],
            rows)
        top = max(best.values())
        best_overall = max(best_overall, top)
        print(f"best multi-programmed fleet speedup at this rate: "
              f"{top:.2f}x")

    # --- hedged allocator racing: the p99 tail cut ---------------------
    # At a loaded arrival rate, racing qumc/qucloud challengers against
    # the qucp primary at every dispatch ("best" mode: most programs
    # admitted at the best mean EFS wins, ties to the primary) trims the
    # turnaround tail.  Deterministic: the winner per dispatch and the
    # whole outcome reproduce exactly under a fixed seed.
    race_programs = 20 if args.smoke else 40
    race_rate = 2e5
    race_subs = synthesize_traffic(
        race_programs, pattern="poisson", mean_interarrival_ns=race_rate,
        mix="heavy_tail", seed=args.seed)
    race_threshold = 0.5
    challengers = ("qumc", "qucloud")
    unraced = run_service(provider, race_subs, fleet_devices(1), "qucp",
                          race_threshold)
    raced = run_service(provider, race_subs, fleet_devices(1), "qucp",
                        race_threshold, race_allocators=challengers)
    replay = run_service(provider, race_subs, fleet_devices(1), "qucp",
                         race_threshold, race_allocators=challengers)
    reproducible = (raced.to_dict() == replay.to_dict())
    p99_cut = 1.0 - raced.turnaround_p99_ns / unraced.turnaround_p99_ns
    print_table(
        f"Hedged allocator racing (qucp vs {'+'.join(challengers)}), "
        f"{race_programs} programs at {race_rate / 1e6:g} ms interarrival",
        ["service", "jobs", "turnaround(ms)", "p50(ms)", "p95(ms)",
         "p99(ms)", "maxQ"],
        [
            ["primary only", unraced.num_jobs,
             fmt_ms(unraced.mean_turnaround_ns),
             fmt_ms(unraced.turnaround_p50_ns),
             fmt_ms(unraced.turnaround_p95_ns),
             fmt_ms(unraced.turnaround_p99_ns),
             unraced.max_queue_depth],
            ["raced", raced.num_jobs,
             fmt_ms(raced.mean_turnaround_ns),
             fmt_ms(raced.turnaround_p50_ns),
             fmt_ms(raced.turnaround_p95_ns),
             fmt_ms(raced.turnaround_p99_ns),
             raced.max_queue_depth],
        ])
    print(f"race wins by allocator: {raced.race_wins}; p99 turnaround "
          f"cut: {p99_cut:+.1%}; reproducible replay: {reproducible}")

    # --- saturation knee per dispatch policy ---------------------------
    # Sweep one shared traffic draw from near-idle to past-saturating
    # arrival rates (traffic_rate_sweep: same programs, same order, only
    # the spacing changes) for each fleet placement policy, and locate
    # the knee: the fastest arrival rate whose mean turnaround is still
    # within KNEE_FACTOR of the near-idle baseline.  Rates beyond the
    # knee are where the gateway's admission control must shed — this
    # section measures where that point sits per dispatch policy.
    knee_factor = 2.0
    knee_programs = 16 if args.smoke else 32
    knee_rates = ([2e6, 5e5, 2e5, 1e5] if args.smoke
                  else [5e6, 2e6, 1e6, 5e5, 2.5e5, 1.25e5])
    knee_policies = (["least_loaded"] if args.smoke
                     else ["round_robin", "least_loaded", "best_fidelity"])
    knee_streams = traffic_rate_sweep(knee_programs, knee_rates,
                                      mix="heavy_tail", seed=args.seed)
    knee_artifact: Dict[str, Dict] = {}
    knee_rows: List[List[object]] = []
    for policy in knee_policies:
        curve = []
        for rate in knee_rates:
            # One program per hardware job: multiprogramming absorbs
            # these rates without queueing, which would push the knee
            # beyond any realistic sweep — serial jobs give the sweep a
            # real capacity ceiling (2 devices / ~1.1 ms service).
            out = run_service(provider, knee_streams[float(rate)],
                              fleet_devices(2), "qucp", args.threshold,
                              policy=policy, max_batch_size=1)
            curve.append({
                "interarrival_ns": float(rate),
                "mean_turnaround_ns": out.mean_turnaround_ns,
                "p99_turnaround_ns": out.turnaround_p99_ns,
                "max_queue_depth": out.max_queue_depth,
            })
        # The slowest rate (first entry) is the near-idle reference.
        idle = curve[0]["mean_turnaround_ns"]
        knee_ns = None
        for point in curve:
            if point["mean_turnaround_ns"] <= knee_factor * idle:
                knee_ns = point["interarrival_ns"]
        knee_artifact[policy] = {
            "curve": curve,
            "idle_turnaround_ns": idle,
            "knee_factor": knee_factor,
            "knee_interarrival_ns": knee_ns,
        }
        knee_rows.append([
            policy, fmt_ms(idle),
            " ".join(f"{p['mean_turnaround_ns'] / idle:.1f}x"
                     for p in curve),
            "-" if knee_ns is None else f"{knee_ns / 1e6:g}",
        ])
    print_table(
        f"Saturation knee (fleet of 2, qucp, {knee_programs} programs; "
        f"rates {', '.join(f'{r / 1e6:g}' for r in knee_rates)} ms)",
        ["policy", "idle turnaround(ms)", "slowdown per rate",
         "knee interarrival(ms)"],
        knee_rows)

    # --- knee sweep across heterogeneous fleet shapes ------------------
    # Same shared traffic draw and knee definition, but on larger,
    # heterogeneous fleets (Toronto twins + Melbourne): more devices
    # absorb faster arrival streams, so the knee should move left (to
    # smaller interarrival) as the fleet grows.
    fleet_sweep: Dict[str, Dict] = {}
    if args.sweep_fleets:
        sweep_shapes = [3] if args.smoke else [3, 4]
        sweep_rows: List[List[object]] = []
        for shape in sweep_shapes:
            devices = fleet_devices(shape)
            curve = []
            for rate in knee_rates:
                out = run_service(provider, knee_streams[float(rate)],
                                  devices, "qucp", args.threshold,
                                  policy="least_loaded", max_batch_size=1)
                curve.append({
                    "interarrival_ns": float(rate),
                    "mean_turnaround_ns": out.mean_turnaround_ns,
                    "p99_turnaround_ns": out.turnaround_p99_ns,
                    "max_queue_depth": out.max_queue_depth,
                })
            idle = curve[0]["mean_turnaround_ns"]
            knee_ns = None
            for point in curve:
                if point["mean_turnaround_ns"] <= knee_factor * idle:
                    knee_ns = point["interarrival_ns"]
            fleet_sweep[f"fleet{shape}"] = {
                "devices": [d.name for d in devices],
                "curve": curve,
                "idle_turnaround_ns": idle,
                "knee_factor": knee_factor,
                "knee_interarrival_ns": knee_ns,
            }
            sweep_rows.append([
                f"fleet{shape}", "+".join(d.name for d in devices),
                fmt_ms(idle),
                " ".join(f"{p['mean_turnaround_ns'] / idle:.1f}x"
                         for p in curve),
                "-" if knee_ns is None else f"{knee_ns / 1e6:g}",
            ])
        print_table(
            "Saturation knee across heterogeneous fleet shapes "
            "(least_loaded, qucp)",
            ["fleet", "devices", "idle turnaround(ms)",
             "slowdown per rate", "knee interarrival(ms)"],
            sweep_rows)

    # --- knee regression gate vs the committed artifact ----------------
    # The knee is the *fastest* (smallest) interarrival the service
    # absorbs without doubling turnaround; a regression is the knee
    # GROWING — saturating at a slower arrival rate than the committed
    # baseline.  Read the baseline before overwriting the artifact.
    knee_regressions: List[str] = []
    committed_baseline: Dict = {}
    if os.path.exists(ARTIFACT):
        try:
            with open(ARTIFACT) as fh:
                committed_baseline = json.load(fh)
        except (OSError, json.JSONDecodeError):
            committed_baseline = {}
    baseline_policies = (committed_baseline.get("saturation_knee", {})
                         .get("policies", {}))
    for policy, data in knee_artifact.items():
        base = baseline_policies.get(policy, {}).get("knee_interarrival_ns")
        if base is None:
            continue
        new = data["knee_interarrival_ns"]
        if new is None or float(new) > float(base):
            knee_regressions.append(
                f"{policy}: knee {base / 1e6:g} ms -> "
                f"{'none' if new is None else f'{new / 1e6:g} ms'}")

    with open(ARTIFACT, "w") as fh:
        json.dump({"programs": num_programs, "threshold": args.threshold,
                   "best_speedup": best_overall, "outcomes": artifact,
                   "saturation_knee": {
                       "programs": knee_programs,
                       "rates_ns": [float(r) for r in knee_rates],
                       "policies": knee_artifact,
                   },
                   "fleet_sweep": fleet_sweep,
                   "racing": {
                       "programs": race_programs,
                       "rate_ns": race_rate,
                       "threshold": race_threshold,
                       "challengers": list(challengers),
                       "unraced": unraced.to_dict(),
                       "raced": raced.to_dict(),
                       "p99_cut": p99_cut,
                       "reproducible": reproducible,
                   }},
                  fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {ARTIFACT}")

    if not reproducible:
        print("FAIL: raced schedule did not replay bit-identically "
              "under the fixed seed", file=sys.stderr)
        return 1
    print("OK: raced schedule replays bit-identically (deterministic "
          "winner under fixed seed)")

    if knee_regressions:
        print("FAIL: saturation knee regressed vs the committed "
              "BENCH_scheduler.json: " + "; ".join(knee_regressions),
              file=sys.stderr)
        return 1
    if baseline_policies:
        print("OK: saturation knee at or better than the committed "
              "baseline for every measured policy")

    # The gate holds at the loaded operating point: near-idle rates are
    # reported for the shape (speedup -> 1x as the queue empties) but a
    # saturated Poisson stream must show >= TURNAROUND_FLOOR.
    print(f"best multi-programmed fleet speedup: {best_overall:.2f}x "
          f"(floor {TURNAROUND_FLOOR:g}x)")
    if best_overall < TURNAROUND_FLOOR:
        print("FAIL: multi-programmed fleet service did not reach the "
              f"{TURNAROUND_FLOOR:g}x mean-turnaround floor",
              file=sys.stderr)
        return 1
    print("\nOK: multi-programmed fleet service beats serial "
          f"single-device service by >= {TURNAROUND_FLOOR:g}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

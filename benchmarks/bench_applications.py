"""Application-level benches beyond the paper's own experiments.

1. **QAOA angle grid** — the "parallel sub-problem execution" pattern the
   paper's conclusion highlights, on MaxCut.
2. **Tomography validation** — state tomography against the simulator's
   exact density matrix, closing the loop on the noise model.
3. **VQE optimizer** — the full hybrid loop with one parallel job per
   refinement round.
"""

import networkx as nx
import numpy as np
from conftest import print_table

from repro.characterization import state_tomography
from repro.circuits import bell_pair, ghz_circuit
from repro.sim import run_circuit, state_fidelity
from repro.vqe import (
    h2_hamiltonian,
    max_cut_value,
    minimize_energy_ideal,
    minimize_energy_parallel,
    run_qaoa_grid_ideal,
    run_qaoa_grid_parallel,
)


def test_qaoa_parallel_grid(benchmark, manhattan):
    """16-point QAOA grid in one job; noisy best tracks the ideal best.

    A 3-qubit triangle keeps the 16 simultaneous programs at 48/65
    qubits (73.8% — the same packing regime as the paper's largest VQE
    experiment; 16 four-qubit programs would need 98% of a heavy-hex
    chip, which fragmentation forbids).
    """
    graph = nx.complete_graph(3)

    def run():
        ideal = run_qaoa_grid_ideal(graph, resolution=4)
        noisy = run_qaoa_grid_parallel(graph, manhattan, resolution=4,
                                       shots=0, seed=11)
        return ideal, noisy

    ideal, noisy = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["ideal", f"{ideal.best[2]:.3f}",
         f"{ideal.approximation_ratio(graph):.3f}", "-", "-"],
        ["QuCP parallel", f"{noisy.best[2]:.3f}",
         f"{noisy.approximation_ratio(graph):.3f}",
         noisy.num_simultaneous, f"{noisy.throughput:.1%}"],
    ]
    print_table("QAOA p=1 MaxCut on a triangle (exact optimum = 2)",
                ["run", "best cut", "approx ratio", "n_simultaneous",
                 "throughput"],
                rows)
    assert noisy.num_simultaneous == 16
    assert noisy.throughput == 48 / 65
    assert noisy.best[2] > 0.75 * ideal.best[2]
    assert ideal.approximation_ratio(graph) > 0.6


def test_tomography_validates_noise_model(benchmark, toronto):
    """Mitigated tomography reproduces the simulator's exact rho."""

    def run():
        rows = []
        for prep, partition in ((bell_pair(), (0, 1)),
                                (ghz_circuit(2), (4, 7))):
            measured = prep.copy()
            measured.measure_all()
            nm = toronto.noise_model().restricted(partition)
            exact = run_circuit(measured, noise_model=nm, shots=0,
                                keep_density_matrix=True).density_matrix
            recon = state_tomography(prep, device=toronto,
                                     partition=partition,
                                     mitigate_readout=True)
            fid = state_fidelity(exact, recon.density_matrix)
            rows.append([prep.name, str(partition), f"{fid:.4f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("State tomography vs exact simulated state",
                ["preparation", "partition", "fidelity"], rows)
    assert all(float(r[2]) > 0.98 for r in rows)


def test_vqe_optimizer_loop(benchmark, manhattan):
    """Three refinement rounds converge near the tied-ansatz optimum."""

    def run():
        ideal = minimize_energy_ideal()
        noisy = minimize_energy_parallel(manhattan, rounds=3,
                                         points_per_round=8,
                                         shots=8192, seed=17)
        return ideal, noisy

    ideal, noisy = benchmark.pedantic(run, rounds=1, iterations=1)
    exact = h2_hamiltonian().ground_energy()
    rows = [
        ["ideal (scipy)", f"{ideal.energy:.4f}", "-", "-"],
        ["QuCP rounds", f"{noisy.energy:.4f}", noisy.num_jobs,
         noisy.num_circuit_executions],
    ]
    print_table(
        f"VQE hybrid loop (exact ground energy {exact:.4f} Ha)",
        ["driver", "E_min", "hardware jobs", "circuit executions"],
        rows)
    assert abs(noisy.energy - ideal.energy) / abs(ideal.energy) < 0.12
    assert noisy.num_jobs == 3

"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports.  Shape assertions (who
wins, where crossovers fall) are enforced; absolute values differ because
the substrate is a seeded noise-model simulator, not the 2021 IBM fleet.
"""

from __future__ import annotations

import pytest

from repro.hardware import ibm_manhattan, ibm_melbourne, ibm_toronto


@pytest.fixture(scope="session")
def toronto():
    """IBM Q 27 Toronto."""
    return ibm_toronto()


@pytest.fixture(scope="session")
def manhattan():
    """IBM Q 65 Manhattan."""
    return ibm_manhattan()


@pytest.fixture(scope="session")
def melbourne():
    """IBM Q 16 Melbourne."""
    return ibm_melbourne()


def connected_subset(coupling, start: int, size: int) -> tuple:
    """A deterministic BFS-grown connected qubit subset of *size*."""
    seen = [start]
    frontier = [start]
    while frontier and len(seen) < size:
        nxt = frontier.pop(0)
        for nb in coupling.neighbors(nxt):
            if nb not in seen and len(seen) < size:
                seen.append(nb)
                frontier.append(nb)
    return tuple(sorted(seen))


def print_table(title: str, header: list, rows: list) -> None:
    """Render a fixed-width table to stdout (shown with pytest -s)."""
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(header))
    ]
    line = " | ".join(str(h).rjust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print(" | ".join(str(c).rjust(w) for c, w in zip(row, widths)))
